// The batched socket hot path (DESIGN.md §16) against its contract: the
// encode-once/patch-per-target fan-out stamps exactly what the per-target
// loop stamps, billing and counters are bit-identical to the unbatched
// reference, coalescing provably reduces syscalls, partial vectored writes
// resume mid-frame, and the reconnect backoff follows its schedule
// deterministically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "net/socket_transport.h"

namespace multipub::net {
namespace {

wire::Message publication(std::uint64_t seq, Bytes bytes = 512) {
  wire::Message msg;
  msg.type = wire::MessageType::kForward;
  msg.topic = TopicId{2};
  msg.publisher = ClientId{9};
  msg.subscriber = ClientId{55};
  msg.seq = seq;
  msg.payload_bytes = bytes;
  return msg;
}

template <typename Pred>
bool pump(std::vector<SocketTransport*> nodes, Pred pred,
          int budget_ms = 5000) {
  for (int elapsed = 0; elapsed < budget_ms; elapsed += 2) {
    for (SocketTransport* node : nodes) node->poll_once(1);
    if (pred()) return true;
  }
  return pred();
}

/// A connected loopback pair: node 0 sends, node 1 hosts every client,
/// cohort and region 1.
struct Pair {
  SocketTransport a;  // node 0
  SocketTransport b;  // node 1

  explicit Pair(bool batching) {
    a.set_self_node(0);
    b.set_self_node(1);
    a.set_batching(batching);
    b.set_batching(batching);
    const auto resolver = [](Address to) {
      return to.kind == Address::Kind::kRegion ? to.id : 1;
    };
    a.set_address_resolver(resolver);
    b.set_address_resolver(resolver);
    EXPECT_TRUE(b.listen(0));
    a.add_peer(1, b.port());
  }
};

TEST(TransportBatching, FanOutStampsPerTargetLikeThePerTargetLoop) {
  Pair pair(/*batching=*/true);
  std::map<std::int32_t, std::vector<wire::Message>> by_client;
  std::vector<wire::Message> at_cohort;
  for (std::int32_t c = 0; c < 3; ++c) {
    pair.b.register_handler(Address::client(ClientId{c}),
                            [&by_client, c](const wire::Message& m) {
                              by_client[c].push_back(m);
                            });
  }
  pair.b.register_handler(Address::cohort(17),
                          [&at_cohort](const wire::Message& m) {
                            at_cohort.push_back(m);
                          });

  const std::vector<Address> targets = {
      Address::client(ClientId{0}), Address::client(ClientId{1}),
      Address::cohort(17), Address::client(ClientId{2})};
  pair.a.send_batch(Address::region(RegionId{0}), targets, publication(41),
                    wire::MessageType::kDeliver);

  ASSERT_TRUE(pump({&pair.a, &pair.b}, [&] {
    return pair.b.delivered_count() == targets.size();
  }));
  for (std::int32_t c = 0; c < 3; ++c) {
    ASSERT_EQ(by_client[c].size(), 1u) << "client " << c;
    // The per-target patch: type stamped, subscriber = the target client.
    EXPECT_EQ(by_client[c][0].type, wire::MessageType::kDeliver);
    EXPECT_EQ(by_client[c][0].subscriber, ClientId{c});
    EXPECT_EQ(by_client[c][0].seq, 41u);
    EXPECT_EQ(by_client[c][0].payload_bytes, 512u);
  }
  // A cohort target keeps the message's own subscriber field (the flock
  // rides in the address, not the subscriber id).
  ASSERT_EQ(at_cohort.size(), 1u);
  EXPECT_EQ(at_cohort[0].type, wire::MessageType::kDeliver);
  EXPECT_EQ(at_cohort[0].subscriber, ClientId{55});
}

/// Drives identical mixed traffic (point-to-point sends, remote fan-out,
/// weighted cohort fan-out) through one pair and returns its aggregates.
struct Aggregates {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  Bytes inter_region = 0;
  Bytes internet = 0;
};

Aggregates run_mixed_traffic(bool batching) {
  Pair pair(batching);
  std::uint64_t received = 0;
  const auto count = [&received](const wire::Message&) { ++received; };
  pair.b.register_handler(Address::region(RegionId{1}), count);
  std::vector<Address> targets;
  for (std::int32_t c = 0; c < 8; ++c) {
    targets.push_back(Address::client(ClientId{c}));
    pair.b.register_handler(targets.back(), count);
  }
  targets.push_back(Address::cohort(3));
  pair.b.register_handler(targets.back(), count);

  const Address from = Address::region(RegionId{0});
  std::uint64_t expected = 0;
  for (std::uint64_t round = 0; round < 40; ++round) {
    pair.a.send(from, Address::region(RegionId{1}), publication(round));
    ++expected;
    wire::Message fan = publication(1000 + round, 300);
    fan.weight = round % 4 == 0 ? 5 : 1;  // weighted cohort rounds
    pair.a.send_batch(from, targets, fan, wire::MessageType::kDeliver);
    expected += targets.size();
    if (round % 8 == 0) {
      pair.a.poll_once(0);
      pair.b.poll_once(0);
    }
  }
  EXPECT_TRUE(pump({&pair.a, &pair.b},
                   [&] { return received == expected; }));

  Aggregates out;
  out.sent = pair.a.sent_count();
  out.delivered = pair.b.delivered_count();
  out.inter_region = pair.a.inter_region_bytes(RegionId{0});
  out.internet = pair.a.internet_bytes(RegionId{0});
  return out;
}

TEST(TransportBatching, BillingAndCountersAreBitIdenticalToUnbatched) {
  const Aggregates batched = run_mixed_traffic(true);
  const Aggregates reference = run_mixed_traffic(false);
  EXPECT_EQ(batched.sent, reference.sent);
  EXPECT_EQ(batched.delivered, reference.delivered);
  EXPECT_EQ(batched.inter_region, reference.inter_region);
  EXPECT_EQ(batched.internet, reference.internet);
  EXPECT_GT(batched.inter_region, 0u);
  EXPECT_GT(batched.internet, 0u);
}

TEST(TransportBatching, ARoundOfFramesCoalescesIntoFewFlushSyscalls) {
  Pair pair(/*batching=*/true);
  std::uint64_t received = 0;
  pair.b.register_handler(Address::region(RegionId{1}),
                          [&received](const wire::Message&) { ++received; });
  constexpr std::uint64_t kFrames = 200;
  for (std::uint64_t seq = 0; seq < kFrames; ++seq) {
    pair.a.send(Address::region(RegionId{0}), Address::region(RegionId{1}),
                publication(seq));
  }
  ASSERT_TRUE(pump({&pair.a, &pair.b}, [&] { return received == kFrames; }));

  const TransportStats& stats = pair.a.stats();
  EXPECT_EQ(stats.frames_sent, kFrames);
  EXPECT_GT(stats.frames_per_flush(), 1.0);
  EXPECT_LT(stats.flush_syscalls(), kFrames / 2)
      << "batched mode should not pay per-frame syscalls";
  // The whole burst fits one pooled segment chain; the histogram must put
  // mass past the 1-frame bucket.
  std::uint64_t beyond_single = 0;
  for (std::size_t bucket = 1; bucket < stats.flush_frames_hist.size();
       ++bucket) {
    beyond_single += stats.flush_frames_hist[bucket];
  }
  EXPECT_GT(beyond_single, 0u);
  EXPECT_GT(stats.pool_high_water, 0u);
}

TEST(TransportBatching, UnbatchedReferencePaysOneWritePerFrame) {
  Pair pair(/*batching=*/false);
  std::uint64_t received = 0;
  pair.b.register_handler(Address::region(RegionId{1}),
                          [&received](const wire::Message&) { ++received; });
  constexpr std::uint64_t kFrames = 64;
  // Prime the link: one frame, pumped until delivered, so the connection
  // is up and uncongested before the measured burst.
  pair.a.send(Address::region(RegionId{0}), Address::region(RegionId{1}),
              publication(9999));
  ASSERT_TRUE(pump({&pair.a, &pair.b}, [&] { return received == 1; }));
  const std::uint64_t baseline = pair.a.stats().flush_syscalls();

  for (std::uint64_t seq = 0; seq < kFrames; ++seq) {
    pair.a.send(Address::region(RegionId{0}), Address::region(RegionId{1}),
                publication(seq));
  }
  ASSERT_TRUE(
      pump({&pair.a, &pair.b}, [&] { return received == 1 + kFrames; }));
  // The reference path flushes every frame the moment it is queued: one
  // write syscall per frame.
  EXPECT_GE(pair.a.stats().flush_syscalls() - baseline, kFrames);
}

TEST(TransportBatching, TinySendBufferResumesVectoredWritesMidFrame) {
  // Wired by hand (not via Pair) because the tiny socket buffers must be
  // configured BEFORE add_peer creates the outbound socket.
  SocketTransport a;
  SocketTransport b;
  a.set_self_node(0);
  b.set_self_node(1);
  const auto resolver = [](Address to) {
    return to.kind == Address::Kind::kRegion ? to.id : 1;
  };
  a.set_address_resolver(resolver);
  b.set_address_resolver(resolver);
  // Shrink both socket buffers to a fraction of the burst so sendmsg()
  // keeps accepting partial iovec chains, splitting frames at arbitrary
  // byte offsets across flushes.
  a.set_socket_buffer_bytes(4096);
  b.set_socket_buffer_bytes(4096);
  ASSERT_TRUE(b.listen(0));
  a.add_peer(1, b.port());

  std::vector<std::uint64_t> seqs;
  b.register_handler(Address::region(RegionId{1}),
                     [&seqs](const wire::Message& m) {
                       seqs.push_back(m.seq);
                     });
  constexpr std::uint64_t kFrames = 4000;  // ~400 KB >> both buffers
  for (std::uint64_t seq = 0; seq < kFrames; ++seq) {
    a.send(Address::region(RegionId{0}), Address::region(RegionId{1}),
           publication(seq, 64));
  }
  ASSERT_TRUE(pump({&a, &b}, [&] { return seqs.size() == kFrames; }, 20000));

  // Backpressure must delay frames, never tear, drop or reorder them.
  for (std::uint64_t seq = 0; seq < kFrames; ++seq) {
    ASSERT_EQ(seqs[seq], seq) << "stream reordered or torn at " << seq;
  }
  EXPECT_GT(a.stats().partial_flushes, 0u)
      << "the burst was supposed to overrun the tiny socket buffer";
  EXPECT_EQ(a.stats().frames_sent, kFrames);
}

TEST(TransportBatching, LocalFanOutNeverTouchesTheWire) {
  SocketTransport transport;
  transport.set_self_node(0);
  transport.set_address_resolver([](Address) { return 0; });
  std::uint64_t received = 0;
  std::vector<Address> targets;
  for (std::int32_t c = 0; c < 4; ++c) {
    targets.push_back(Address::client(ClientId{c}));
    transport.register_handler(
        targets.back(), [&received](const wire::Message&) { ++received; });
  }
  transport.send_batch(Address::region(RegionId{0}), targets, publication(1),
                       wire::MessageType::kDeliver);
  EXPECT_EQ(received, 0u) << "local delivery must be deferred";
  for (int i = 0; i < 50 && received < targets.size(); ++i) {
    transport.poll_once(1);
  }
  EXPECT_EQ(received, targets.size());
  // The codec and the sockets stayed cold.
  EXPECT_EQ(transport.stats().bytes_sent, 0u);
  EXPECT_EQ(transport.stats().flush_syscalls(), 0u);
  EXPECT_EQ(transport.stats().pool_acquires, 0u);
}

TEST(TransportBackoff, DelayDoublesFromBaseUntilTheCap) {
  Rng rng(7);
  double previous_floor = 0.0;
  for (std::uint32_t attempt = 0; attempt < 24; ++attempt) {
    const double floor =
        std::min(SocketTransport::kBackoffCapMs,
                 SocketTransport::kBackoffBaseMs *
                     static_cast<double>(std::uint64_t{1} << attempt));
    const Millis delay = SocketTransport::backoff_delay_ms(attempt, rng);
    EXPECT_GE(delay, floor) << "attempt " << attempt;
    EXPECT_LT(delay, floor * (1.0 + SocketTransport::kBackoffJitter))
        << "attempt " << attempt;
    EXPECT_GE(floor, previous_floor) << "schedule must never shrink";
    previous_floor = floor;
  }
  // Deep attempts are pinned at the cap (plus jitter), not overflowing.
  const Millis deep = SocketTransport::backoff_delay_ms(1000, rng);
  EXPECT_GE(deep, SocketTransport::kBackoffCapMs);
  EXPECT_LT(deep, SocketTransport::kBackoffCapMs *
                      (1.0 + SocketTransport::kBackoffJitter));
}

TEST(TransportBackoff, JitterIsDeterministicInTheSeed) {
  Rng first(42);
  Rng second(42);
  Rng other(43);
  bool any_differs = false;
  for (std::uint32_t attempt = 0; attempt < 16; ++attempt) {
    const Millis lhs = SocketTransport::backoff_delay_ms(attempt, first);
    const Millis rhs = SocketTransport::backoff_delay_ms(attempt, second);
    EXPECT_EQ(lhs, rhs) << "same seed must give the same schedule";
    if (lhs != SocketTransport::backoff_delay_ms(attempt, other)) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs) << "different seeds should jitter differently";
}

}  // namespace
}  // namespace multipub::net
