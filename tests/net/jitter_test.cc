#include <gtest/gtest.h>

#include "net/transport.h"
#include "testutil.h"

namespace multipub::net {
namespace {

using testutil::TinyWorld;

class JitterTest : public ::testing::Test {
 protected:
  TinyWorld world_;
  Simulator sim_;
  SimTransport transport_{sim_, world_.catalog, world_.backbone,
                          world_.clients};

  /// Sends one publication client->region and returns its delivery time.
  Millis one_delivery() {
    Millis delivered_at = -1.0;
    transport_.register_handler(Address::region(TinyWorld::kA),
                                [&](const wire::Message&) {
                                  delivered_at = sim_.now();
                                });
    const Millis start = sim_.now();
    wire::Message msg;
    msg.type = wire::MessageType::kPublish;
    transport_.send(Address::client(TinyWorld::kNearA),
                    Address::region(TinyWorld::kA), msg);
    sim_.run();
    return delivered_at - start;
  }
};

TEST_F(JitterTest, DisabledByDefaultDeterministic) {
  EXPECT_DOUBLE_EQ(one_delivery(), 10.0);
  EXPECT_DOUBLE_EQ(one_delivery(), 10.0);
}

TEST_F(JitterTest, JitterOnlyIncreasesLatency) {
  transport_.enable_jitter({.relative = 0.2, .absolute_ms = 2.0}, 7);
  for (int i = 0; i < 200; ++i) {
    const Millis d = one_delivery();
    EXPECT_GE(d, 10.0);             // never faster than the base latency
    EXPECT_LE(d, 10.0 * 1.2 + 20);  // bounded: 20% relative + tail
  }
}

TEST_F(JitterTest, JitterIsReproducibleAcrossSeeds) {
  transport_.enable_jitter({.relative = 0.3, .absolute_ms = 1.0}, 42);
  std::vector<Millis> first;
  for (int i = 0; i < 20; ++i) first.push_back(one_delivery());

  SimTransport other(sim_, world_.catalog, world_.backbone, world_.clients);
  other.enable_jitter({.relative = 0.3, .absolute_ms = 1.0}, 42);
  // Rebuild the probe against the second transport.
  for (int i = 0; i < 20; ++i) {
    Millis delivered_at = -1.0;
    other.register_handler(Address::region(TinyWorld::kA),
                           [&](const wire::Message&) {
                             delivered_at = sim_.now();
                           });
    const Millis start = sim_.now();
    wire::Message msg;
    msg.type = wire::MessageType::kPublish;
    other.send(Address::client(TinyWorld::kNearA),
               Address::region(TinyWorld::kA), msg);
    sim_.run();
    // The two transports observe identical jitter draws; only the absolute
    // simulation time differs, costing a few ulps in the subtraction.
    EXPECT_NEAR(delivered_at - start, first[static_cast<size_t>(i)], 1e-9);
  }
}

TEST_F(JitterTest, DisableRestoresDeterminism) {
  transport_.enable_jitter({.relative = 0.5, .absolute_ms = 5.0}, 1);
  (void)one_delivery();
  transport_.disable_jitter();
  EXPECT_DOUBLE_EQ(one_delivery(), 10.0);
}

TEST_F(JitterTest, BillingUnaffectedByJitter) {
  transport_.enable_jitter({.relative = 0.5, .absolute_ms = 5.0}, 1);
  transport_.register_handler(Address::client(TinyWorld::kNearA),
                              [](const wire::Message&) {});
  wire::Message msg;
  msg.type = wire::MessageType::kDeliver;
  msg.payload_bytes = 1000;
  transport_.send(Address::region(TinyWorld::kA),
                  Address::client(TinyWorld::kNearA), msg);
  sim_.run();
  EXPECT_DOUBLE_EQ(transport_.ledger().total_cost(world_.catalog),
                   1000.0 * per_gb_to_per_byte(0.09));
}

}  // namespace
}  // namespace multipub::net
