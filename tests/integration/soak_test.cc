// Soak: many control rounds under a workload whose active publisher set
// shifts between continents. The controller must track the shifts, the data
// plane must stay complete across every reconfiguration, and the event
// queue must drain fully (no leaked events).
#include <gtest/gtest.h>

#include <set>

#include "sim/control_loop.h"
#include "sim/live_runner.h"
#include "sim/scenario.h"

namespace multipub::sim {
namespace {

class SoakTest : public ::testing::Test {
 protected:
  SoakTest() : rng_(141) {
    WorkloadSpec workload;
    workload.interval_seconds = 10.0;
    workload.ratio = 75.0;
    workload.max_t = kUnreachable;  // cost-only: placement follows traffic
    // Publishers 0-1 near Virginia, 2-3 near Tokyo; subscribers split too.
    scenario_ = make_scenario({{RegionId{0}, 2, 3}, {RegionId{5}, 2, 3}},
                              workload, rng_);
  }

  /// Publishes 10 s of 1 Hz traffic from the selected publishers only.
  void publish_phase(LiveSystem& live, bool us_active, bool asia_active) {
    const TopicId topic = scenario_.topic.topic;
    for (std::size_t i = 0; i < live.publishers().size(); ++i) {
      const bool is_us =
          scenario_.population
              .home_region[live.publishers()[i]->id().index()] == RegionId{0};
      if ((is_us && !us_active) || (!is_us && !asia_active)) continue;
      client::Publisher* publisher = live.publishers()[i].get();
      for (int k = 0; k < 10; ++k) {
        live.simulator().schedule_after(
            1000.0 * k + 10.0 * static_cast<double>(i),
            [publisher, topic] { publisher->publish(topic, 1024); });
      }
    }
    live.simulator().run();
  }

  Rng rng_;
  Scenario scenario_;
};

TEST_F(SoakTest, TwentyRoundsOfShiftingTraffic) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});

  std::set<std::uint64_t> configs_seen;
  std::uint64_t total_delivered = 0;

  for (int round = 0; round < 20; ++round) {
    // Phases of 5 rounds: US-only, Asia-only, both, US-only again.
    const int phase = round / 5;
    const bool us = phase == 0 || phase == 2 || phase == 3;
    const bool asia = phase == 1 || phase == 2;

    for (const auto& sub : live.subscribers()) sub->clear_deliveries();
    publish_phase(live, us, asia);

    // Everything published this round reached every subscriber.
    std::uint64_t delivered = 0;
    for (const auto& sub : live.subscribers()) {
      delivered += sub->deliveries().size();
    }
    const std::uint64_t publications =
        (us ? 2u : 0u) * 10u + (asia ? 2u : 0u) * 10u;
    EXPECT_EQ(delivered, publications * 6u) << "round " << round;
    total_delivered += delivered;

    const auto decisions = live.control_round();
    for (const auto& decision : decisions) {
      configs_seen.insert(decision.result.config.regions.mask());
    }
    EXPECT_EQ(live.simulator().pending(), 0u) << "event leak, round " << round;
  }

  // The controller adapted: more than one configuration was deployed over
  // the shifting phases.
  EXPECT_GE(configs_seen.size(), 2u);
  EXPECT_EQ(total_delivered, (5u + 5u + 10u + 5u) * 2u * 10u * 6u);
}

TEST_F(SoakTest, JitteredPoissonTrafficWithInBandControlLoop) {
  // Everything at once: bursty Poisson publishers, per-message jitter, and
  // the controller firing in-band every 10 virtual seconds. No message may
  // be lost and no duplicate may surface.
  LiveSystem live(scenario_);
  live.transport().enable_jitter({.relative = 0.05, .absolute_ms = 1.0}, 7);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});

  ControlLoop loop(live, 10'000.0);
  live.schedule_traffic(0.0, 60.0, 512, 1.0, rng_,
                        LiveSystem::Arrivals::kPoisson);
  loop.schedule_rounds(5);
  live.simulator().run();

  const auto observed = live.observed_topic_state();
  std::uint64_t delivered = 0, duplicates = 0;
  for (const auto& sub : live.subscribers()) {
    delivered += sub->deliveries().size();
    duplicates += sub->duplicate_count();
  }
  EXPECT_EQ(delivered, observed.total_messages() * 6u);
  // The dedup filter may have absorbed overlap duplicates; none surfaced
  // (the count above is exact).
  EXPECT_GE(loop.rounds_executed(), 5u);
  EXPECT_EQ(live.simulator().pending(), 0u);
  (void)duplicates;  // informational; can legitimately be zero or positive
}

TEST_F(SoakTest, StableTrafficConvergesAndStaysPut) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});

  std::size_t changes = 0;
  for (int round = 0; round < 10; ++round) {
    publish_phase(live, true, true);
    for (const auto& decision : live.control_round()) {
      if (decision.changed) ++changes;
    }
  }
  // One convergence step from the bootstrap, then silence.
  EXPECT_EQ(changes, 1u);
}

}  // namespace
}  // namespace multipub::sim
