// Reconfiguration-handover property suite.
//
// DESIGN.md documents a zero-loss reconfiguration protocol (make-before-
// break subscribers, publisher config grace, broker drain windows, client
// dedup). These tests drive live traffic through every transition shape —
// shrink, grow, mode flips, full migration — with the control round firing
// mid-stream, and assert that no publication is lost and none is delivered
// twice.
#include <gtest/gtest.h>

#include "sim/control_loop.h"
#include "sim/live_runner.h"

namespace multipub::sim {
namespace {

struct Transition {
  const char* name;
  std::uint64_t from_mask;
  core::DeliveryMode from_mode;
  std::uint64_t to_mask;
  core::DeliveryMode to_mode;
};

std::ostream& operator<<(std::ostream& os, const Transition& t) {
  return os << t.name;
}

class HandoverTest : public ::testing::TestWithParam<Transition> {};

TEST_P(HandoverTest, NoLossNoDuplicatesAcrossTransition) {
  const Transition& t = GetParam();
  Rng rng(91);
  WorkloadSpec workload;
  workload.interval_seconds = 20.0;
  workload.ratio = 75.0;
  workload.max_t = kUnreachable;
  const Scenario scenario = make_scenario(
      {{RegionId{0}, 2, 3}, {RegionId{5}, 2, 3}, {RegionId{9}, 1, 2}},
      workload, rng);

  LiveSystem live(scenario);
  live.deploy({geo::RegionSet(t.from_mask), t.from_mode});

  // 20 s of traffic at 1 Hz; the transition fires at t=10 s, mid-stream.
  live.schedule_traffic(0.0, 20.0, 512, 1.0, rng);
  const core::TopicConfig target{geo::RegionSet(t.to_mask), t.to_mode};
  live.simulator().schedule_after(10'000.0, [&live, &scenario, target] {
    const TopicId topic = scenario.topic.topic;
    for (const auto& region : scenario.catalog.all()) {
      live.region_manager(region.id).apply_config(topic, target);
    }
  });
  live.simulator().run();

  const std::size_t n_pubs = scenario.topic.publishers.size();
  for (const auto& sub : live.subscribers()) {
    EXPECT_EQ(sub->deliveries().size(), n_pubs * 20u)
        << t.name << ": subscriber " << sub->id().value();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Transitions, HandoverTest,
    ::testing::Values(
        Transition{"shrink_routed", 0x3FF, core::DeliveryMode::kRouted,
                   0b0000000001, core::DeliveryMode::kDirect},
        Transition{"grow_direct", 0b0000000001, core::DeliveryMode::kDirect,
                   0b1000100001, core::DeliveryMode::kDirect},
        Transition{"routed_to_direct", 0b1000100001,
                   core::DeliveryMode::kRouted, 0b1000100001,
                   core::DeliveryMode::kDirect},
        Transition{"direct_to_routed", 0b1000100001,
                   core::DeliveryMode::kDirect, 0b1000100001,
                   core::DeliveryMode::kRouted},
        Transition{"full_migration", 0b0000100001,
                   core::DeliveryMode::kRouted, 0b0000000110,
                   core::DeliveryMode::kRouted},
        Transition{"shrink_and_flip", 0x3FF, core::DeliveryMode::kDirect,
                   0b0000100001, core::DeliveryMode::kRouted}),
    [](const ::testing::TestParamInfo<Transition>& info) {
      return info.param.name;
    });

TEST(HandoverExtras, DuplicatesAreAbsorbedNotSurfaced) {
  // Run a transition known to cause overlap and check the dedup filter did
  // real work: some duplicates arrived, none surfaced.
  Rng rng(92);
  WorkloadSpec workload;
  workload.interval_seconds = 20.0;
  workload.ratio = 75.0;
  workload.max_t = kUnreachable;
  const Scenario scenario =
      make_scenario({{RegionId{0}, 2, 4}, {RegionId{5}, 2, 4}}, workload, rng);

  LiveSystem live(scenario);
  live.deploy({geo::RegionSet(0x3FF), core::DeliveryMode::kDirect});
  live.schedule_traffic(0.0, 20.0, 512, 2.0, rng);
  live.simulator().schedule_after(10'000.0, [&] {
    // Neither Virginia nor Tokyo serve any more: every subscriber moves,
    // and during the grace overlap both old and new regions deliver.
    const core::TopicConfig target{geo::RegionSet(0b0000011000),
                                   core::DeliveryMode::kDirect};
    for (const auto& region : scenario.catalog.all()) {
      live.region_manager(region.id).apply_config(scenario.topic.topic,
                                                  target);
    }
  });
  live.simulator().run();

  std::uint64_t duplicates = 0;
  for (const auto& sub : live.subscribers()) {
    duplicates += sub->duplicate_count();
    EXPECT_EQ(sub->deliveries().size(), 4u * 40u);
  }
  // Direct mode to 10 regions with overlapping attachments: duplicates are
  // expected during the grace window.
  EXPECT_GT(duplicates, 0u);
}

TEST(HandoverExtras, FlappingSubscriberKeepsItsSubscription) {
  // A -> B -> A inside one grace window: the delayed unsubscribe for A must
  // not fire once the subscriber flapped back to A.
  Rng rng(93);
  WorkloadSpec workload;
  workload.interval_seconds = 5.0;
  workload.ratio = 75.0;
  const Scenario scenario = make_scenario({{RegionId{0}, 1, 1}}, workload, rng);

  LiveSystem live(scenario);
  const core::TopicConfig config_a{geo::RegionSet(0b0000000001),
                                   core::DeliveryMode::kDirect};
  const core::TopicConfig config_b{geo::RegionSet(0b0000000010),
                                   core::DeliveryMode::kDirect};
  live.deploy(config_a);

  auto& sub = *live.subscribers().front();
  sub.subscribe(scenario.topic.topic, config_b);  // A -> B
  sub.subscribe(scenario.topic.topic, config_a);  // B -> A (flap back)
  live.simulator().run();

  // Publications must still reach the subscriber through A.
  (void)live.run_interval(5.0, 256, 1.0, rng);
  EXPECT_EQ(sub.deliveries().size(), 5u);
  EXPECT_EQ(sub.attached_region(scenario.topic.topic), RegionId{0});
}

}  // namespace
}  // namespace multipub::sim
