// Live differential run for the cohort-compressed client plane
// (DESIGN.md §12): identical systems driven by identical traffic, the
// reference on per-client Subscriber endpoints, the candidates on weighted
// cohorts — single-threaded and sharded (K = 4). The workload replicates
// every subscriber position five-fold, so cohorts genuinely compress
// (weight-5 flocks) instead of degenerating to weight 1. Across rounds with
// rate shifts, member churn (leave + rejoin), an outage with recovery and
// live reconfigurations, every observable — per-member delivery times,
// interval costs, the CostLedger, broker counters, weighted client books,
// and the full rendered metrics snapshot — must stay bit-identical.
//
// Parameterized over the control-plane pipeline (incremental vs full-scan)
// so the weighted plane is proven under both reconfiguration paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/live_runner.h"
#include "sim/metrics_snapshot.h"
#include "sim/scenario.h"

namespace multipub::sim {
namespace {

class CohortDiff : public ::testing::TestWithParam<bool> {};

TEST_P(CohortDiff, CohortPlaneIsBitIdenticalToPerClientPlane) {
  const bool incremental = GetParam();
  Rng rng(2026);
  WorkloadSpec workload;
  workload.interval_seconds = 10.0;
  workload.ratio = 95.0;
  workload.max_t = 150.0;
  workload.subscriber_replication = 5;
  const Scenario scenario =
      make_scenario({{RegionId{0}, 2, 3}, {RegionId{5}, 2, 3}}, workload, rng);
  ASSERT_EQ(scenario.topic.subscribers.size(), 30u);

  // Reference: per-client subscribers on the fast path. Candidates: the
  // cohort plane, single-threaded and on four shards.
  auto reference = std::make_unique<LiveSystem>(scenario);
  const std::vector<std::uint32_t> shard_counts{1, 4};
  std::vector<std::unique_ptr<LiveSystem>> candidates;
  std::vector<LiveSystem*> systems{reference.get()};
  for (std::uint32_t shards : shard_counts) {
    candidates.push_back(std::make_unique<LiveSystem>(scenario));
    candidates.back()->set_cohorts(true);
    candidates.back()->set_shards(shards);
    ASSERT_TRUE(candidates.back()->cohorts());
    systems.push_back(candidates.back().get());
  }

  // Five-fold replication at six positions: six weight-5 cohorts.
  for (auto& candidate : candidates) {
    ASSERT_EQ(candidate->cohort_pool()->cohort_count(), 6u);
    ASSERT_EQ(candidate->cohort_pool()->flock_count(), 6u);
    for (std::int32_t c = 0; c < 6; ++c) {
      ASSERT_EQ(candidate->cohort_pool()->cohort_weight(c), 5u);
    }
  }

  for (LiveSystem* sys : systems) sys->set_incremental(incremental);

  const core::TopicConfig bootstrap{geo::RegionSet::universe(10),
                                    core::DeliveryMode::kRouted};
  for (LiveSystem* sys : systems) sys->deploy(bootstrap);

  std::vector<Rng> traffic;
  for (std::size_t i = 0; i < systems.size(); ++i) traffic.emplace_back(555);
  Rng rng_rounds(556);

  const TopicId topic = scenario.topic.topic;
  const ClientId churner = scenario.topic.subscribers.back().client;
  RegionId failed{-1};
  for (int round = 0; round < 12; ++round) {
    const double rate_hz = rng_rounds.uniform(0.5, 3.0);
    std::vector<LiveRunResult> runs;
    for (std::size_t i = 0; i < systems.size(); ++i) {
      runs.push_back(
          systems[i]->run_interval(10.0, 1024, rate_hz, traffic[i]));
    }
    for (std::size_t i = 1; i < systems.size(); ++i) {
      // Doubles along the hop chain — exact equality, not approximate, and
      // in the same per-subscriber concatenation order.
      ASSERT_EQ(runs[i].delivery_times, runs[0].delivery_times)
          << "round " << round << " shards " << shard_counts[i - 1];
      ASSERT_EQ(runs[i].interval_cost, runs[0].interval_cost)
          << "round " << round << " shards " << shard_counts[i - 1];
    }

    if (round == 3) {
      // Churn: one member leaves its weight-5 cohort in every system.
      reference->subscribers().back()->unsubscribe(topic);
      reference->simulator().run();
      for (auto& candidate : candidates) {
        candidate->cohort_pool()->unsubscribe_client(churner, topic);
        candidate->simulator().run();
        ASSERT_EQ(candidate->cohort_pool()->flock_of(churner, topic), -1);
      }
    }
    if (round == 9) {
      // ...and rejoins, attaching to whatever is deployed right now.
      const auto* config = reference->controller().deployed_config(topic);
      ASSERT_NE(config, nullptr);
      reference->subscribers().back()->subscribe(topic, *config);
      reference->simulator().run();
      for (auto& candidate : candidates) {
        candidate->cohort_pool()->subscribe_client(churner, topic, *config);
        candidate->simulator().run();
        ASSERT_GE(candidate->cohort_pool()->flock_of(churner, topic), 0);
      }
    }
    if (round == 4) {
      const auto* config = reference->controller().deployed_config(topic);
      ASSERT_NE(config, nullptr);
      failed = config->regions.first();
      for (LiveSystem* sys : systems) {
        sys->transport().set_region_down(failed, true);
        sys->controller().set_region_available(failed, false);
      }
    }
    if (round == 7) {
      for (LiveSystem* sys : systems) {
        sys->transport().set_region_down(failed, false);
        sys->controller().set_region_available(failed, true);
      }
    }

    for (LiveSystem* sys : systems) (void)sys->control_round();
    const std::string matrix =
        reference->controller().render_assignment_matrix();
    const std::string snapshot = collect_metrics(*reference).render();
    for (std::size_t i = 1; i < systems.size(); ++i) {
      LiveSystem& sys = *systems[i];
      ASSERT_EQ(sys.controller().render_assignment_matrix(), matrix)
          << "round " << round << " shards " << shard_counts[i - 1];
      ASSERT_EQ(sys.transport().ledger().inter_region_bytes,
                reference->transport().ledger().inter_region_bytes)
          << "round " << round << " shards " << shard_counts[i - 1];
      ASSERT_EQ(sys.transport().ledger().internet_bytes,
                reference->transport().ledger().internet_bytes)
          << "round " << round << " shards " << shard_counts[i - 1];
      ASSERT_EQ(sys.transport().sent_count(),
                reference->transport().sent_count())
          << "round " << round << " shards " << shard_counts[i - 1];
      ASSERT_EQ(sys.transport().dropped_count(),
                reference->transport().dropped_count())
          << "round " << round << " shards " << shard_counts[i - 1];
      ASSERT_EQ(sys.transport().topic_cost(topic),
                reference->transport().topic_cost(topic))
          << "round " << round << " shards " << shard_counts[i - 1];
      // The rendered snapshot sweeps broker counters, the weighted client
      // books (reconnects/duplicates/deliveries) and the controller state.
      ASSERT_EQ(collect_metrics(sys).render(), snapshot)
          << "round " << round << " shards " << shard_counts[i - 1];
    }
  }
  ASSERT_NE(failed.value(), -1);
}

TEST_P(CohortDiff, CohortPlaneMatchesLegacyReferencePath) {
  // Transitivity anchor: the per-client LEGACY (std::function) path — the
  // seed's original data plane — against the cohort plane, over a couple of
  // plain traffic rounds. Locks the whole refactor chain seed -> fast path
  // -> cohorts to one observable behaviour.
  const bool incremental = GetParam();
  Rng rng(7);
  WorkloadSpec workload;
  workload.interval_seconds = 5.0;
  workload.subscriber_replication = 4;
  const Scenario scenario =
      make_scenario({{RegionId{1}, 1, 2}, {RegionId{8}, 1, 2}}, workload, rng);

  LiveSystem legacy(scenario);
  legacy.set_data_plane_fast_path(false);
  LiveSystem cohort(scenario);
  cohort.set_cohorts(true);
  legacy.set_incremental(incremental);
  cohort.set_incremental(incremental);

  const core::TopicConfig bootstrap{geo::RegionSet::universe(10),
                                    core::DeliveryMode::kDirect};
  legacy.deploy(bootstrap);
  cohort.deploy(bootstrap);

  Rng rng_legacy(99), rng_cohort(99);
  for (int round = 0; round < 4; ++round) {
    const auto a = legacy.run_interval(5.0, 512, 2.0, rng_legacy);
    const auto b = cohort.run_interval(5.0, 512, 2.0, rng_cohort);
    ASSERT_EQ(a.delivery_times, b.delivery_times) << "round " << round;
    ASSERT_EQ(a.interval_cost, b.interval_cost) << "round " << round;
    (void)legacy.control_round();
    (void)cohort.control_round();
    ASSERT_EQ(collect_metrics(legacy).render(),
              collect_metrics(cohort).render())
        << "round " << round;
  }
}

TEST_P(CohortDiff, ReliableControlKeepsPlanesIdenticalUnderDropSchedules) {
  // Regression for the kConfigUpdate-under-drop divergence: a probabilistic
  // drop rule on region-originated links could eat SOME members' config
  // updates, re-homing the per-client plane member-by-member while the
  // cohort plane re-homed whole flocks — the one schedule class the plane
  // equivalence proof had to exclude. With the reliable mode on, the fault
  // plan applies to data kinds only (control is TCP-backed in production,
  // DESIGN.md §15), so the planes must stay bit-identical under drop
  // schedules too — including while the drops are actively eating
  // deliveries and the replay machinery is healing them.
  const bool incremental = GetParam();
  Rng rng(2026);
  WorkloadSpec workload;
  workload.interval_seconds = 10.0;
  workload.ratio = 95.0;
  workload.max_t = 150.0;
  workload.subscriber_replication = 5;
  const Scenario scenario =
      make_scenario({{RegionId{0}, 2, 3}, {RegionId{5}, 2, 3}}, workload, rng);

  LiveSystem per_client(scenario);
  LiveSystem cohort(scenario);
  cohort.set_cohorts(true);
  per_client.set_incremental(incremental);
  cohort.set_incremental(incremental);
  per_client.set_reliable(true);
  cohort.set_reliable(true);

  // One permanently-active drop rule per system, same seed: region-origin
  // links only (deliveries and forwards), so both planes draw identical
  // per-link coin streams.
  net::FaultPlan plan_a(909);
  net::FaultPlan plan_b(909);
  net::FaultRule drop;
  drop.kind = net::FaultRule::Kind::kDrop;
  drop.from = net::FaultEndpoint::any_region();
  drop.to = net::FaultEndpoint::any();
  drop.drop_probability = 0.25;
  plan_a.add(drop);
  plan_b.add(drop);
  per_client.transport().set_fault_plan(&plan_a);
  cohort.transport().set_fault_plan(&plan_b);

  const core::TopicConfig bootstrap{geo::RegionSet::universe(10),
                                    core::DeliveryMode::kRouted};
  per_client.deploy(bootstrap);
  cohort.deploy(bootstrap);

  Rng traffic_a(555), traffic_b(555);
  Rng rng_rounds(556);
  const TopicId topic = scenario.topic.topic;
  RegionId failed{-1};
  for (int round = 0; round < 8; ++round) {
    const double rate_hz = rng_rounds.uniform(0.5, 3.0);
    const auto a = per_client.run_interval(10.0, 1024, rate_hz, traffic_a);
    const auto b = cohort.run_interval(10.0, 1024, rate_hz, traffic_b);
    ASSERT_EQ(a.delivery_times, b.delivery_times) << "round " << round;
    ASSERT_EQ(a.interval_cost, b.interval_cost) << "round " << round;

    if (round == 2) {
      // An outage forces real reconfigurations — the exact racing of
      // kConfigUpdate against drops that used to diverge the planes.
      const auto* config = per_client.controller().deployed_config(topic);
      ASSERT_NE(config, nullptr);
      failed = config->regions.first();
      for (LiveSystem* sys : {&per_client, &cohort}) {
        sys->transport().set_region_down(failed, true);
        sys->controller().set_region_available(failed, false);
      }
    }
    if (round == 4) {
      for (LiveSystem* sys : {&per_client, &cohort}) {
        sys->transport().set_region_down(failed, false);
        sys->controller().set_region_available(failed, true);
      }
    }

    (void)per_client.control_round();
    (void)cohort.control_round();
    ASSERT_EQ(collect_metrics(per_client).render(),
              collect_metrics(cohort).render())
        << "round " << round;
  }
  ASSERT_NE(failed.value(), -1);
  // The rule really fired — this was not a vacuous pass.
  EXPECT_GT(plan_a.random_dropped(), 0u);
  EXPECT_EQ(plan_a.random_dropped(), plan_b.random_dropped());
}

INSTANTIATE_TEST_SUITE_P(ControlPlane, CohortDiff, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Incremental" : "FullScan";
                         });

}  // namespace
}  // namespace multipub::sim
