// End-to-end reconfiguration: the controller observes an interval, deploys a
// better configuration through the region managers, clients transparently
// reconnect, and subsequent traffic flows under the new configuration.
#include <gtest/gtest.h>

#include <map>

#include "sim/live_runner.h"
#include "sim/scenario.h"

namespace multipub::sim {
namespace {

class ReconfigurationTest : public ::testing::Test {
 protected:
  ReconfigurationTest() : rng_(41) {
    WorkloadSpec workload;
    workload.interval_seconds = 15.0;
    workload.ratio = 75.0;
    workload.max_t = kUnreachable;  // cost-only optimization
    scenario_ = make_scenario({{RegionId{0}, 2, 5}, {RegionId{5}, 2, 5}},
                              workload, rng_);
  }

  Rng rng_;
  Scenario scenario_;
};

TEST_F(ReconfigurationTest, ControllerConvergesToOptimizerAnswer) {
  // Bootstrap deliberately suboptimal: all ten regions, routed.
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  (void)live.run_interval(15.0, 1024, 1.0, rng_);

  const auto decisions = live.control_round();
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_TRUE(decisions[0].changed);

  // The deployed config equals what the optimizer says for the observed
  // state.
  const auto expected =
      scenario_.make_optimizer().optimize(live.observed_topic_state());
  EXPECT_EQ(decisions[0].result.config, expected.config);
}

TEST_F(ReconfigurationTest, SubscribersReattachToNewClosestRegion) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  (void)live.run_interval(15.0, 1024, 1.0, rng_);
  const auto decisions = live.control_round();
  ASSERT_FALSE(decisions.empty());
  const auto& config = decisions[0].result.config;

  for (const auto& subscriber : live.subscribers()) {
    const RegionId attached = subscriber->attached_region(scenario_.topic.topic);
    const RegionId expected = scenario_.population.latencies.closest_region(
        subscriber->id(), config.regions);
    EXPECT_EQ(attached, expected);
  }
}

TEST_F(ReconfigurationTest, TrafficAfterReconfigurationIsCompleteAndCheaper) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  const auto before = live.run_interval(15.0, 1024, 1.0, rng_);
  (void)live.control_round();
  const auto after = live.run_interval(15.0, 1024, 1.0, rng_);

  // No losses across the reconfiguration...
  EXPECT_EQ(after.deliveries,
            after.publications * scenario_.topic.subscribers.size());
  // ...and the optimized configuration bills strictly less than all-regions.
  EXPECT_LT(after.interval_cost, before.interval_cost);
}

TEST_F(ReconfigurationTest, StableWorkloadYieldsNoFurtherChanges) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  (void)live.run_interval(15.0, 1024, 1.0, rng_);
  (void)live.control_round();
  (void)live.run_interval(15.0, 1024, 1.0, rng_);
  const auto second = live.control_round();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_FALSE(second[0].changed);
}

TEST_F(ReconfigurationTest, PublishersLearnNewConfigViaRegionManagers) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  (void)live.run_interval(15.0, 1024, 1.0, rng_);
  (void)live.control_round();

  const auto* deployed =
      live.controller().deployed_config(scenario_.topic.topic);
  ASSERT_NE(deployed, nullptr);
  for (const auto& publisher : live.publishers()) {
    const auto* config = publisher->config(scenario_.topic.topic);
    ASSERT_NE(config, nullptr);
    EXPECT_EQ(*config, *deployed) << "publisher " << publisher->id().value();
    EXPECT_GE(publisher->config_updates_received(), 1u);
  }
}

TEST_F(ReconfigurationTest, AssignmentMatrixConsistentAcrossAllRegions) {
  // After a deployment, every region's broker must hold the controller's
  // assignment row (paper §III-A5: the new configuration is "sent in the
  // form of a bit vector to the region managers which then incorporate them
  // into their assignment matrix").
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  (void)live.run_interval(15.0, 1024, 1.0, rng_);
  (void)live.control_round();

  const auto* deployed =
      live.controller().deployed_config(scenario_.topic.topic);
  ASSERT_NE(deployed, nullptr);
  for (const auto& region : scenario_.catalog.all()) {
    const auto* row = live.region_manager(region.id).broker().topic_config(
        scenario_.topic.topic);
    ASSERT_NE(row, nullptr) << region.name;
    EXPECT_EQ(*row, *deployed) << region.name;
  }
  // The controller's rendered matrix shows exactly one row.
  const std::string rendered =
      live.controller().render_assignment_matrix();
  EXPECT_NE(rendered.find("topic 0 |"), std::string::npos);
}

TEST_F(ReconfigurationTest, TighterConstraintPullsInExpensiveAsiaRegion) {
  // Round 1 (unconstrained): the cost optimum only ever uses cheap-egress
  // regions (R1..R5 at $0.09/GB) — serving Tokyo-homed subscribers from an
  // Asia region would raise the bill. Round 2 (tight bound): one continent
  // cannot serve the other within 120 ms, so an Asia-Pacific region must
  // join the set despite its price.
  const geo::RegionSet asia(0b0111100000);  // R6..R9

  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  (void)live.run_interval(15.0, 1024, 1.0, rng_);
  const auto first = live.control_round();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].result.config.regions.mask() & asia.mask(), 0u);

  live.controller().set_constraint(scenario_.topic.topic, {75.0, 120.0});
  (void)live.run_interval(15.0, 1024, 1.0, rng_);
  const auto second = live.control_round();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NE(second[0].result.config.regions.mask() & asia.mask(), 0u);
}

}  // namespace
}  // namespace multipub::sim
