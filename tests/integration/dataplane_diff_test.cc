// Live differential run for the data-plane fast path: two identical systems
// driven by identical traffic, one on the typed-event / batched fan-out
// scheduling (the default), one on the seed's std::function-per-hop
// reference path. Across a randomized multi-round scenario with rate
// shifts, jittered latencies, churn, reconfigurations and a region outage
// with recovery, every observable — delivery times, broker counters, the
// CostLedger, and the full metrics snapshot — must stay bit-identical.
//
// Parameterized over the control-plane pipeline (incremental vs full-scan,
// applied to BOTH systems) so each scheduling path is proven under each
// reconfiguration path.
// A second sweep proves the sharded parallel plane (DESIGN.md §11): the
// same script over shard counts {1, 2, 4, 8}, every observable compared
// against the single-threaded fast path — the shard count must never be
// observable. That sweep is itself parameterized over the full tuning grid
// {incremental, full-scan} x {round-robin, topology} x {fixed, adaptive}
// (DESIGN.md §14): neither the placement nor the window policy may be
// observable either.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "net/shard_placement.h"
#include "sim/live_runner.h"
#include "sim/metrics_snapshot.h"
#include "sim/scenario.h"

namespace multipub::sim {
namespace {

class DataPlaneDiff : public ::testing::TestWithParam<bool> {};

TEST_P(DataPlaneDiff, FastPathIsBitIdenticalToSeedPathAcrossLiveRounds) {
  const bool incremental = GetParam();
  Rng rng(2026);
  WorkloadSpec workload;
  workload.interval_seconds = 10.0;
  workload.ratio = 95.0;
  workload.max_t = 150.0;
  const Scenario scenario =
      make_scenario({{RegionId{0}, 2, 4}, {RegionId{5}, 2, 4}}, workload, rng);

  LiveSystem fast(scenario);
  LiveSystem seed(scenario);
  seed.set_data_plane_fast_path(false);
  fast.set_incremental(incremental);
  seed.set_incremental(incremental);
  ASSERT_TRUE(fast.data_plane_fast_path());
  ASSERT_FALSE(seed.data_plane_fast_path());

  // Jitter exercises the per-hop RNG draw order, which both paths must
  // consume identically.
  const net::SimTransport::JitterSpec jitter{0.05, 1.5};
  fast.transport().enable_jitter(jitter, 99);
  seed.transport().enable_jitter(jitter, 99);

  const core::TopicConfig bootstrap{geo::RegionSet::universe(10),
                                    core::DeliveryMode::kRouted};
  fast.deploy(bootstrap);
  seed.deploy(bootstrap);

  // Identical traffic: independent generators with the same seed; the
  // per-round rates themselves are randomized through a third stream.
  Rng rng_fast(555);
  Rng rng_seed(555);
  Rng rng_rounds(556);

  const TopicId topic = scenario.topic.topic;
  RegionId failed{-1};
  for (int round = 0; round < 12; ++round) {
    const double rate_hz = rng_rounds.uniform(0.5, 3.0);
    const auto fast_run = fast.run_interval(10.0, 1024, rate_hz, rng_fast);
    const auto seed_run = seed.run_interval(10.0, 1024, rate_hz, rng_seed);

    // Delivery times are doubles computed along the hop chain — exact
    // equality, not approximate.
    ASSERT_EQ(fast_run.delivery_times.size(), seed_run.delivery_times.size())
        << "round " << round;
    for (std::size_t i = 0; i < fast_run.delivery_times.size(); ++i) {
      ASSERT_EQ(fast_run.delivery_times[i], seed_run.delivery_times[i])
          << "round " << round << " delivery " << i;
    }
    ASSERT_EQ(fast_run.interval_cost, seed_run.interval_cost)
        << "round " << round;

    if (round == 3) {
      // Churn: the last subscriber leaves both systems...
      fast.subscribers().back()->unsubscribe(topic);
      seed.subscribers().back()->unsubscribe(topic);
      fast.simulator().run();
      seed.simulator().run();
    }
    if (round == 9) {
      // ...and rejoins, attaching to whatever is deployed right now.
      const auto* config = fast.controller().deployed_config(topic);
      ASSERT_NE(config, nullptr);
      fast.subscribers().back()->subscribe(topic, *config);
      seed.subscribers().back()->subscribe(topic, *config);
      fast.simulator().run();
      seed.simulator().run();
    }
    if (round == 4) {
      // Outage of a currently serving region, on both systems.
      const auto* config = fast.controller().deployed_config(topic);
      ASSERT_NE(config, nullptr);
      failed = config->regions.first();
      for (LiveSystem* sys : {&fast, &seed}) {
        sys->transport().set_region_down(failed, true);
        sys->controller().set_region_available(failed, false);
      }
    }
    if (round == 7) {
      for (LiveSystem* sys : {&fast, &seed}) {
        sys->transport().set_region_down(failed, false);
        sys->controller().set_region_available(failed, true);
      }
    }

    // Reconfigurations ride along: both systems run their control round and
    // must deploy identical matrices (the control plane feeds off the data
    // plane's observed traffic, so this also checks the statistics agree).
    (void)fast.control_round();
    (void)seed.control_round();
    ASSERT_EQ(fast.controller().render_assignment_matrix(),
              seed.controller().render_assignment_matrix())
        << "round " << round;

    // Ledger: per-region byte vectors, exact.
    ASSERT_EQ(fast.transport().ledger().inter_region_bytes,
              seed.transport().ledger().inter_region_bytes)
        << "round " << round;
    ASSERT_EQ(fast.transport().ledger().internet_bytes,
              seed.transport().ledger().internet_bytes)
        << "round " << round;
    ASSERT_EQ(fast.transport().sent_count(), seed.transport().sent_count())
        << "round " << round;
    ASSERT_EQ(fast.transport().dropped_count(),
              seed.transport().dropped_count())
        << "round " << round;
    ASSERT_EQ(fast.transport().topic_cost(topic),
              seed.transport().topic_cost(topic))
        << "round " << round;

    // Broker counters per region.
    for (const auto& region : scenario.catalog.all()) {
      const auto& broker_fast = fast.region_manager(region.id).broker();
      const auto& broker_seed = seed.region_manager(region.id).broker();
      ASSERT_EQ(broker_fast.delivered_count(), broker_seed.delivered_count())
          << "round " << round << " region " << region.name;
      ASSERT_EQ(broker_fast.forwarded_count(), broker_seed.forwarded_count())
          << "round " << round << " region " << region.name;
      ASSERT_EQ(broker_fast.drain_forwarded_count(),
                broker_seed.drain_forwarded_count())
          << "round " << round << " region " << region.name;
      ASSERT_EQ(broker_fast.filtered_count(), broker_seed.filtered_count())
          << "round " << round << " region " << region.name;
    }

    // The whole rendered snapshot (%.17g — round-trippable doubles), which
    // also covers cost_usd, client-side reconnects/duplicates/deliveries
    // and the controller counters.
    ASSERT_EQ(collect_metrics(fast).render(), collect_metrics(seed).render())
        << "round " << round;
  }

  // The scenario actually exercised the outage branch.
  ASSERT_NE(failed.value(), -1);
}

INSTANTIATE_TEST_SUITE_P(ControlPlane, DataPlaneDiff, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Incremental" : "FullScan";
                         });

using ShardedTuning =
    std::tuple<bool, net::ShardPlacement, net::WindowPolicy>;

class ShardedPlaneDiff : public ::testing::TestWithParam<ShardedTuning> {};

TEST_P(ShardedPlaneDiff, BitIdenticalForEveryShardCount) {
  const auto [incremental, placement, policy] = GetParam();
  Rng rng(2026);
  WorkloadSpec workload;
  workload.interval_seconds = 10.0;
  workload.ratio = 95.0;
  workload.max_t = 150.0;
  const Scenario scenario =
      make_scenario({{RegionId{0}, 2, 4}, {RegionId{5}, 2, 4}}, workload, rng);

  // The reference never calls set_shards at all; the candidates sweep the
  // shard counts, including the trivial K = 1 (same plane, exercised
  // through the configuration path).
  const std::vector<std::uint32_t> shard_counts{1, 2, 4, 8};
  auto reference = std::make_unique<LiveSystem>(scenario);
  std::vector<std::unique_ptr<LiveSystem>> candidates;
  std::vector<LiveSystem*> systems{reference.get()};
  for (std::uint32_t shards : shard_counts) {
    candidates.push_back(std::make_unique<LiveSystem>(scenario));
    candidates.back()->set_shard_placement(placement);
    candidates.back()->set_window_policy(policy);
    candidates.back()->set_shards(shards);
    ASSERT_EQ(candidates.back()->shards(), shards);
    systems.push_back(candidates.back().get());
  }

  const net::SimTransport::JitterSpec jitter{0.05, 1.5};
  for (LiveSystem* sys : systems) {
    sys->set_incremental(incremental);
    sys->transport().enable_jitter(jitter, 99);
  }

  const core::TopicConfig bootstrap{geo::RegionSet::universe(10),
                                    core::DeliveryMode::kRouted};
  for (LiveSystem* sys : systems) sys->deploy(bootstrap);

  // Identical traffic: one generator per system, all seeded alike; the
  // per-round rates come from a shared side stream.
  std::vector<Rng> traffic;
  for (std::size_t i = 0; i < systems.size(); ++i) traffic.emplace_back(555);
  Rng rng_rounds(556);

  const TopicId topic = scenario.topic.topic;
  RegionId failed{-1};
  for (int round = 0; round < 12; ++round) {
    const double rate_hz = rng_rounds.uniform(0.5, 3.0);
    std::vector<LiveRunResult> runs;
    for (std::size_t i = 0; i < systems.size(); ++i) {
      runs.push_back(systems[i]->run_interval(10.0, 1024, rate_hz,
                                              traffic[i]));
    }
    for (std::size_t i = 1; i < systems.size(); ++i) {
      ASSERT_EQ(runs[i].delivery_times, runs[0].delivery_times)
          << "round " << round << " shards " << shard_counts[i - 1];
      ASSERT_EQ(runs[i].interval_cost, runs[0].interval_cost)
          << "round " << round << " shards " << shard_counts[i - 1];
    }

    if (round == 3) {
      for (LiveSystem* sys : systems) {
        sys->subscribers().back()->unsubscribe(topic);
        sys->simulator().run();
      }
    }
    if (round == 9) {
      const auto* config = reference->controller().deployed_config(topic);
      ASSERT_NE(config, nullptr);
      for (LiveSystem* sys : systems) {
        sys->subscribers().back()->subscribe(topic, *config);
        sys->simulator().run();
      }
    }
    if (round == 4) {
      const auto* config = reference->controller().deployed_config(topic);
      ASSERT_NE(config, nullptr);
      failed = config->regions.first();
      for (LiveSystem* sys : systems) {
        sys->transport().set_region_down(failed, true);
        sys->controller().set_region_available(failed, false);
      }
    }
    if (round == 7) {
      for (LiveSystem* sys : systems) {
        sys->transport().set_region_down(failed, false);
        sys->controller().set_region_available(failed, true);
      }
    }

    for (LiveSystem* sys : systems) (void)sys->control_round();
    const std::string matrix =
        reference->controller().render_assignment_matrix();
    const std::string snapshot = collect_metrics(*reference).render();
    for (std::size_t i = 1; i < systems.size(); ++i) {
      LiveSystem& sys = *systems[i];
      ASSERT_EQ(sys.controller().render_assignment_matrix(), matrix)
          << "round " << round << " shards " << shard_counts[i - 1];
      ASSERT_EQ(sys.transport().ledger().inter_region_bytes,
                reference->transport().ledger().inter_region_bytes)
          << "round " << round << " shards " << shard_counts[i - 1];
      ASSERT_EQ(sys.transport().ledger().internet_bytes,
                reference->transport().ledger().internet_bytes)
          << "round " << round << " shards " << shard_counts[i - 1];
      ASSERT_EQ(sys.transport().sent_count(),
                reference->transport().sent_count())
          << "round " << round << " shards " << shard_counts[i - 1];
      ASSERT_EQ(sys.transport().topic_cost(topic),
                reference->transport().topic_cost(topic))
          << "round " << round << " shards " << shard_counts[i - 1];
      // The full rendered snapshot covers broker counters, client books and
      // the controller state in one sweep.
      ASSERT_EQ(collect_metrics(sys).render(), snapshot)
          << "round " << round << " shards " << shard_counts[i - 1];
    }
  }
  ASSERT_NE(failed.value(), -1);
}

std::string sharded_tuning_name(
    const ::testing::TestParamInfo<ShardedTuning>& info) {
  const auto [incremental, placement, policy] = info.param;
  std::string name = incremental ? "Incremental" : "FullScan";
  name += placement == net::ShardPlacement::kRoundRobin ? "RoundRobin"
                                                        : "Topology";
  name += policy == net::WindowPolicy::kFixed ? "Fixed" : "Adaptive";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Tuning, ShardedPlaneDiff,
    ::testing::Combine(
        ::testing::Bool(),
        ::testing::Values(net::ShardPlacement::kRoundRobin,
                          net::ShardPlacement::kTopology),
        ::testing::Values(net::WindowPolicy::kFixed,
                          net::WindowPolicy::kAdaptive)),
    sharded_tuning_name);

}  // namespace
}  // namespace multipub::sim
