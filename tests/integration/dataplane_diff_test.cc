// Live differential run for the data-plane fast path: two identical systems
// driven by identical traffic, one on the typed-event / batched fan-out
// scheduling (the default), one on the seed's std::function-per-hop
// reference path. Across a randomized multi-round scenario with rate
// shifts, jittered latencies, churn, reconfigurations and a region outage
// with recovery, every observable — delivery times, broker counters, the
// CostLedger, and the full metrics snapshot — must stay bit-identical.
//
// Parameterized over the control-plane pipeline (incremental vs full-scan,
// applied to BOTH systems) so each scheduling path is proven under each
// reconfiguration path.
#include <gtest/gtest.h>

#include "sim/live_runner.h"
#include "sim/metrics_snapshot.h"
#include "sim/scenario.h"

namespace multipub::sim {
namespace {

class DataPlaneDiff : public ::testing::TestWithParam<bool> {};

TEST_P(DataPlaneDiff, FastPathIsBitIdenticalToSeedPathAcrossLiveRounds) {
  const bool incremental = GetParam();
  Rng rng(2026);
  WorkloadSpec workload;
  workload.interval_seconds = 10.0;
  workload.ratio = 95.0;
  workload.max_t = 150.0;
  const Scenario scenario =
      make_scenario({{RegionId{0}, 2, 4}, {RegionId{5}, 2, 4}}, workload, rng);

  LiveSystem fast(scenario);
  LiveSystem seed(scenario);
  seed.set_data_plane_fast_path(false);
  fast.set_incremental(incremental);
  seed.set_incremental(incremental);
  ASSERT_TRUE(fast.data_plane_fast_path());
  ASSERT_FALSE(seed.data_plane_fast_path());

  // Jitter exercises the per-hop RNG draw order, which both paths must
  // consume identically.
  const net::SimTransport::JitterSpec jitter{0.05, 1.5};
  fast.transport().enable_jitter(jitter, 99);
  seed.transport().enable_jitter(jitter, 99);

  const core::TopicConfig bootstrap{geo::RegionSet::universe(10),
                                    core::DeliveryMode::kRouted};
  fast.deploy(bootstrap);
  seed.deploy(bootstrap);

  // Identical traffic: independent generators with the same seed; the
  // per-round rates themselves are randomized through a third stream.
  Rng rng_fast(555);
  Rng rng_seed(555);
  Rng rng_rounds(556);

  const TopicId topic = scenario.topic.topic;
  RegionId failed{-1};
  for (int round = 0; round < 12; ++round) {
    const double rate_hz = rng_rounds.uniform(0.5, 3.0);
    const auto fast_run = fast.run_interval(10.0, 1024, rate_hz, rng_fast);
    const auto seed_run = seed.run_interval(10.0, 1024, rate_hz, rng_seed);

    // Delivery times are doubles computed along the hop chain — exact
    // equality, not approximate.
    ASSERT_EQ(fast_run.delivery_times.size(), seed_run.delivery_times.size())
        << "round " << round;
    for (std::size_t i = 0; i < fast_run.delivery_times.size(); ++i) {
      ASSERT_EQ(fast_run.delivery_times[i], seed_run.delivery_times[i])
          << "round " << round << " delivery " << i;
    }
    ASSERT_EQ(fast_run.interval_cost, seed_run.interval_cost)
        << "round " << round;

    if (round == 3) {
      // Churn: the last subscriber leaves both systems...
      fast.subscribers().back()->unsubscribe(topic);
      seed.subscribers().back()->unsubscribe(topic);
      fast.simulator().run();
      seed.simulator().run();
    }
    if (round == 9) {
      // ...and rejoins, attaching to whatever is deployed right now.
      const auto* config = fast.controller().deployed_config(topic);
      ASSERT_NE(config, nullptr);
      fast.subscribers().back()->subscribe(topic, *config);
      seed.subscribers().back()->subscribe(topic, *config);
      fast.simulator().run();
      seed.simulator().run();
    }
    if (round == 4) {
      // Outage of a currently serving region, on both systems.
      const auto* config = fast.controller().deployed_config(topic);
      ASSERT_NE(config, nullptr);
      failed = config->regions.first();
      for (LiveSystem* sys : {&fast, &seed}) {
        sys->transport().set_region_down(failed, true);
        sys->controller().set_region_available(failed, false);
      }
    }
    if (round == 7) {
      for (LiveSystem* sys : {&fast, &seed}) {
        sys->transport().set_region_down(failed, false);
        sys->controller().set_region_available(failed, true);
      }
    }

    // Reconfigurations ride along: both systems run their control round and
    // must deploy identical matrices (the control plane feeds off the data
    // plane's observed traffic, so this also checks the statistics agree).
    (void)fast.control_round();
    (void)seed.control_round();
    ASSERT_EQ(fast.controller().render_assignment_matrix(),
              seed.controller().render_assignment_matrix())
        << "round " << round;

    // Ledger: per-region byte vectors, exact.
    ASSERT_EQ(fast.transport().ledger().inter_region_bytes,
              seed.transport().ledger().inter_region_bytes)
        << "round " << round;
    ASSERT_EQ(fast.transport().ledger().internet_bytes,
              seed.transport().ledger().internet_bytes)
        << "round " << round;
    ASSERT_EQ(fast.transport().sent_count(), seed.transport().sent_count())
        << "round " << round;
    ASSERT_EQ(fast.transport().dropped_count(),
              seed.transport().dropped_count())
        << "round " << round;
    ASSERT_EQ(fast.transport().topic_cost(topic),
              seed.transport().topic_cost(topic))
        << "round " << round;

    // Broker counters per region.
    for (const auto& region : scenario.catalog.all()) {
      const auto& broker_fast = fast.region_manager(region.id).broker();
      const auto& broker_seed = seed.region_manager(region.id).broker();
      ASSERT_EQ(broker_fast.delivered_count(), broker_seed.delivered_count())
          << "round " << round << " region " << region.name;
      ASSERT_EQ(broker_fast.forwarded_count(), broker_seed.forwarded_count())
          << "round " << round << " region " << region.name;
      ASSERT_EQ(broker_fast.drain_forwarded_count(),
                broker_seed.drain_forwarded_count())
          << "round " << round << " region " << region.name;
      ASSERT_EQ(broker_fast.filtered_count(), broker_seed.filtered_count())
          << "round " << round << " region " << region.name;
    }

    // The whole rendered snapshot (%.17g — round-trippable doubles), which
    // also covers cost_usd, client-side reconnects/duplicates/deliveries
    // and the controller counters.
    ASSERT_EQ(collect_metrics(fast).render(), collect_metrics(seed).render())
        << "round " << round;
  }

  // The scenario actually exercised the outage branch.
  ASSERT_NE(failed.value(), -1);
}

INSTANTIATE_TEST_SUITE_P(ControlPlane, DataPlaneDiff, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Incremental" : "FullScan";
                         });

}  // namespace
}  // namespace multipub::sim
