// Content-based filtering (the paper's §VII future-work extension),
// end-to-end: key-filtered subscriptions through broker matching, billing,
// and the selectivity-aware cost model.
#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "sim/live_runner.h"
#include "sim/scenario.h"

namespace multipub::sim {
namespace {

class ContentFilterTest : public ::testing::Test {
 protected:
  ContentFilterTest() : rng_(131) {
    WorkloadSpec workload;
    workload.interval_seconds = 10.0;
    workload.ratio = 75.0;
    scenario_ = make_scenario({{RegionId{0}, 1, 2}}, workload, rng_);
  }

  Rng rng_;
  Scenario scenario_;
};

TEST_F(ContentFilterTest, FilteredSubscriberReceivesOnlyMatchingKeys) {
  LiveSystem live(scenario_);
  const core::TopicConfig config{geo::RegionSet::single(RegionId{0}),
                                 core::DeliveryMode::kDirect};
  live.deploy(config);

  // Re-subscribe subscriber 0 with a filter for keys 0..4; subscriber 1
  // keeps the match-all default.
  auto& filtered = *live.subscribers()[0];
  filtered.subscribe(scenario_.topic.topic, config, wire::KeyFilter{0, 4});
  live.simulator().run();

  // Publish keys 0..9 round-robin.
  auto& publisher = *live.publishers()[0];
  for (std::uint64_t k = 0; k < 10; ++k) {
    live.simulator().schedule_after(100.0 * static_cast<double>(k + 1),
                                    [&publisher, this, k] {
                                      publisher.publish(scenario_.topic.topic,
                                                        512, k);
                                    });
  }
  live.simulator().run();

  EXPECT_EQ(filtered.deliveries().size(), 5u);   // keys 0..4 only
  EXPECT_EQ(live.subscribers()[1]->deliveries().size(), 10u);
}

TEST_F(ContentFilterTest, FilterSurvivesReconnection) {
  LiveSystem live(scenario_);
  const core::TopicConfig initial{geo::RegionSet::single(RegionId{0}),
                                  core::DeliveryMode::kDirect};
  live.deploy(initial);

  auto& filtered = *live.subscribers()[0];
  filtered.subscribe(scenario_.topic.topic, initial, wire::KeyFilter{0, 4});
  live.simulator().run();

  // Move the topic to another region; the subscriber reconnects and must
  // re-register the same filter there.
  const core::TopicConfig moved{geo::RegionSet::single(RegionId{1}),
                                core::DeliveryMode::kDirect};
  live.region_manager(RegionId{0}).apply_config(scenario_.topic.topic, moved);
  live.region_manager(RegionId{1}).apply_config(scenario_.topic.topic, moved);
  // The publisher has not published yet, so no region manager knows it;
  // bootstrap its new config directly (a real publisher would have been
  // notified by the manager that saw its traffic).
  live.publishers()[0]->set_config(scenario_.topic.topic, moved);
  live.simulator().run();

  auto& publisher = *live.publishers()[0];
  for (std::uint64_t k = 0; k < 10; ++k) {
    live.simulator().schedule_after(2000.0 + 100.0 * static_cast<double>(k),
                                    [&publisher, this, k] {
                                      publisher.publish(scenario_.topic.topic,
                                                        512, k);
                                    });
  }
  live.simulator().run();
  EXPECT_EQ(filtered.deliveries().size(), 5u);
  EXPECT_EQ(filtered.attached_region(scenario_.topic.topic), RegionId{1});
}

TEST_F(ContentFilterTest, BillingFollowsActualDeliveries) {
  // Selectivity 0.5 (filter matches 5 of 10 round-robin keys): the live
  // bill must equal the cost model with selectivity 0.5 on that subscriber.
  LiveSystem live(scenario_);
  const core::TopicConfig config{geo::RegionSet::single(RegionId{0}),
                                 core::DeliveryMode::kDirect};
  live.deploy(config);

  auto& filtered = *live.subscribers()[0];
  filtered.subscribe(scenario_.topic.topic, config, wire::KeyFilter{0, 4});
  live.simulator().run();

  const Dollars before =
      live.transport().ledger().total_cost(scenario_.catalog);
  auto& publisher = *live.publishers()[0];
  const std::uint64_t n_msgs = 40;
  for (std::uint64_t k = 0; k < n_msgs; ++k) {
    live.simulator().schedule_after(100.0 * static_cast<double>(k + 1),
                                    [&publisher, this, k] {
                                      publisher.publish(scenario_.topic.topic,
                                                        1000, k % 10);
                                    });
  }
  live.simulator().run();
  const Dollars billed =
      live.transport().ledger().total_cost(scenario_.catalog) - before;

  core::TopicState state = scenario_.topic;
  state.publishers[0].msg_count = n_msgs;
  state.publishers[0].total_bytes = n_msgs * 1000;
  state.subscribers[0].selectivity = 0.5;
  const core::CostModel model(scenario_.catalog,
                              scenario_.population.latencies);
  EXPECT_NEAR(billed, model.cost(state, config), 1e-12);
}

TEST_F(ContentFilterTest, SelectivityLowersModelCostProportionally) {
  core::TopicState state = scenario_.topic;
  const core::CostModel model(scenario_.catalog,
                              scenario_.population.latencies);
  const core::TopicConfig config{geo::RegionSet::single(RegionId{0}),
                                 core::DeliveryMode::kDirect};
  const Dollars full = model.cost(state, config);
  state.subscribers[0].selectivity = 0.25;
  state.subscribers[1].selectivity = 0.25;
  EXPECT_NEAR(model.cost(state, config), 0.25 * full, 1e-15);
}

TEST_F(ContentFilterTest, SelectivityDoesNotChangePercentile) {
  // Filtering is independent of latency: the delivery-time percentile of
  // what IS delivered stays the same.
  const core::DeliveryModel model(scenario_.backbone,
                                  scenario_.population.latencies);
  const core::TopicConfig config{geo::RegionSet::single(RegionId{0}),
                                 core::DeliveryMode::kDirect};
  core::TopicState state = scenario_.topic;
  const Millis before = model.delivery_percentile(state, config, 75.0);
  state.subscribers[0].selectivity = 0.1;
  EXPECT_DOUBLE_EQ(model.delivery_percentile(state, config, 75.0), before);
}

}  // namespace
}  // namespace multipub::sim
