// Region-outage injection: a region dies mid-run, the controller excludes
// it, clients migrate, and service recovers. Messages in flight during the
// outage are lost (MultiPub is best-effort pub/sub, as in the paper); the
// assertions are about detection, exclusion and full recovery.
#include <gtest/gtest.h>

#include "sim/live_runner.h"
#include "sim/scenario.h"

namespace multipub::sim {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  FailureTest() : rng_(101) {
    WorkloadSpec workload;
    workload.interval_seconds = 10.0;
    // Ratio 95: with clients split 50/50 across two continents, a single
    // region could satisfy ratio 75 by sacrificing one quadrant of the
    // traffic; 95 forces coverage on both sides.
    workload.ratio = 95.0;
    workload.max_t = 150.0;
    scenario_ = make_scenario({{RegionId{0}, 2, 4}, {RegionId{5}, 2, 4}},
                              workload, rng_);
  }

  Rng rng_;
  Scenario scenario_;
};

TEST_F(FailureTest, DeadRegionDeliversNothingAndBillsNothing) {
  LiveSystem live(scenario_);
  const core::TopicConfig tokyo_only{geo::RegionSet(0b0000100000),
                                     core::DeliveryMode::kDirect};
  live.deploy(tokyo_only);
  live.transport().set_region_down(RegionId{5}, true);

  const auto run = live.run_interval(10.0, 1024, 1.0, rng_);
  EXPECT_EQ(run.deliveries, 0u);
  EXPECT_DOUBLE_EQ(run.interval_cost, 0.0);
  EXPECT_GT(live.transport().dropped_count(), 0u);
}

TEST_F(FailureTest, ControllerExcludesFailedRegion) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  (void)live.run_interval(10.0, 1024, 1.0, rng_);
  const auto healthy = live.control_round();
  ASSERT_EQ(healthy.size(), 1u);
  // With clients split US/Tokyo and a 150 ms bound, some Asia-Pacific
  // region serves the Asian half (which one is the optimizer's business —
  // Seoul often wins on price).
  const geo::RegionSet asia(0b0111100000);
  const geo::RegionSet serving_asia =
      healthy[0].result.config.regions & asia;
  ASSERT_FALSE(serving_asia.empty());

  // Those regions go dark: the operator (or a health monitor) tells the
  // controller, and the next round routes around them.
  for (RegionId r : serving_asia.to_vector()) {
    live.controller().set_region_available(r, false);
  }
  (void)live.run_interval(10.0, 1024, 1.0, rng_);
  const auto degraded = live.control_round();
  ASSERT_EQ(degraded.size(), 1u);
  EXPECT_TRUE(
      (degraded[0].result.config.regions & serving_asia).empty());
}

TEST_F(FailureTest, ServiceRecoversAfterFailover) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  (void)live.run_interval(10.0, 1024, 1.0, rng_);
  (void)live.control_round();

  // Outage: both the network truth and the controller's view.
  live.transport().set_region_down(RegionId{5}, true);
  live.controller().set_region_available(RegionId{5}, false);

  // The interval during the outage loses the messages that needed Tokyo...
  (void)live.run_interval(10.0, 1024, 1.0, rng_);
  (void)live.control_round();

  // ...but once clients have migrated, delivery is complete again.
  const auto recovered = live.run_interval(10.0, 1024, 1.0, rng_);
  EXPECT_EQ(recovered.deliveries,
            recovered.publications * scenario_.topic.subscribers.size());
  for (const auto& sub : live.subscribers()) {
    EXPECT_NE(sub->attached_region(scenario_.topic.topic), RegionId{5});
  }
}

TEST_F(FailureTest, RegionComesBackAndIsUsedAgain) {
  // Determine the healthy optimum, fail one of its regions, then restore
  // it: the deployment must return to the original configuration (the
  // workload is deterministic).
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  (void)live.run_interval(10.0, 1024, 1.0, rng_);
  const auto healthy = live.control_round();
  ASSERT_EQ(healthy.size(), 1u);
  const auto healthy_config = healthy[0].result.config;
  const RegionId failed = healthy_config.regions.first();

  live.controller().set_region_available(failed, false);
  (void)live.run_interval(10.0, 1024, 1.0, rng_);
  const auto without = live.control_round();
  ASSERT_EQ(without.size(), 1u);
  ASSERT_FALSE(without[0].result.config.regions.contains(failed));

  live.controller().set_region_available(failed, true);
  (void)live.run_interval(10.0, 1024, 1.0, rng_);
  const auto with = live.control_round();
  ASSERT_EQ(with.size(), 1u);
  EXPECT_EQ(with[0].result.config, healthy_config);
}

TEST_F(FailureTest, AllRegionsDownKeepsLastCandidates) {
  // Pathological: everything marked down. The controller refuses to deploy
  // an empty set and keeps optimizing over the full catalog.
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  for (int r = 0; r < 10; ++r) {
    live.controller().set_region_available(RegionId{r}, false);
  }
  (void)live.run_interval(10.0, 1024, 1.0, rng_);
  const auto decisions = live.control_round();
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_FALSE(decisions[0].result.config.regions.empty());
}

TEST_F(FailureTest, SilentRegionIsAutoDetectedAndRecovered) {
  // Failure detection: the live driver stops ingesting one region's reports
  // (as would happen when its manager is unreachable); after the configured
  // number of silent rounds the controller marks it down by itself.
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  live.controller().enable_failure_detection(2);

  (void)live.run_interval(10.0, 1024, 1.0, rng_);
  const auto healthy = live.control_round();
  ASSERT_EQ(healthy.size(), 1u);
  const geo::RegionSet asia(0b0111100000);
  const geo::RegionSet serving_asia = healthy[0].result.config.regions & asia;
  ASSERT_FALSE(serving_asia.empty());
  const RegionId failed = serving_asia.first();

  // Simulate the dead manager by ingesting every region except `failed`.
  auto partial_round = [&] {
    for (const auto& region : scenario_.catalog.all()) {
      if (region.id == failed) {
        // Drain but do not deliver — the controller never hears from it.
        (void)live.region_manager(region.id).collect_reports();
        continue;
      }
      const auto batch = live.region_manager(region.id).collect_reports();
      live.controller().ingest(region.id, batch.reports,
                               batch.full_snapshot);
    }
    return live.controller().reconfigure();
  };

  (void)live.run_interval(10.0, 1024, 1.0, rng_);
  (void)partial_round();  // 1 missed round: still trusted
  EXPECT_TRUE(live.controller().region_available(failed));
  EXPECT_EQ(live.controller().missed_rounds(failed), 1);

  (void)live.run_interval(10.0, 1024, 1.0, rng_);
  const auto degraded = partial_round();
  EXPECT_FALSE(live.controller().region_available(failed));
  ASSERT_EQ(degraded.size(), 1u);
  EXPECT_FALSE(degraded[0].result.config.regions.contains(failed));

  // The manager comes back: one ingest clears the suspicion.
  live.controller().ingest(failed, {});
  EXPECT_TRUE(live.controller().region_available(failed));
  EXPECT_EQ(live.controller().missed_rounds(failed), 0);
}

TEST(TransportOutage, FlagIsQueryableAndReversible) {
  Rng rng(102);
  WorkloadSpec workload;
  const Scenario scenario = make_scenario({{RegionId{0}, 1, 1}}, workload, rng);
  LiveSystem live(scenario);
  EXPECT_FALSE(live.transport().region_down(RegionId{3}));
  live.transport().set_region_down(RegionId{3}, true);
  EXPECT_TRUE(live.transport().region_down(RegionId{3}));
  live.transport().set_region_down(RegionId{3}, false);
  EXPECT_FALSE(live.transport().region_down(RegionId{3}));
}

}  // namespace
}  // namespace multipub::sim
