// Shape tests for the paper's experiments: the qualitative claims of
// Figures 3-5 must hold on our synthetic latency world. (The bench binaries
// print the full series; these tests pin the shapes so regressions fail CI.)
#include <gtest/gtest.h>

#include "sim/baselines.h"
#include "sim/sweep.h"

namespace multipub::sim {
namespace {

TEST(Experiment1Shape, MultiPubInterpolatesBetweenBaselines) {
  Rng rng(51);
  const Scenario scenario = make_experiment1_scenario(rng);
  const auto optimizer = scenario.make_optimizer();

  auto topic = scenario.topic;
  topic.constraint.max = kUnreachable;
  const auto one = one_region_baseline(optimizer, topic);
  const auto all = all_regions_baseline(optimizer, topic,
                                        core::DeliveryMode::kRouted, 10);

  // Fig. 3a/3b: All-Regions is fast and expensive, One-Region slow and
  // cheap.
  EXPECT_LT(all.percentile, one.percentile);
  EXPECT_LT(one.cost, all.cost);

  // The savings order of magnitude matches the paper's 28 %.
  const double saving = 1.0 - one.cost / all.cost;
  EXPECT_GT(saving, 0.10);
  EXPECT_LT(saving, 0.60);

  // MultiPub sweeps between the two: at a bound no tighter than what
  // All-Regions achieves it matches the fast end; with a loose bound it
  // matches the cheap end.
  const auto points = sweep_max_t(scenario, {all.percentile, 400.0, 5.0});
  EXPECT_NEAR(points.back().cost_per_day,
              core::scale_to_day(one.cost, scenario.interval_seconds), 1e-6);
  for (const auto& p : points) {
    EXPECT_TRUE(p.constraint_met) << "max_t=" << p.max_t;
    EXPECT_LE(p.cost_per_day,
              core::scale_to_day(all.cost, scenario.interval_seconds) + 1e-9);
    EXPECT_GE(p.cost_per_day,
              core::scale_to_day(one.cost, scenario.interval_seconds) - 1e-9);
  }
}

TEST(Experiment1Shape, RegionCountDecreasesFromManyToOne) {
  Rng rng(52);
  const Scenario scenario = make_experiment1_scenario(rng);
  const auto points = sweep_max_t(scenario, {110.0, 400.0, 10.0});
  // Fig. 3c: tight bounds demand many regions, loose bounds one.
  EXPECT_GE(points.front().n_regions, 3);
  EXPECT_EQ(points.back().n_regions, 1);
}

TEST(Experiment2Shape, RoutedReachesLowerBoundsThanDirect) {
  Rng rng(53);
  const Scenario scenario = make_experiment2_scenario(rng);
  const auto optimizer = scenario.make_optimizer();

  // Fig. 4a: the minimum reachable percentile under routed-only is lower
  // than under direct-only (optimized inter-cloud links).
  auto topic = scenario.topic;
  topic.constraint.max = 1.0;  // unreachable -> optimizer minimizes latency
  core::OptimizerOptions direct_only;
  direct_only.mode_policy = core::ModePolicy::kDirectOnly;
  core::OptimizerOptions routed_only;
  routed_only.mode_policy = core::ModePolicy::kRoutedOnly;

  const auto best_direct = optimizer.optimize(topic, direct_only);
  const auto best_routed = optimizer.optimize(topic, routed_only);
  EXPECT_LT(best_routed.percentile, best_direct.percentile);
}

TEST(Experiment2Shape, MultiPubUsesRoutedUnderTightBoundsThenDirect) {
  Rng rng(54);
  const Scenario scenario = make_experiment2_scenario(rng);
  const auto optimizer = scenario.make_optimizer();

  auto topic = scenario.topic;
  topic.constraint.max = 1.0;
  core::OptimizerOptions direct_only;
  direct_only.mode_policy = core::ModePolicy::kDirectOnly;
  core::OptimizerOptions routed_only;
  routed_only.mode_policy = core::ModePolicy::kRoutedOnly;
  const Millis direct_floor = optimizer.optimize(topic, direct_only).percentile;
  const Millis routed_floor = optimizer.optimize(topic, routed_only).percentile;
  ASSERT_LT(routed_floor, direct_floor);

  // Between the two floors only routed delivery can satisfy the constraint.
  const Millis between = (routed_floor + direct_floor) / 2.0;
  topic.constraint.max = between;
  const auto chosen = optimizer.optimize(topic);
  EXPECT_TRUE(chosen.constraint_met);
  EXPECT_EQ(chosen.config.mode, core::DeliveryMode::kRouted);

  // With a very loose bound the cheapest answer is a single region, which
  // is canonically direct (Fig. 4's tail).
  topic.constraint.max = 1000.0;
  const auto relaxed = optimizer.optimize(topic);
  EXPECT_EQ(relaxed.config.region_count(), 1);
  EXPECT_EQ(relaxed.config.mode, core::DeliveryMode::kDirect);
}

class Experiment3Shape : public ::testing::TestWithParam<int> {};

TEST_P(Experiment3Shape, RemoteCheapRegionUnlocksLargeSavings) {
  // Fig. 5: clients local to an expensive region (Tokyo / Sao Paulo) can be
  // served from a cheap faraway region once the bound is loose enough,
  // producing savings of the paper's order (36 % / 65 %).
  Rng rng(55);
  const RegionId home{GetParam()};
  const Scenario scenario = make_experiment3_scenario(home, rng);
  const auto optimizer = scenario.make_optimizer();

  // Tight bound: must stay local (expensive).
  auto topic = scenario.topic;
  topic.constraint.max = 80.0;
  const auto local = optimizer.optimize(topic);
  ASSERT_TRUE(local.constraint_met);
  EXPECT_TRUE(local.config.regions.contains(home));

  // Loose bound: a cheap region takes over.
  topic.constraint.max = 700.0;
  const auto remote = optimizer.optimize(topic);
  ASSERT_TRUE(remote.constraint_met);
  EXPECT_FALSE(remote.config.regions.contains(home));
  EXPECT_EQ(remote.config.region_count(), 1);

  const double saving = 1.0 - remote.cost / local.cost;
  EXPECT_GT(saving, 0.20);
  EXPECT_LT(saving, 0.80);
}

INSTANTIATE_TEST_SUITE_P(Homes, Experiment3Shape,
                         ::testing::Values(5 /*Tokyo*/, 9 /*Sao Paulo*/));

TEST(Experiment3Shape, SaoPauloSavingsExceedTokyoSavings) {
  // The paper: 65 % savings for Sao Paulo vs 36 % for Tokyo, because
  // sa-east-1 egress is the most expensive.
  Rng rng(56);
  auto run = [&rng](int home) {
    const Scenario scenario = make_experiment3_scenario(RegionId{home}, rng);
    const auto optimizer = scenario.make_optimizer();
    auto topic = scenario.topic;
    topic.constraint.max = 80.0;
    const double local_cost = optimizer.optimize(topic).cost;
    topic.constraint.max = 700.0;
    const double remote_cost = optimizer.optimize(topic).cost;
    return 1.0 - remote_cost / local_cost;
  };
  EXPECT_GT(run(9), run(5));
}

}  // namespace
}  // namespace multipub::sim
