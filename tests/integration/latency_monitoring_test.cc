// Latency monitoring end-to-end: clients probe regions with kPing, measure
// RTT/2 from the kPong echo, report via kLatencyReport; region managers
// drain the reports; the controller's estimator converges to the network's
// true latencies — and reconfiguration reacts when a latency shifts.
#include <gtest/gtest.h>

#include "sim/live_runner.h"
#include "sim/scenario.h"

namespace multipub::sim {
namespace {

class LatencyMonitoringTest : public ::testing::Test {
 protected:
  LatencyMonitoringTest() : rng_(71) {
    WorkloadSpec workload;
    workload.interval_seconds = 10.0;
    workload.ratio = 75.0;
    workload.max_t = kUnreachable;
    scenario_ = make_scenario({{RegionId{0}, 1, 3}, {RegionId{5}, 1, 3}},
                              workload, rng_);
  }

  Rng rng_;
  Scenario scenario_;
};

TEST_F(LatencyMonitoringTest, ProberMeasuresTrueOneWayLatency) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kDirect});

  auto& subscriber = *live.subscribers().front();
  subscriber.probe_latencies(geo::RegionSet::universe(10));
  live.simulator().run();

  EXPECT_EQ(subscriber.prober().pings_sent(), 10u);
  EXPECT_EQ(subscriber.prober().pongs_received(), 10u);
  for (const auto& [region, measured] : subscriber.prober().measurements()) {
    EXPECT_NEAR(measured,
                scenario_.population.latencies.at(subscriber.id(), region),
                1e-9);
  }
}

TEST_F(LatencyMonitoringTest, ControllerEstimatorReceivesReports) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kDirect});

  for (const auto& sub : live.subscribers()) {
    sub->probe_latencies(geo::RegionSet::universe(10));
  }
  live.simulator().run();
  (void)live.run_interval(10.0, 512, 1.0, rng_);
  (void)live.control_round();

  // 6 subscribers x 10 regions probed.
  EXPECT_EQ(live.controller().latency_estimator().observations(), 60u);
}

TEST_F(LatencyMonitoringTest, EstimatorTracksALatencyShift) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kDirect});

  auto& subscriber = *live.subscribers().front();
  const RegionId region{0};
  const Millis original =
      scenario_.population.latencies.at(subscriber.id(), region);

  // The client's connection degrades: the *network truth* changes.
  scenario_.population.latencies.set(subscriber.id(), region,
                                     original + 200.0);

  // Repeated probe/report/ingest rounds pull the estimate towards truth.
  for (int round = 0; round < 20; ++round) {
    subscriber.probe_latencies(geo::RegionSet::single(region));
    live.simulator().run();
    (void)live.run_interval(10.0, 512, 1.0, rng_);
    (void)live.control_round();
  }
  EXPECT_NEAR(live.controller().latency_estimator().estimate(subscriber.id(),
                                                             region),
              original + 200.0, 2.0);
}

TEST_F(LatencyMonitoringTest, ProbesAreFreeOfCharge) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kDirect});
  const Dollars before =
      live.transport().ledger().total_cost(scenario_.catalog);
  for (const auto& sub : live.subscribers()) {
    sub->probe_latencies(geo::RegionSet::universe(10));
  }
  live.simulator().run();
  EXPECT_DOUBLE_EQ(live.transport().ledger().total_cost(scenario_.catalog),
                   before);
}

TEST_F(LatencyMonitoringTest, ReconfigurationFollowsShiftedLatencies) {
  // All subscribers near Tokyo degrade badly towards Tokyo; with a bound in
  // place the controller should stop using Tokyo for them once the
  // estimator catches up... here we check the simpler direction: the chosen
  // config before and after the shift differs.
  WorkloadSpec workload;
  workload.interval_seconds = 10.0;
  workload.ratio = 75.0;
  workload.max_t = 130.0;
  Rng rng(72);
  Scenario scenario =
      make_scenario({{RegionId{0}, 2, 4}, {RegionId{5}, 2, 4}}, workload, rng);

  LiveSystem live(scenario);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  (void)live.run_interval(10.0, 512, 1.0, rng);
  const auto before = live.control_round();
  ASSERT_EQ(before.size(), 1u);
  const auto config_before = before[0].result.config;

  // Tokyo's clients now see Tokyo 150 ms worse (regional incident), and
  // probe every region so the controller learns it.
  for (const auto& sub : live.subscribers()) {
    const RegionId tokyo{5};
    const Millis old = scenario.population.latencies.at(sub->id(), tokyo);
    scenario.population.latencies.set(sub->id(), tokyo, old + 150.0);
  }
  for (int round = 0; round < 15; ++round) {
    for (const auto& sub : live.subscribers()) {
      sub->probe_latencies(geo::RegionSet::universe(10));
    }
    live.simulator().run();
    (void)live.run_interval(10.0, 512, 1.0, rng);
    const auto decisions = live.control_round();
    if (!decisions.empty() && decisions[0].changed) {
      EXPECT_NE(decisions[0].result.config, config_before);
      return;  // reconfigured as expected
    }
  }
  FAIL() << "controller never reacted to the latency shift";
}

}  // namespace
}  // namespace multipub::sim
