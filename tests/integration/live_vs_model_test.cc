// Live middleware vs. analytic model.
//
// The strongest correctness evidence in the repository: the event-driven
// middleware (publishers -> brokers -> subscribers over the latency-billing
// transport) must measure exactly the delivery times and exactly the dollar
// cost that Equations 1-4 predict, for both delivery modes and a variety of
// configurations.
#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/delivery_model.h"
#include "sim/live_runner.h"
#include "sim/scenario.h"

namespace multipub::sim {
namespace {

struct LiveCase {
  std::uint64_t mask;
  core::DeliveryMode mode;
};

class LiveVsModel : public ::testing::TestWithParam<LiveCase> {
 protected:
  LiveVsModel() : rng_(31) {
    WorkloadSpec workload;
    workload.interval_seconds = 20.0;
    workload.ratio = 75.0;
    scenario_ = make_scenario(
        {{RegionId{0}, 2, 3}, {RegionId{5}, 2, 3}, {RegionId{9}, 1, 2}},
        workload, rng_);
  }

  Rng rng_;
  Scenario scenario_;
};

TEST_P(LiveVsModel, MeasurementsMatchEquations) {
  const core::TopicConfig config{geo::RegionSet(GetParam().mask),
                                 GetParam().mode};

  LiveSystem live(scenario_);
  live.deploy(config);
  const auto run = live.run_interval(20.0, 1024, 1.0, rng_);

  // Every publication reached every subscriber.
  EXPECT_EQ(run.deliveries,
            run.publications * scenario_.topic.subscribers.size());

  const core::TopicState observed = live.observed_topic_state();
  const core::DeliveryModel delivery(scenario_.backbone,
                                     scenario_.population.latencies);
  const core::CostModel cost(scenario_.catalog,
                             scenario_.population.latencies);

  // Delivery-time percentile: measured == Eq. 1/2 prediction.
  const Millis predicted =
      delivery.delivery_percentile(observed, config, 75.0);
  EXPECT_NEAR(run.percentile, predicted, 1e-9) << config.to_string();

  // Billed dollars: ledger == Eq. 3/4.
  const Dollars predicted_cost = cost.cost(observed, config);
  EXPECT_NEAR(run.interval_cost, predicted_cost, 1e-12) << config.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Configs, LiveVsModel,
    ::testing::Values(
        LiveCase{0b0000000001, core::DeliveryMode::kDirect},   // {R1}
        LiveCase{0b1000000000, core::DeliveryMode::kDirect},   // {R10}
        LiveCase{0b0000100001, core::DeliveryMode::kDirect},   // {R1,R6}
        LiveCase{0b0000100001, core::DeliveryMode::kRouted},
        LiveCase{0b1000100001, core::DeliveryMode::kDirect},   // {R1,R6,R10}
        LiveCase{0b1000100001, core::DeliveryMode::kRouted},
        LiveCase{0b1111111111, core::DeliveryMode::kDirect},   // all
        LiveCase{0b1111111111, core::DeliveryMode::kRouted}));

TEST(LiveVsModelExtras, EveryIndividualDeliveryMatchesPairModel) {
  Rng rng(32);
  WorkloadSpec workload;
  workload.interval_seconds = 5.0;
  const auto scenario =
      make_scenario({{RegionId{0}, 1, 2}, {RegionId{4}, 1, 2}}, workload, rng);
  const core::TopicConfig config{geo::RegionSet(0b0000010001),
                                 core::DeliveryMode::kRouted};

  LiveSystem live(scenario);
  live.deploy(config);
  (void)live.run_interval(5.0, 256, 1.0, rng);

  const core::DeliveryModel delivery(scenario.backbone,
                                     scenario.population.latencies);
  for (const auto& subscriber : live.subscribers()) {
    for (const auto& record : subscriber->deliveries()) {
      const Millis expected = delivery.pair_delivery_time(
          record.publisher, subscriber->id(), config);
      EXPECT_NEAR(record.delivery_time, expected, 1e-9);
    }
  }
}

TEST(LiveVsModelExtras, JitteredNetworkStaysNearTheModel) {
  // With per-message jitter enabled the analytic equality becomes an
  // approximation: measured latencies are >= the model (jitter only adds)
  // and the percentile stays within the configured spread.
  Rng rng(34);
  WorkloadSpec workload;
  workload.interval_seconds = 30.0;
  workload.ratio = 75.0;
  const auto scenario =
      make_scenario({{RegionId{0}, 2, 4}, {RegionId{4}, 2, 4}}, workload, rng);
  const core::TopicConfig config{geo::RegionSet(0b0000010001),
                                 core::DeliveryMode::kRouted};

  LiveSystem live(scenario);
  live.transport().enable_jitter({.relative = 0.10, .absolute_ms = 2.0}, 99);
  live.deploy(config);
  const auto run = live.run_interval(30.0, 1024, 1.0, rng);

  const core::DeliveryModel delivery(scenario.backbone,
                                     scenario.population.latencies);
  const Millis predicted = delivery.delivery_percentile(
      live.observed_topic_state(), config, 75.0);

  EXPECT_GE(run.percentile, predicted);            // jitter only adds
  EXPECT_LE(run.percentile, predicted * 1.10 + 3 * 2.0 + 10.0);
  // Cost is latency-independent: still exact.
  const core::CostModel cost(scenario.catalog, scenario.population.latencies);
  EXPECT_NEAR(run.interval_cost,
              cost.cost(live.observed_topic_state(), config), 1e-12);
}

TEST(LiveVsModelExtras, NoPublicationIsDuplicatedOrLost) {
  Rng rng(33);
  WorkloadSpec workload;
  workload.interval_seconds = 10.0;
  const auto scenario =
      make_scenario({{RegionId{2}, 3, 4}, {RegionId{7}, 2, 3}}, workload, rng);
  const core::TopicConfig config{geo::RegionSet(0b0010000100),
                                 core::DeliveryMode::kRouted};

  LiveSystem live(scenario);
  live.deploy(config);
  (void)live.run_interval(10.0, 128, 2.0, rng);

  // Each subscriber got each publisher's sequence exactly once.
  for (const auto& subscriber : live.subscribers()) {
    std::map<std::pair<ClientId, std::uint64_t>, int> seen;
    for (const auto& record : subscriber->deliveries()) {
      ++seen[{record.publisher, record.seq}];
    }
    for (const auto& [key, count] : seen) {
      EXPECT_EQ(count, 1) << "publisher " << key.first.value() << " seq "
                          << key.second;
    }
    EXPECT_EQ(subscriber->deliveries().size(), 5u * 20u);  // 5 pubs x 20 msgs
  }
}

}  // namespace
}  // namespace multipub::sim
