// Client churn: subscribers joining and leaving a live system.
//
// A new subscriber appears after deployment, probes the regions (so the
// controller learns its latencies), attaches to the deployed configuration,
// and is folded into the next optimization round; a leaving subscriber
// disappears from the reports and stops influencing decisions.
#include <gtest/gtest.h>

#include "sim/live_runner.h"
#include "sim/scenario.h"

namespace multipub::sim {
namespace {

class ChurnTest : public ::testing::Test {
 protected:
  ChurnTest() : rng_(121) {
    WorkloadSpec workload;
    workload.interval_seconds = 10.0;
    workload.ratio = 95.0;
    // 120 ms: locals are easily served from one US region, but a Tokyo
    // client cannot be reached from the US within the bound on the client
    // path — only via an Asia region (and the fast backbone).
    workload.max_t = 120.0;
    scenario_ = make_scenario({{RegionId{0}, 2, 4}}, workload, rng_);
  }

  Rng rng_;
  Scenario scenario_;
};

TEST_F(ChurnTest, JoiningSubscriberIsDiscoveredAndServed) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  (void)live.run_interval(10.0, 1024, 1.0, rng_);
  const auto first = live.control_round();
  ASSERT_EQ(first.size(), 1u);
  // All clients are near Virginia: one cheap US region suffices.
  ASSERT_EQ(first[0].result.config.region_count(), 1);

  // A Tokyo-homed subscriber joins: synthesize its row into the live
  // latency truth and attach it to the deployed configuration.
  auto tokyo_client = geo::synthesize_local_population(
      scenario_.catalog, scenario_.backbone, RegionId{5}, 1, {}, rng_);
  const ClientId new_id = scenario_.population.latencies.add_client(
      tokyo_client.latencies.row(ClientId{0}));

  client::Subscriber joiner(new_id, live.simulator(), live.transport(),
                            scenario_.population.latencies);
  joiner.subscribe(scenario_.topic.topic, first[0].result.config);
  joiner.probe_latencies(geo::RegionSet::universe(10));
  live.simulator().run();

  // Traffic reaches the joiner immediately (via the deployed config)...
  (void)live.run_interval(10.0, 1024, 1.0, rng_);
  EXPECT_EQ(joiner.deliveries().size(), 2u * 10u);

  // ...and the next control round knows the joiner's latencies and adds an
  // Asia-side region to honour the 140 ms bound for it.
  const auto second = live.control_round();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_TRUE(second[0].changed);
  EXPECT_GE(second[0].result.config.region_count(), 2);

  // After reconfiguration, the joiner is attached to its (much closer) new
  // region.
  const RegionId attached = joiner.attached_region(scenario_.topic.topic);
  EXPECT_LT(scenario_.population.latencies.at(new_id, attached), 60.0);
}

TEST_F(ChurnTest, LeavingSubscriberStopsInfluencingDecisions) {
  // Start with a US + Tokyo split that forces two regions.
  WorkloadSpec workload;
  workload.interval_seconds = 10.0;
  workload.ratio = 95.0;
  workload.max_t = 140.0;
  Rng rng(122);
  Scenario scenario =
      make_scenario({{RegionId{0}, 2, 4}, {RegionId{5}, 0, 2}}, workload, rng);

  LiveSystem live(scenario);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  (void)live.run_interval(10.0, 1024, 1.0, rng);
  const auto with_tokyo = live.control_round();
  ASSERT_EQ(with_tokyo.size(), 1u);
  ASSERT_GE(with_tokyo[0].result.config.region_count(), 2);

  // The two Tokyo subscribers leave.
  for (const auto& sub : live.subscribers()) {
    if (scenario.population.home_region[sub->id().index()] == RegionId{5}) {
      sub->unsubscribe(scenario.topic.topic);
    }
  }
  live.simulator().run();

  (void)live.run_interval(10.0, 1024, 1.0, rng);
  const auto after = live.control_round();
  ASSERT_EQ(after.size(), 1u);
  // Only US clients remain: one region suffices, and the constraint holds.
  EXPECT_EQ(after[0].result.config.region_count(), 1);
  EXPECT_TRUE(after[0].result.constraint_met);
}

TEST_F(ChurnTest, EnsureClientGrowsWithUnreachableRows) {
  geo::ClientLatencyMap map(3);
  map.add_client(std::vector<Millis>{1, 2, 3});
  map.ensure_client(ClientId{4});
  EXPECT_EQ(map.n_clients(), 5u);
  EXPECT_EQ(map.at(ClientId{3}, RegionId{0}), kUnreachable);
  // Existing rows untouched.
  EXPECT_DOUBLE_EQ(map.at(ClientId{0}, RegionId{2}), 3.0);
}

}  // namespace
}  // namespace multipub::sim
