// Live differential run: two identical systems driven by identical traffic,
// one on the incremental control-plane pipeline (delta reports + dirty-topic
// reconfiguration), one on the full-snapshot reference path. Across a
// multi-round scenario with traffic shifts, a subscriber leaving and
// rejoining, and a region outage with recovery, the deployed assignment
// matrices must stay bit-identical every round.
//
// Parameterized over the data-plane scheduling path (fast-path vs seed
// path, applied to BOTH systems) so each control-plane pipeline is proven
// under each scheduling path.
#include <gtest/gtest.h>

#include "sim/live_runner.h"
#include "sim/scenario.h"

namespace multipub::sim {
namespace {

class IncrementalLive : public ::testing::TestWithParam<bool> {};

TEST_P(IncrementalLive, MatrixMatchesFullPipelineAcrossTenRounds) {
  const bool fast_path = GetParam();
  Rng rng(171);
  WorkloadSpec workload;
  workload.interval_seconds = 10.0;
  workload.ratio = 95.0;
  workload.max_t = 150.0;
  const Scenario scenario =
      make_scenario({{RegionId{0}, 2, 4}, {RegionId{5}, 2, 4}}, workload, rng);

  LiveSystem incremental(scenario);
  LiveSystem full(scenario);
  full.set_incremental(false);
  incremental.set_data_plane_fast_path(fast_path);
  full.set_data_plane_fast_path(fast_path);
  ASSERT_TRUE(incremental.incremental());
  ASSERT_FALSE(full.incremental());

  const core::TopicConfig bootstrap{geo::RegionSet::universe(10),
                                    core::DeliveryMode::kRouted};
  incremental.deploy(bootstrap);
  full.deploy(bootstrap);

  // Identical traffic: independent generators with the same seed.
  Rng rng_inc(777);
  Rng rng_full(777);

  const TopicId topic = scenario.topic.topic;
  RegionId failed{-1};
  for (int round = 0; round < 12; ++round) {
    // Traffic shifts: the publication rate steps up mid-run.
    const double rate_hz = round >= 6 ? 2.0 : 1.0;
    (void)incremental.run_interval(10.0, 1024, rate_hz, rng_inc);
    (void)full.run_interval(10.0, 1024, rate_hz, rng_full);

    if (round == 3) {
      // The last subscriber leaves both systems.
      incremental.subscribers().back()->unsubscribe(topic);
      full.subscribers().back()->unsubscribe(topic);
      incremental.simulator().run();
      full.simulator().run();
    }
    if (round == 9) {
      // ...and rejoins, attaching to whatever is deployed right now.
      const auto* config = incremental.controller().deployed_config(topic);
      ASSERT_NE(config, nullptr);
      incremental.subscribers().back()->subscribe(topic, *config);
      full.subscribers().back()->subscribe(topic, *config);
      incremental.simulator().run();
      full.simulator().run();
    }
    if (round == 4) {
      // Outage of a currently serving region, on both systems.
      const auto* config = incremental.controller().deployed_config(topic);
      ASSERT_NE(config, nullptr);
      failed = config->regions.first();
      for (LiveSystem* sys : {&incremental, &full}) {
        sys->transport().set_region_down(failed, true);
        sys->controller().set_region_available(failed, false);
      }
    }
    if (round == 7) {
      for (LiveSystem* sys : {&incremental, &full}) {
        sys->transport().set_region_down(failed, false);
        sys->controller().set_region_available(failed, true);
      }
    }

    const auto inc_decisions = incremental.control_round();
    const auto full_decisions = full.control_round();

    ASSERT_EQ(incremental.controller().render_assignment_matrix(),
              full.controller().render_assignment_matrix())
        << "round " << round;
    ASSERT_EQ(inc_decisions.size(), full_decisions.size()) << "round " << round;
    for (std::size_t d = 0; d < inc_decisions.size(); ++d) {
      EXPECT_EQ(inc_decisions[d].result.config, full_decisions[d].result.config)
          << "round " << round;
    }

    // The stats tell the two pipelines apart even when the outcome agrees.
    EXPECT_FALSE(incremental.controller().last_round_stats().full_scan);
    EXPECT_TRUE(full.controller().last_round_stats().full_scan);
    const auto& stats = incremental.controller().last_round_stats();
    EXPECT_EQ(stats.evaluated + stats.skipped_clean + stats.skipped_empty,
              stats.tracked)
        << "round " << round;
  }

  // During the outage the failed region must have disappeared from both.
  ASSERT_NE(failed.value(), -1);
}

INSTANTIATE_TEST_SUITE_P(DataPlane, IncrementalLive, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "FastPath" : "SeedPath";
                         });

}  // namespace
}  // namespace multipub::sim
