// Flag-validation contracts of the CLI binaries: a data plane with more
// shards than regions would run workers that own nothing yet pay every
// barrier round, so all three binaries must reject it up front with a clear
// message — and the new tuning flags must be part of each binary's allowed
// vocabulary. Exercised against the real executables (like the node
// convergence test), because the checks live in their main()s.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace multipub {
namespace {

/// Directory of the binaries under test (test binaries live in
/// build/tests, the CLIs in build/tools, the benches in build/bench).
std::string build_dir() {
  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (n <= 0) return "..";
  self[n] = '\0';
  std::string dir(self);
  dir.resize(dir.find_last_of('/'));
  return dir + "/..";
}

struct RunOutput {
  int exit_code = -1;
  std::string text;  // stdout + stderr interleaved
};

RunOutput run_cli(const std::string& command) {
  RunOutput out;
  FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return out;
  char buffer[512];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    out.text += buffer;
  }
  const int status = ::pclose(pipe);
  out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return out;
}

TEST(CliValidation, SimRejectsMoreShardsThanRegions) {
  const auto out = run_cli(build_dir() +
                           "/tools/multipub-sim --pubs-per-region 1 "
                           "--subs-per-region 1 --live --shards 99");
  EXPECT_EQ(out.exit_code, 2) << out.text;
  EXPECT_NE(out.text.find("shards must be <= regions"), std::string::npos)
      << out.text;
}

TEST(CliValidation, ChaosRejectsMoreShardsThanRegions) {
  const auto out =
      run_cli(build_dir() + "/tools/multipub-chaos --seed 7 --shards 99");
  EXPECT_EQ(out.exit_code, 2) << out.text;
  EXPECT_NE(out.text.find("shards must be <= regions"), std::string::npos)
      << out.text;
}

TEST(CliValidation, BenchRejectsMoreShardsThanRegions) {
  const auto out = run_cli(build_dir() +
                           "/bench/bench_dataplane --pubs 100 "
                           "--mode shards=99");
  EXPECT_EQ(out.exit_code, 2) << out.text;
  EXPECT_NE(out.text.find("K <= regions"), std::string::npos) << out.text;
}

TEST(CliValidation, ReliableFlagIsAcceptedByAllThreeBinaries) {
  // `--reliable on` must pass flag validation everywhere the reliability
  // layer can run. The node binary is probed up to the scenario-file open
  // (exit 1, not the flag-error exit 2): the flag parsed, the file did not.
  const auto sim = run_cli(build_dir() +
                           "/tools/multipub-sim --pubs-per-region 1 "
                           "--subs-per-region 1 --live --reliable on");
  EXPECT_EQ(sim.exit_code, 0) << sim.text;

  const auto chaos = run_cli(build_dir() +
                             "/tools/multipub-chaos --seed 7 --reliable on "
                             "--print-schedule");
  EXPECT_EQ(chaos.exit_code, 0) << chaos.text;

  const auto node = run_cli(build_dir() +
                            "/tools/multipub-node --role broker "
                            "--scenario /nonexistent --reliable on");
  EXPECT_EQ(node.exit_code, 1) << node.text;
  EXPECT_NE(node.text.find("cannot open scenario file"), std::string::npos)
      << node.text;
}

TEST(CliValidation, ReliableFlagRejectsAnythingButOnAndOff) {
  const std::string expected = "--reliable must be 'on' or 'off'";

  const auto sim = run_cli(build_dir() +
                           "/tools/multipub-sim --pubs-per-region 1 "
                           "--subs-per-region 1 --live --reliable maybe");
  EXPECT_EQ(sim.exit_code, 2) << sim.text;
  EXPECT_NE(sim.text.find(expected), std::string::npos) << sim.text;

  const auto chaos = run_cli(build_dir() +
                             "/tools/multipub-chaos --seed 7 "
                             "--reliable maybe");
  EXPECT_EQ(chaos.exit_code, 2) << chaos.text;
  EXPECT_NE(chaos.text.find(expected), std::string::npos) << chaos.text;

  const auto node = run_cli(build_dir() +
                            "/tools/multipub-node --role broker "
                            "--scenario /nonexistent --reliable maybe");
  EXPECT_EQ(node.exit_code, 2) << node.text;
  EXPECT_NE(node.text.find(expected), std::string::npos) << node.text;
}

TEST(CliValidation, TransportBatchingFlagIsAcceptedByTheNodeBinary) {
  // The flag must pass validation for both roles; the node is probed up to
  // the scenario-file open (exit 1, not the flag-error exit 2).
  const auto broker = run_cli(build_dir() +
                              "/tools/multipub-node --role broker "
                              "--scenario /nonexistent "
                              "--transport-batching off");
  EXPECT_EQ(broker.exit_code, 1) << broker.text;
  EXPECT_NE(broker.text.find("cannot open scenario file"), std::string::npos)
      << broker.text;

  const auto controller = run_cli(build_dir() +
                                  "/tools/multipub-node --role controller "
                                  "--scenario /nonexistent "
                                  "--transport-batching on");
  EXPECT_EQ(controller.exit_code, 1) << controller.text;
  EXPECT_NE(controller.text.find("cannot open scenario file"),
            std::string::npos)
      << controller.text;
}

TEST(CliValidation, TransportBatchingFlagRejectsAnythingButOnAndOff) {
  const auto node = run_cli(build_dir() +
                            "/tools/multipub-node --role broker "
                            "--scenario /nonexistent "
                            "--transport-batching sometimes");
  EXPECT_EQ(node.exit_code, 2) << node.text;
  EXPECT_NE(
      node.text.find("--transport-batching must be 'on' or 'off'"),
      std::string::npos)
      << node.text;
}

TEST(CliValidation, BreakHooksRequireReliableOn) {
  // The negative hooks sabotage the reliability layer; without the layer
  // armed they would silently test nothing, so the chaos CLI refuses them.
  const auto out =
      run_cli(build_dir() + "/tools/multipub-chaos --seed 7 --break-replay");
  EXPECT_EQ(out.exit_code, 2) << out.text;
  EXPECT_NE(out.text.find("need --reliable on"), std::string::npos)
      << out.text;
}

TEST(CliValidation, TuningFlagsAreAcceptedVocabulary) {
  // --shard-placement / --window-policy must parse (bad values rejected,
  // good values not reported as unknown flags). --print-schedule keeps the
  // chaos run from actually executing a campaign.
  const auto bad = run_cli(build_dir() +
                           "/tools/multipub-chaos --seed 7 "
                           "--shard-placement diagonal");
  EXPECT_EQ(bad.exit_code, 2) << bad.text;
  EXPECT_NE(bad.text.find("--shard-placement"), std::string::npos);

  const auto good = run_cli(build_dir() +
                            "/tools/multipub-chaos --seed 7 --shards 4 "
                            "--shard-placement round-robin "
                            "--window-policy fixed --print-schedule");
  EXPECT_EQ(good.exit_code, 0) << good.text;

  const auto bad_policy = run_cli(build_dir() +
                                  "/tools/multipub-sim --pubs-per-region 1 "
                                  "--subs-per-region 1 --live "
                                  "--window-policy sometimes");
  EXPECT_EQ(bad_policy.exit_code, 2) << bad_policy.text;
  EXPECT_NE(bad_policy.text.find("--window-policy"), std::string::npos);
}

}  // namespace
}  // namespace multipub
