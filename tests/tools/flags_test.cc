#include "flags.h"

#include <gtest/gtest.h>

namespace multipub::tools {
namespace {

/// Builds argv from string literals (argv[0] is the program name).
class Argv {
 public:
  explicit Argv(std::initializer_list<const char*> args) {
    strings_.emplace_back("prog");
    for (const char* a : args) strings_.emplace_back(a);
    for (auto& s : strings_) pointers_.push_back(s.data());
  }
  [[nodiscard]] int argc() const { return static_cast<int>(pointers_.size()); }
  [[nodiscard]] char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> pointers_;
};

TEST(Flags, EqualsForm) {
  Argv a({"--ratio=95", "--mode=routed"});
  Flags flags(a.argc(), a.argv());
  EXPECT_DOUBLE_EQ(flags.get_double("ratio", 0), 95.0);
  EXPECT_EQ(flags.get("mode", ""), "routed");
  EXPECT_TRUE(flags.errors().empty());
}

TEST(Flags, SpaceForm) {
  Argv a({"--ratio", "75", "--size", "2048"});
  Flags flags(a.argc(), a.argv());
  EXPECT_DOUBLE_EQ(flags.get_double("ratio", 0), 75.0);
  EXPECT_EQ(flags.get_int("size", 0), 2048);
}

TEST(Flags, BooleanForms) {
  Argv a({"--live", "--heuristic=false", "--exact-list", "--verbose", "0"});
  Flags flags(a.argc(), a.argv());
  EXPECT_TRUE(flags.get_bool("live", false));
  EXPECT_FALSE(flags.get_bool("heuristic", true));
  EXPECT_TRUE(flags.get_bool("exact-list", false));
  EXPECT_FALSE(flags.get_bool("verbose", true));
  EXPECT_TRUE(flags.get_bool("absent", true));
}

TEST(Flags, DefaultsWhenAbsent) {
  Argv a({});
  Flags flags(a.argc(), a.argv());
  EXPECT_FALSE(flags.has("anything"));
  EXPECT_DOUBLE_EQ(flags.get_double("x", 1.5), 1.5);
  EXPECT_EQ(flags.get_int("y", 7), 7);
  EXPECT_EQ(flags.get("z", "fallback"), "fallback");
}

TEST(Flags, RangeParsing) {
  Argv a({"--sweep=100:200:4"});
  Flags flags(a.argc(), a.argv());
  const auto range = flags.get_range("sweep");
  ASSERT_TRUE(range.has_value());
  EXPECT_DOUBLE_EQ((*range)[0], 100.0);
  EXPECT_DOUBLE_EQ((*range)[1], 200.0);
  EXPECT_DOUBLE_EQ((*range)[2], 4.0);
}

TEST(Flags, MissingRangeIsNullopt) {
  Argv a({});
  Flags flags(a.argc(), a.argv());
  EXPECT_FALSE(flags.get_range("sweep").has_value());
}

TEST(Flags, MalformedNumberIsReported) {
  Argv a({"--ratio=abc"});
  Flags flags(a.argc(), a.argv());
  EXPECT_DOUBLE_EQ(flags.get_double("ratio", 50.0), 50.0);
  EXPECT_FALSE(flags.errors().empty());
}

TEST(Flags, PositionalArgumentIsReported) {
  Argv a({"oops"});
  Flags flags(a.argc(), a.argv());
  ASSERT_EQ(flags.errors().size(), 1u);
  EXPECT_NE(flags.errors()[0].find("oops"), std::string::npos);
}

TEST(Flags, LastValueWinsOnRepeat) {
  Argv a({"--seed=1", "--seed=2"});
  Flags flags(a.argc(), a.argv());
  EXPECT_EQ(flags.get_int("seed", 0), 2);
}

TEST(Flags, NegativeNumbersAsValues) {
  // A negative value is not mistaken for a flag (doesn't start with --).
  Argv a({"--offset", "-5"});
  Flags flags(a.argc(), a.argv());
  EXPECT_EQ(flags.get_int("offset", 0), -5);
}

TEST(Flags, AllowOnlyAcceptsTheDeclaredVocabulary) {
  Argv a({"--shards=4", "--fast-path", "on", "--live"});
  Flags flags(a.argc(), a.argv());
  flags.allow_only({"shards", "threads", "fast-path", "live"});
  EXPECT_TRUE(flags.errors().empty());
}

TEST(Flags, AllowOnlyRejectsUnknownFlags) {
  // The historical bug: --shard (typo for --shards) parsed fine and the
  // tool silently ran single-threaded. It must be an error now.
  Argv a({"--shard=4", "--live"});
  Flags flags(a.argc(), a.argv());
  flags.allow_only({"shards", "live"});
  ASSERT_EQ(flags.errors().size(), 1u);
  EXPECT_NE(flags.errors()[0].find("--shard"), std::string::npos);
}

TEST(Flags, AllowOnlyReportsEveryUnknownFlagInNameOrder) {
  Argv a({"--zeta=1", "--alpha=2", "--known=3"});
  Flags flags(a.argc(), a.argv());
  flags.allow_only({"known"});
  ASSERT_EQ(flags.errors().size(), 2u);
  // Deterministic order (sorted by flag name), independent of argv order.
  EXPECT_NE(flags.errors()[0].find("--alpha"), std::string::npos);
  EXPECT_NE(flags.errors()[1].find("--zeta"), std::string::npos);
}

}  // namespace
}  // namespace multipub::tools
