// Cohort plane unit tests (DESIGN.md §12): interning (topic sets, latency
// rows), cohort membership under churn, and fan-out retirement. The live
// differential suite proves bit-identity end-to-end; these pin the member
// mechanics in isolation — no brokers behind the region addresses, so
// control messages land as dropped_unregistered and the membership math
// stays local and inspectable.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "client/client_registry.h"
#include "client/cohort_pool.h"
#include "client/topic_set_pool.h"
#include "common/arena.h"
#include "net/simulator.h"
#include "sim/live_runner.h"
#include "sim/scenario.h"
#include "testutil.h"

namespace multipub::client {
namespace {

using testutil::TinyWorld;

TEST(TopicSetPoolTest, InternsCanonically) {
  Arena arena;
  TopicSetPool pool(arena);
  EXPECT_EQ(pool.intern({}), TopicSetPool::kEmpty);

  const std::array<TopicId, 3> messy{TopicId{2}, TopicId{1}, TopicId{1}};
  const std::array<TopicId, 2> sorted{TopicId{1}, TopicId{2}};
  const std::int32_t a = pool.intern(messy);
  EXPECT_EQ(pool.intern(sorted), a);  // order and duplicates ignored
  ASSERT_EQ(pool.view(a).size(), 2u);
  EXPECT_EQ(pool.view(a)[0], TopicId{1});
  EXPECT_EQ(pool.view(a)[1], TopicId{2});
  EXPECT_TRUE(pool.contains(a, TopicId{2}));
  EXPECT_FALSE(pool.contains(a, TopicId{3}));

  EXPECT_EQ(pool.with(a, TopicId{1}), a);  // already a member
  const std::int32_t b = pool.with(a, TopicId{0});
  EXPECT_NE(b, a);
  EXPECT_EQ(pool.view(b)[0], TopicId{0});
  EXPECT_EQ(pool.without(b, TopicId{0}), a);  // hash-consed round trip
  const std::int32_t only1 = pool.without(a, TopicId{2});
  EXPECT_EQ(pool.without(only1, TopicId{1}), TopicSetPool::kEmpty);
}

TEST(ClientRegistryTest, ExactRowsInternAndClosestRegionMatchesLatencyMap) {
  Arena arena;
  ClientRegistry registry(8, 3, 0.0, arena);
  const std::array<Millis, 3> near_a{10, 100, 80};
  const std::array<Millis, 3> near_b{105, 15, 150};
  const ClientId c0 = registry.add(RegionId{0}, near_a, 1);
  const ClientId c1 = registry.add(RegionId{0}, near_a, 1);
  const ClientId c2 = registry.add(RegionId{1}, near_b, 1);
  EXPECT_EQ(registry.row_of(c0), registry.row_of(c1));  // shared storage
  EXPECT_NE(registry.row_of(c0), registry.row_of(c2));
  EXPECT_EQ(registry.row_count(), 2u);
  EXPECT_EQ(registry.home(c2), RegionId{1});

  // Same scan as geo::ClientLatencyMap::closest_region: smallest latency
  // among the candidates, ties towards the lower region id.
  const std::int32_t row = registry.row_of(c0);
  EXPECT_EQ(registry.closest_region(row, geo::RegionSet(0b111)), RegionId{0});
  EXPECT_EQ(registry.closest_region(row, geo::RegionSet(0b110)), RegionId{2});
  const std::array<Millis, 3> tie{50, 50, 50};
  const std::int32_t tie_row = registry.intern_row(tie);
  EXPECT_EQ(registry.closest_region(tie_row, geo::RegionSet(0b110)),
            RegionId{1});
}

TEST(ClientRegistryTest, QuantizationBucketSharesRepresentativeRows) {
  Arena arena;
  ClientRegistry registry(8, 3, 5.0, arena);
  const std::array<Millis, 3> first{10, 100, 80};
  const std::array<Millis, 3> nearby{12, 102, 81};   // same 5 ms buckets
  const std::array<Millis, 3> distant{20, 100, 80};  // bucket 4 vs 2
  const ClientId c0 = registry.add(RegionId{0}, first, 1);
  const ClientId c1 = registry.add(RegionId{0}, nearby, 1);
  const ClientId c2 = registry.add(RegionId{0}, distant, 1);
  EXPECT_EQ(registry.row_of(c0), registry.row_of(c1));
  EXPECT_NE(registry.row_of(c0), registry.row_of(c2));
  // The first-seen row is the representative all bucket-mates resolve to.
  EXPECT_EQ(registry.row(registry.row_of(c1))[0], 10.0);
}

class CohortPoolTest : public ::testing::Test {
 protected:
  CohortPoolTest() { transport_.set_cohort_directory(&pool_); }

  static core::TopicConfig config(std::uint64_t mask) {
    return {geo::RegionSet(mask), core::DeliveryMode::kDirect};
  }

  /// Registers a client and enrolls it in its cohort.
  ClientId join(RegionId home, std::span<const Millis> row,
                std::int32_t topic_set) {
    const ClientId client = registry_.add(home, row, topic_set);
    pool_.enroll(client);
    return client;
  }

  static constexpr TopicId kTopic{0};
  static constexpr std::array<Millis, 3> kNearA{10, 100, 80};
  static constexpr std::array<Millis, 3> kNearA2{20, 110, 90};
  static constexpr std::array<Millis, 3> kNearB{105, 15, 150};

  TinyWorld world_;
  net::Simulator sim_;
  net::SimTransport transport_{sim_, world_.catalog, world_.backbone,
                               world_.clients};
  Arena arena_;
  TopicSetPool sets_{arena_};
  ClientRegistry registry_{16, 3, 0.0, arena_};
  CohortPool pool_{registry_, sets_, sim_, transport_};
  std::int32_t t0_ = sets_.intern(std::array<TopicId, 1>{kTopic});
};

TEST_F(CohortPoolTest, EnrollGroupsByHomeRowAndTopicSet) {
  const ClientId c0 = registry_.add(RegionId{0}, kNearA, t0_);
  const ClientId c1 = registry_.add(RegionId{0}, kNearA, t0_);
  const ClientId c2 = registry_.add(RegionId{0}, kNearA2, t0_);  // other row
  const ClientId c3 = registry_.add(RegionId{1}, kNearA, t0_);   // other home
  const ClientId idle =
      registry_.add(RegionId{0}, kNearA, TopicSetPool::kEmpty);

  const std::int32_t s0 = pool_.enroll(c0);
  EXPECT_EQ(pool_.enroll(c1), s0);
  EXPECT_NE(pool_.enroll(c2), s0);
  EXPECT_NE(pool_.enroll(c3), s0);
  EXPECT_EQ(pool_.enroll(idle), -1);  // nothing subscribed: no cohort

  EXPECT_EQ(pool_.cohort_count(), 3u);
  EXPECT_EQ(pool_.flock_count(), 3u);  // one topic per cohort
  EXPECT_EQ(pool_.cohort_weight(s0), 2u);
  EXPECT_EQ(pool_.cohort_home(s0), RegionId{0});
  EXPECT_EQ(pool_.cohort_home(pool_.enroll(registry_.add(RegionId{1}, kNearA,
                                                         t0_))),
            RegionId{1});
  EXPECT_EQ(registry_.cohort_of(c0), s0);
  EXPECT_EQ(registry_.cohort_of(idle), -1);
}

TEST_F(CohortPoolTest, DeployAttachesEveryFlockToItsClosestServingRegion) {
  const ClientId c0 = join(RegionId{0}, kNearA, t0_);
  const ClientId c1 = join(RegionId{0}, kNearA, t0_);
  ASSERT_EQ(pool_.cohort_count(), 1u);

  // Serving {B, C}: the row's closest of the two is C (80 < 100).
  pool_.deploy(kTopic, config(0b110));
  sim_.run();
  EXPECT_EQ(pool_.attached_region(c0, kTopic), RegionId{2});
  EXPECT_EQ(pool_.attached_region(c1, kTopic), RegionId{2});
  const std::int32_t fid = pool_.flock_of(c0, kTopic);
  ASSERT_GE(fid, 0);
  EXPECT_EQ(pool_.flock_attachment(fid), RegionId{2});
  EXPECT_EQ(pool_.flock_weight(fid), 2u);
  // One weighted kSubscribe stands for both members' handshakes — and the
  // counter books record it at weight 2, like two per-client sends.
  EXPECT_EQ(transport_.sent_count(), 2u);
}

TEST_F(CohortPoolTest, ResubscribeIsIdempotent) {
  const ClientId c0 = join(RegionId{0}, kNearA, t0_);
  join(RegionId{0}, kNearA, t0_);
  pool_.deploy(kTopic, config(0b111));
  sim_.run();
  const std::uint64_t sent = transport_.sent_count();

  pool_.subscribe_client(c0, kTopic, config(0b111));
  sim_.run();
  EXPECT_EQ(pool_.cohort_count(), 1u);
  EXPECT_EQ(pool_.cohort_weight(registry_.cohort_of(c0)), 2u);
  // Mirrors the per-client re-subscribe: one weight-1 refresh on the wire.
  EXPECT_EQ(transport_.sent_count(), sent + 1);
}

TEST_F(CohortPoolTest, UnsubscribeAndRejoinMoveWeightThroughTheSameCohort) {
  join(RegionId{0}, kNearA, t0_);
  const ClientId c1 = join(RegionId{0}, kNearA, t0_);
  join(RegionId{0}, kNearA, t0_);
  pool_.deploy(kTopic, config(0b001));
  sim_.run();
  const std::int32_t slot = registry_.cohort_of(c1);
  ASSERT_EQ(pool_.cohort_weight(slot), 3u);

  pool_.unsubscribe_client(c1, kTopic);
  sim_.run();
  EXPECT_EQ(pool_.cohort_weight(slot), 2u);
  EXPECT_EQ(pool_.flock_of(c1, kTopic), -1);
  EXPECT_EQ(registry_.cohort_of(c1), -1);
  EXPECT_EQ(registry_.topic_set(c1), TopicSetPool::kEmpty);
  // Idempotent like Subscriber::unsubscribe of an unknown topic.
  pool_.unsubscribe_client(c1, kTopic);
  EXPECT_EQ(pool_.cohort_weight(slot), 2u);

  pool_.subscribe_client(c1, kTopic, config(0b001));
  sim_.run();
  EXPECT_EQ(pool_.cohort_count(), 1u);  // rejoined the existing cohort
  EXPECT_EQ(registry_.cohort_of(c1), slot);
  EXPECT_EQ(pool_.cohort_weight(slot), 3u);
  EXPECT_EQ(pool_.attached_region(c1, kTopic), RegionId{0});
}

TEST_F(CohortPoolTest, LatencyRowChangeMovesClientToAnotherCohort) {
  const ClientId c0 = join(RegionId{0}, kNearA, t0_);
  const ClientId mover = join(RegionId{0}, kNearA, t0_);
  pool_.deploy(kTopic, config(0b111));
  sim_.run();
  const std::int32_t old_slot = registry_.cohort_of(mover);
  ASSERT_EQ(pool_.attached_region(mover, kTopic), RegionId{0});

  // The client's measured latencies drifted towards B: re-home its row at a
  // drained point, then move it between cohorts.
  pool_.unsubscribe_client(mover, kTopic);
  registry_.set_row(mover, registry_.intern_row(kNearB));
  pool_.subscribe_client(mover, kTopic, config(0b111));
  sim_.run();

  EXPECT_NE(registry_.cohort_of(mover), old_slot);
  EXPECT_EQ(pool_.cohort_count(), 2u);
  EXPECT_EQ(pool_.cohort_weight(old_slot), 1u);
  EXPECT_EQ(pool_.cohort_weight(registry_.cohort_of(mover)), 1u);
  EXPECT_EQ(pool_.attached_region(mover, kTopic), RegionId{1});
  EXPECT_EQ(pool_.attached_region(c0, kTopic), RegionId{0});  // undisturbed
}

TEST_F(CohortPoolTest, KillIsSilentAndTheEmptiedCohortRetires) {
  const ClientId c0 = join(RegionId{0}, kNearA, t0_);
  const ClientId c1 = join(RegionId{0}, kNearA, t0_);
  pool_.deploy(kTopic, config(0b001));
  sim_.run();
  const std::int32_t fid = pool_.flock_of(c0, kTopic);
  const std::uint64_t sent = transport_.sent_count();

  pool_.kill_client(c0);
  EXPECT_EQ(pool_.flock_weight(fid), 1u);
  EXPECT_FALSE(registry_.alive(c0));
  pool_.kill_client(c1);
  sim_.run();
  // No protocol good-bye — a crashed client sends nothing.
  EXPECT_EQ(transport_.sent_count(), sent);
  EXPECT_EQ(pool_.flock_weight(fid), 0u);
  EXPECT_EQ(pool_.retired_cohort_count(), 1u);

  // A retired cohort stays addressable but re-deploys send nothing (the
  // per-client loop over zero members is empty).
  pool_.deploy(kTopic, config(0b010));
  sim_.run();
  EXPECT_EQ(transport_.sent_count(), sent);
}

// End-to-end regression: a retired cohort's weight leaves the fan-out. The
// scenario replicates each subscriber position three-fold, so two weight-3
// cohorts serve six members; emptying one must drop exactly its half of
// the deliveries (and billing weight) from every publication.
TEST(CohortFanoutTest, RetiredCohortIsExcludedFromFanout) {
  Rng rng(11);
  sim::WorkloadSpec workload;
  workload.interval_seconds = 10.0;
  workload.subscriber_replication = 3;
  const sim::Scenario scenario =
      sim::make_scenario({{RegionId{0}, 1, 2}}, workload, rng);
  ASSERT_EQ(scenario.topic.subscribers.size(), 6u);

  sim::LiveSystem sys(scenario);
  sys.set_cohorts(true);
  ASSERT_EQ(sys.cohort_pool()->cohort_count(), 2u);
  sys.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});

  Rng traffic(21);
  const auto before = sys.run_interval(10.0, 1024, 1.0, traffic);
  ASSERT_GT(before.publications, 0u);
  ASSERT_EQ(before.delivery_times.size(), 6 * before.publications);

  // Every member of the first position's cohort dies (drained point).
  CohortPool* pool = sys.cohort_pool();
  const TopicId topic = scenario.topic.topic;
  const std::int32_t fid =
      pool->flock_of(scenario.topic.subscribers[0].client, topic);
  ASSERT_GE(fid, 0);
  ASSERT_EQ(pool->flock_weight(fid), 3u);
  const std::vector<ClientId> doomed(pool->flock_members(fid).begin(),
                                     pool->flock_members(fid).end());
  for (const ClientId client : doomed) pool->kill_client(client);
  EXPECT_EQ(pool->retired_cohort_count(), 1u);
  EXPECT_EQ(pool->flock_weight(fid), 0u);

  const auto after = sys.run_interval(10.0, 1024, 1.0, traffic);
  EXPECT_EQ(after.delivery_times.size(), 3 * after.publications);
  EXPECT_LT(after.interval_cost, before.interval_cost);
}

TEST(CohortFanoutTest, MemberDeathBetweenIntervalsShrinksTheWeight) {
  Rng rng(12);
  sim::WorkloadSpec workload;
  workload.interval_seconds = 10.0;
  workload.subscriber_replication = 3;
  const sim::Scenario scenario =
      sim::make_scenario({{RegionId{0}, 1, 2}}, workload, rng);

  sim::LiveSystem sys(scenario);
  sys.set_cohorts(true);
  sys.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});

  Rng traffic(22);
  const auto before = sys.run_interval(10.0, 1024, 1.0, traffic);
  ASSERT_EQ(before.delivery_times.size(), 6 * before.publications);

  sys.cohort_pool()->kill_client(scenario.topic.subscribers[0].client);
  const auto after = sys.run_interval(10.0, 1024, 1.0, traffic);
  EXPECT_EQ(after.delivery_times.size(), 5 * after.publications);
}

}  // namespace
}  // namespace multipub::client
