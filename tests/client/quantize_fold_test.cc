// Quantized latency-row interning (DESIGN.md §12): the compression knob
// behind --quantize-ms.
//
// ClientRegistry interns rows after flooring every entry to the bucket
// (floor(lat / bucket) * bucket), so a wider bucket can only merge rows.
// Along a chain where each bucket is an integer multiple of the previous
// one, every fine bucket is contained in exactly one coarse bucket, which
// makes the folding monotone: distinct rows — and therefore cohorts — never
// increase as the bucket widens. Arbitrary bucket pairs do NOT have that
// containment (values 2 and 3 share a bucket at width 2 but not at width
// 3), so the tests widen along multiple-chains only.
#include "client/client_registry.h"

#include <array>
#include <vector>

#include <gtest/gtest.h>

#include "client/cohort_pool.h"
#include "common/arena.h"
#include "common/rng.h"
#include "sim/live_runner.h"
#include "sim/scenario.h"

namespace multipub {
namespace {

constexpr std::size_t kRegions = 4;

/// Clients scattered around a few base network positions with +-jitter much
/// smaller than the position spacing — the shape quantization is for.
std::vector<std::vector<Millis>> jittered_rows(std::size_t n_clients) {
  Rng rng(1234);
  const std::array<double, 4> bases{20.0, 75.0, 140.0, 260.0};
  std::vector<std::vector<Millis>> rows;
  rows.reserve(n_clients);
  for (std::size_t c = 0; c < n_clients; ++c) {
    std::vector<Millis> row(kRegions);
    for (std::size_t r = 0; r < kRegions; ++r) {
      row[r] = bases[(c + r) % bases.size()] + rng.uniform(0.0, 3.0);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::size_t distinct_rows_at(const std::vector<std::vector<Millis>>& rows,
                             Millis bucket) {
  Arena arena;
  client::ClientRegistry registry(rows.size(), kRegions, bucket, arena);
  for (const auto& row : rows) {
    (void)registry.add(RegionId{0}, row, /*topic_set=*/0);
  }
  EXPECT_EQ(registry.size(), rows.size());
  return registry.row_count();
}

TEST(QuantizedFolding, RowFoldingIsMonotoneInTheBucketWidth) {
  const auto rows = jittered_rows(256);

  // 0 (exact) is the finest partition; after it each bucket is a multiple
  // of its predecessor, so the partitions only coarsen.
  const std::array<Millis, 8> buckets{0.0,  0.5,  1.0,   4.0,
                                      8.0, 32.0, 128.0, 1024.0};
  std::vector<std::size_t> counts;
  for (const Millis bucket : buckets) {
    counts.push_back(distinct_rows_at(rows, bucket));
  }

  // Exact interning keeps every jittered row distinct...
  EXPECT_EQ(counts.front(), rows.size());
  // ...folding never reverses as the bucket widens...
  for (std::size_t i = 1; i < counts.size(); ++i) {
    EXPECT_LE(counts[i], counts[i - 1])
        << "bucket " << buckets[i] << "ms grew the row count";
  }
  // ...and a bucket wider than any latency folds the world into one row.
  EXPECT_EQ(counts.back(), 1u);
  // The knob actually bites: somewhere along the chain rows merged.
  EXPECT_LT(counts[3], counts.front());
}

TEST(QuantizedFolding, SubBucketJitterFoldsOntoTheRepresentativeRow) {
  Arena arena;
  client::ClientRegistry registry(3, kRegions, /*row_bucket_ms=*/5.0, arena);
  const std::vector<Millis> first{20.0, 41.0, 62.0, 83.0};
  const std::vector<Millis> near{22.0, 44.0, 61.0, 84.9};   // same buckets
  const std::vector<Millis> far{26.0, 44.0, 61.0, 84.9};    // 26 -> bucket 25
  const ClientId a = registry.add(RegionId{0}, first, 0);
  const ClientId b = registry.add(RegionId{0}, near, 0);
  const ClientId c = registry.add(RegionId{0}, far, 0);
  EXPECT_EQ(registry.row_of(a), registry.row_of(b));
  EXPECT_NE(registry.row_of(a), registry.row_of(c));
  EXPECT_EQ(registry.row_count(), 2u);
  // Members resolve latencies through the first-seen representative row.
  EXPECT_EQ(registry.row_latency(registry.row_of(b), RegionId{0}), 20.0);
}

TEST(QuantizedFolding, LiveCohortCountIsMonotoneInTheBucketWidth) {
  // End-to-end through LiveSystem::set_cohorts: a king-synth population has
  // per-client jitter on every latency row, so exact interning yields one
  // cohort per subscriber and widening buckets fold them.
  const std::array<Millis, 5> buckets{0.0, 2.0, 8.0, 64.0, 512.0};
  std::vector<std::size_t> cohorts;
  std::size_t n_subscribers = 0;
  for (const Millis bucket : buckets) {
    Rng rng(2017);
    sim::WorkloadSpec workload;
    const sim::Scenario scenario = sim::make_scenario(
        {{RegionId{0}, 2, 6}, {RegionId{3}, 1, 6}}, workload, rng);
    n_subscribers = scenario.topic.subscribers.size();
    sim::LiveSystem live(scenario);
    live.set_cohorts(true, bucket);
    ASSERT_NE(live.cohort_pool(), nullptr);
    cohorts.push_back(live.cohort_pool()->cohort_count());
  }
  EXPECT_EQ(cohorts.front(), n_subscribers);  // exact rows: no folding
  for (std::size_t i = 1; i < cohorts.size(); ++i) {
    EXPECT_LE(cohorts[i], cohorts[i - 1])
        << "bucket " << buckets[i] << "ms grew the cohort count";
  }
  EXPECT_LT(cohorts.back(), cohorts.front());  // the knob bites end-to-end
}

}  // namespace
}  // namespace multipub
