// Publisher/Subscriber endpoint unit tests (the live suites cover them
// end-to-end; these pin the per-endpoint behaviours in isolation).
#include <gtest/gtest.h>

#include <map>

#include "client/publisher.h"
#include "client/subscriber.h"
#include "net/simulator.h"
#include "net/transport.h"
#include "testutil.h"

namespace multipub::client {
namespace {

using testutil::TinyWorld;

class ClientEndpointTest : public ::testing::Test {
 protected:
  ClientEndpointTest() {
    for (int r = 0; r < 3; ++r) {
      transport_.register_handler(
          net::Address::region(RegionId{r}),
          [this, r](const wire::Message& msg) {
            region_inbox_[RegionId{r}].push_back(msg);
          });
    }
  }

  static core::TopicConfig config(std::uint64_t mask, core::DeliveryMode mode) {
    return {geo::RegionSet(mask), mode};
  }

  TinyWorld world_;
  net::Simulator sim_;
  net::SimTransport transport_{sim_, world_.catalog, world_.backbone,
                               world_.clients};
  std::map<RegionId, std::vector<wire::Message>> region_inbox_;
};

TEST_F(ClientEndpointTest, DirectPublishFansOutToEveryServingRegion) {
  Publisher pub(TinyWorld::kNearA, sim_, transport_, world_.clients);
  pub.set_config(TopicId{0}, config(0b111, core::DeliveryMode::kDirect));
  pub.publish(TopicId{0}, 512);
  sim_.run();
  EXPECT_EQ(region_inbox_[TinyWorld::kA].size(), 1u);
  EXPECT_EQ(region_inbox_[TinyWorld::kB].size(), 1u);
  EXPECT_EQ(region_inbox_[TinyWorld::kC].size(), 1u);
  EXPECT_EQ(region_inbox_[TinyWorld::kA][0].config_mode,
            wire::WireMode::kDirect);
}

TEST_F(ClientEndpointTest, RoutedPublishTargetsClosestServingRegionOnly) {
  Publisher pub(TinyWorld::kNearA, sim_, transport_, world_.clients);
  // Closest of {B, C} for nearA ([10,100,80]) is C.
  pub.set_config(TopicId{0}, config(0b110, core::DeliveryMode::kRouted));
  pub.publish(TopicId{0}, 512);
  sim_.run();
  EXPECT_TRUE(region_inbox_[TinyWorld::kA].empty());
  EXPECT_TRUE(region_inbox_[TinyWorld::kB].empty());
  ASSERT_EQ(region_inbox_[TinyWorld::kC].size(), 1u);
  EXPECT_EQ(region_inbox_[TinyWorld::kC][0].config_mode,
            wire::WireMode::kRouted);
}

TEST_F(ClientEndpointTest, SequenceNumbersAreMonotonePerPublisher) {
  Publisher pub(TinyWorld::kNearA, sim_, transport_, world_.clients);
  pub.set_config(TopicId{0}, config(0b001, core::DeliveryMode::kDirect));
  for (int i = 0; i < 5; ++i) pub.publish(TopicId{0}, 64);
  sim_.run();
  const auto& msgs = region_inbox_[TinyWorld::kA];
  ASSERT_EQ(msgs.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(msgs[i].seq, i);
  EXPECT_EQ(pub.published_count(), 5u);
}

TEST_F(ClientEndpointTest, FirstConfigUpdateAppliesImmediately) {
  Publisher pub(TinyWorld::kNearA, sim_, transport_, world_.clients);
  wire::Message update;
  update.type = wire::MessageType::kConfigUpdate;
  update.topic = TopicId{0};
  update.config_regions = geo::RegionSet(0b010);
  update.config_mode = wire::WireMode::kDirect;
  transport_.send(net::Address::region(TinyWorld::kA),
                  net::Address::client(TinyWorld::kNearA), update);
  sim_.run();
  ASSERT_NE(pub.config(TopicId{0}), nullptr);
  EXPECT_EQ(pub.config(TopicId{0})->regions.mask(), 0b010u);
}

TEST_F(ClientEndpointTest, SubsequentConfigUpdateDefersByGrace) {
  Publisher pub(TinyWorld::kNearA, sim_, transport_, world_.clients);
  pub.set_config(TopicId{0}, config(0b001, core::DeliveryMode::kDirect));
  pub.set_handover_grace(500.0);

  wire::Message update;
  update.type = wire::MessageType::kConfigUpdate;
  update.topic = TopicId{0};
  update.config_regions = geo::RegionSet(0b010);
  update.config_mode = wire::WireMode::kDirect;
  transport_.send(net::Address::region(TinyWorld::kA),
                  net::Address::client(TinyWorld::kNearA), update);

  // Update arrives at L[nearA][A] = 10 ms; applies at 510 ms.
  sim_.run_until(100.0);
  EXPECT_EQ(pub.config(TopicId{0})->regions.mask(), 0b001u);
  sim_.run();
  EXPECT_EQ(pub.config(TopicId{0})->regions.mask(), 0b010u);
}

TEST_F(ClientEndpointTest, SubscriberRecordsDeliveryLatency) {
  Subscriber sub(TinyWorld::kNearB, sim_, transport_, world_.clients);
  wire::Message deliver;
  deliver.type = wire::MessageType::kDeliver;
  deliver.topic = TopicId{0};
  deliver.publisher = TinyWorld::kNearA;
  deliver.seq = 9;
  deliver.published_at = 0.0;
  transport_.send(net::Address::region(TinyWorld::kB),
                  net::Address::client(TinyWorld::kNearB), deliver);
  sim_.run();
  ASSERT_EQ(sub.deliveries().size(), 1u);
  EXPECT_DOUBLE_EQ(sub.deliveries()[0].delivery_time, 15.0);  // L[nearB][B]
  EXPECT_EQ(sub.deliveries()[0].seq, 9u);
}

TEST_F(ClientEndpointTest, SubscriberIgnoresUpdatesForUnknownTopics) {
  Subscriber sub(TinyWorld::kNearB, sim_, transport_, world_.clients);
  wire::Message update;
  update.type = wire::MessageType::kConfigUpdate;
  update.topic = TopicId{42};  // never subscribed
  update.config_regions = geo::RegionSet(0b001);
  transport_.send(net::Address::region(TinyWorld::kB),
                  net::Address::client(TinyWorld::kNearB), update);
  sim_.run();
  EXPECT_FALSE(sub.attached_region(TopicId{42}).valid());
}

TEST_F(ClientEndpointTest, UnsubscribeClearsAttachmentAndFilter) {
  Subscriber sub(TinyWorld::kNearB, sim_, transport_, world_.clients);
  sub.subscribe(TopicId{0}, config(0b010, core::DeliveryMode::kDirect),
                wire::KeyFilter{1, 2});
  sim_.run();
  EXPECT_EQ(sub.attached_region(TopicId{0}), TinyWorld::kB);

  sub.unsubscribe(TopicId{0});
  sim_.run();
  EXPECT_FALSE(sub.attached_region(TopicId{0}).valid());
  ASSERT_EQ(region_inbox_[TinyWorld::kB].size(), 2u);
  EXPECT_EQ(region_inbox_[TinyWorld::kB][1].type,
            wire::MessageType::kUnsubscribe);
}

TEST_F(ClientEndpointTest, ProberWorksForBothEndpointKinds) {
  Publisher pub(TinyWorld::kNearA, sim_, transport_, world_.clients);
  Subscriber sub(TinyWorld::kNearB, sim_, transport_, world_.clients);
  // No broker behind the region addresses here; pings land in the region
  // inbox. Just assert the sends happen (pong handling is covered by the
  // latency-monitoring integration suite).
  pub.probe_latencies(geo::RegionSet(0b011));
  sub.probe_latencies(geo::RegionSet(0b100));
  sim_.run();
  EXPECT_EQ(pub.prober().pings_sent(), 2u);
  EXPECT_EQ(sub.prober().pings_sent(), 1u);
  EXPECT_EQ(region_inbox_[TinyWorld::kC].size(), 1u);
  EXPECT_EQ(region_inbox_[TinyWorld::kC][0].type, wire::MessageType::kPing);
}

}  // namespace
}  // namespace multipub::client
