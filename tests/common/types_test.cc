#include "common/types.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace multipub {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  RegionId r;
  EXPECT_FALSE(r.valid());
  EXPECT_EQ(r, RegionId::invalid());
}

TEST(StrongId, ValueRoundTrip) {
  const ClientId c{17};
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(c.value(), 17);
  EXPECT_EQ(c.index(), 17u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(TopicId{1}, TopicId{2});
  EXPECT_EQ(TopicId{3}, TopicId{3});
  EXPECT_NE(TopicId{3}, TopicId{4});
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<RegionId, ClientId>);
  static_assert(!std::is_same_v<ClientId, TopicId>);
}

TEST(StrongId, Hashable) {
  std::unordered_set<TopicId> set;
  set.insert(TopicId{1});
  set.insert(TopicId{1});
  set.insert(TopicId{2});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Units, PerGbToPerByte) {
  // $0.09/GB over a full GB must total $0.09 again.
  const double per_byte = per_gb_to_per_byte(0.09);
  EXPECT_DOUBLE_EQ(per_byte * kBytesPerGb, 0.09);
  EXPECT_LT(per_byte, 1e-9);
}

TEST(Units, UnreachableComparesAboveEverything) {
  EXPECT_GT(kUnreachable, 1e12);
}

}  // namespace
}  // namespace multipub
