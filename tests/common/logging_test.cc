#include "common/logging.h"

#include <gtest/gtest.h>

#include <ostream>

namespace multipub {
namespace {

/// RAII guard restoring the global log level after each test.
class LevelGuard {
 public:
  LevelGuard() : saved_(log_level()) {}
  ~LevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Logging, DefaultLevelIsWarn) {
  // (Other tests must not have leaked a level change; the guard pattern
  // below keeps it that way.)
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(Logging, SetAndGetLevel) {
  LevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Logging, LevelsAreOrdered) {
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kError);
}

// A type that counts how often it is actually formatted into a stream
// (namespace scope: local classes cannot define friend operators).
struct Counted {
  int* formats;
};
std::ostream& operator<<(std::ostream& os, const Counted& c) {
  ++*c.formats;
  return os << "counted";
}

TEST(Logging, SuppressedStreamSkipsOstreamFormatting) {
  LevelGuard guard;
  set_log_level(LogLevel::kError);
  int formats = 0;
  { LogStream(LogLevel::kDebug, "test") << Counted{&formats}; }
  EXPECT_EQ(formats, 0);  // below threshold: formatting short-circuited
  { LogStream(LogLevel::kError, "test") << Counted{&formats}; }
  EXPECT_EQ(formats, 1);  // at threshold: formatted (and emitted) once
}

TEST(Logging, MacrosCompileAndRun) {
  LevelGuard guard;
  set_log_level(LogLevel::kError);  // keep the test output quiet
  MP_LOG_DEBUG("test") << "debug " << 1;
  MP_LOG_INFO("test") << "info " << 2.5;
  MP_LOG_WARN("test") << "warn " << "three";
  // kError would print; exercise it once to cover the emit path.
  MP_LOG_ERROR("test") << "error path exercised (expected in test output)";
  SUCCEED();
}

}  // namespace
}  // namespace multipub
