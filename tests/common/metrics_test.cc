#include "common/metrics.h"

#include <gtest/gtest.h>

namespace multipub {
namespace {

TEST(MetricsRegistry, EmptyByDefault) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_FALSE(registry.contains("anything"));
  EXPECT_DOUBLE_EQ(registry.value("anything"), 0.0);
  EXPECT_EQ(registry.render(), "");
}

TEST(MetricsRegistry, GaugeSetOverwrites) {
  MetricsRegistry registry;
  registry.set("queue.depth", 5.0);
  registry.set("queue.depth", 2.0);
  EXPECT_DOUBLE_EQ(registry.value("queue.depth"), 2.0);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistry, CounterAddAccumulates) {
  MetricsRegistry registry;
  registry.add("messages", 3.0);
  registry.add("messages", 4.0);
  EXPECT_DOUBLE_EQ(registry.value("messages"), 7.0);
}

TEST(MetricsRegistry, AddCreatesAtDelta) {
  MetricsRegistry registry;
  registry.add("fresh", 1.5);
  EXPECT_DOUBLE_EQ(registry.value("fresh"), 1.5);
}

TEST(MetricsRegistry, RenderIsSortedAndParsable) {
  MetricsRegistry registry;
  registry.set("zeta", 1.0);
  registry.set("alpha", 0.5);
  registry.set("mid.dle", 42.0);
  const std::string text = registry.render();
  EXPECT_EQ(text, "alpha 0.5\nmid.dle 42\nzeta 1\n");
}

TEST(MetricsRegistry, RenderRoundTripsPrecision) {
  MetricsRegistry registry;
  registry.set("pi", 3.141592653589793);
  const std::string text = registry.render();
  double parsed = 0.0;
  ASSERT_EQ(std::sscanf(text.c_str(), "pi %lf", &parsed), 1);
  EXPECT_DOUBLE_EQ(parsed, 3.141592653589793);
}

}  // namespace
}  // namespace multipub
