#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace multipub {
namespace {

TEST(MetricsRegistry, EmptyByDefault) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_FALSE(registry.contains("anything"));
  EXPECT_DOUBLE_EQ(registry.value("anything"), 0.0);
  EXPECT_EQ(registry.render(), "");
}

TEST(MetricsRegistry, GaugeSetOverwrites) {
  MetricsRegistry registry;
  registry.set("queue.depth", 5.0);
  registry.set("queue.depth", 2.0);
  EXPECT_DOUBLE_EQ(registry.value("queue.depth"), 2.0);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistry, CounterAddAccumulates) {
  MetricsRegistry registry;
  registry.add("messages", 3.0);
  registry.add("messages", 4.0);
  EXPECT_DOUBLE_EQ(registry.value("messages"), 7.0);
}

TEST(MetricsRegistry, AddCreatesAtDelta) {
  MetricsRegistry registry;
  registry.add("fresh", 1.5);
  EXPECT_DOUBLE_EQ(registry.value("fresh"), 1.5);
}

TEST(MetricsRegistry, RenderIsSortedAndParsable) {
  MetricsRegistry registry;
  registry.set("zeta", 1.0);
  registry.set("alpha", 0.5);
  registry.set("mid.dle", 42.0);
  const std::string text = registry.render();
  EXPECT_EQ(text, "alpha 0.5\nmid.dle 42\nzeta 1\n");
}

TEST(MetricsRegistry, RenderRoundTripsPrecision) {
  MetricsRegistry registry;
  registry.set("pi", 3.141592653589793);
  const std::string text = registry.render();
  double parsed = 0.0;
  ASSERT_EQ(std::sscanf(text.c_str(), "pi %lf", &parsed), 1);
  EXPECT_DOUBLE_EQ(parsed, 3.141592653589793);
}

TEST(ShardedCounter, SingleLaneBehavesLikeAPlainCounter) {
  ShardedCounter counter;
  EXPECT_EQ(counter.lanes(), 1u);
  counter.add(0);
  counter.add(0, 41);
  EXPECT_EQ(counter.total(), 42u);
}

TEST(ShardedCounter, ConfigureResetsAndResizes) {
  ShardedCounter counter(2);
  counter.add(1, 7);
  counter.configure(4);
  EXPECT_EQ(counter.lanes(), 4u);
  EXPECT_EQ(counter.total(), 0u);
  counter.configure(0);  // clamps to one lane
  EXPECT_EQ(counter.lanes(), 1u);
}

TEST(ShardedCounter, MergeIsLaneDistributionInvariant) {
  // The same increments spread over different lane layouts must merge to the
  // same total — this is what makes counters K-invariant across shard counts.
  ShardedCounter one(1);
  ShardedCounter four(4);
  for (std::uint64_t i = 0; i < 100; ++i) {
    one.add(0, i);
    four.add(i % 4, i);
  }
  EXPECT_EQ(one.total(), four.total());
}

// TSan-targeted regression: concurrent writers on DISTINCT lanes must be
// race-free (each lane is a private cache line; no locks, no atomics). Run
// under the ThreadSanitizer CI job; without sharding this pattern on a plain
// uint64_t is a data race TSan flags immediately.
TEST(ShardedCounter, ConcurrentLaneWritersAreRaceFree) {
  constexpr std::size_t kLanes = 8;
  constexpr std::uint64_t kPerLane = 100000;
  ShardedCounter counter(kLanes);
  std::vector<std::thread> writers;
  writers.reserve(kLanes);
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    writers.emplace_back([&counter, lane] {
      for (std::uint64_t i = 0; i < kPerLane; ++i) counter.add(lane);
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(counter.total(), kLanes * kPerLane);
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    EXPECT_EQ(counter.lane(lane), kPerLane);
  }
}

}  // namespace
}  // namespace multipub
