#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace multipub {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(10.0, 20.0);
    EXPECT_GE(v, 10.0);
    EXPECT_LT(v, 20.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, LognormalMedianApproximatesMedian) {
  Rng rng(123);
  std::vector<double> draws;
  for (int i = 0; i < 20000; ++i) draws.push_back(rng.lognormal_median(18.0, 0.45));
  std::sort(draws.begin(), draws.end());
  const double empirical_median = draws[draws.size() / 2];
  EXPECT_NEAR(empirical_median, 18.0, 0.5);
  // All draws positive.
  EXPECT_GT(draws.front(), 0.0);
}

TEST(Rng, NormalZeroStddevIsDeterministic) {
  Rng rng(5);
  EXPECT_DOUBLE_EQ(rng.normal(3.5, 0.0), 3.5);
}

TEST(Rng, ExponentialMeanApproximatesMean) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng a(42);
  Rng fork1 = a.fork();
  const double after_fork = a.uniform(0.0, 1.0);

  // Recreate: forking consumes exactly one parent draw.
  Rng b(42);
  Rng fork2 = b.fork();
  EXPECT_DOUBLE_EQ(fork1.uniform(0.0, 1.0), fork2.uniform(0.0, 1.0));
  EXPECT_DOUBLE_EQ(after_fork, b.uniform(0.0, 1.0));
}

}  // namespace
}  // namespace multipub
