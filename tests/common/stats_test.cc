#include "common/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace multipub {
namespace {

TEST(PercentileRank, MatchesPaperFormula) {
  // n^T = ceil(ratio/100 * |D|), Eq. 5.
  EXPECT_EQ(percentile_rank(75.0, 100), 75u);
  EXPECT_EQ(percentile_rank(95.0, 100), 95u);
  EXPECT_EQ(percentile_rank(100.0, 100), 100u);
  EXPECT_EQ(percentile_rank(75.0, 3), 3u);   // ceil(2.25)
  EXPECT_EQ(percentile_rank(50.0, 3), 2u);   // ceil(1.5)
  EXPECT_EQ(percentile_rank(1.0, 1), 1u);
  EXPECT_EQ(percentile_rank(0.5, 1000), 5u);
}

TEST(PercentileRank, NeverZeroEvenForTinyRatios) {
  EXPECT_EQ(percentile_rank(0.0001, 10), 1u);
}

TEST(Percentile, SingleElement) {
  const std::vector<Millis> one{42.0};
  EXPECT_DOUBLE_EQ(percentile(one, 50.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(one, 100.0), 42.0);
}

TEST(Percentile, OrderStatisticOnKnownList) {
  const std::vector<Millis> v{50, 10, 40, 20, 30};  // sorted: 10 20 30 40 50
  EXPECT_DOUBLE_EQ(percentile(v, 20.0), 10.0);  // rank ceil(1)=1
  EXPECT_DOUBLE_EQ(percentile(v, 40.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 60.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 61.0), 40.0);  // ceil(3.05)=4
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 50.0);
}

TEST(Percentile, InputOrderIrrelevant) {
  std::vector<Millis> v{5, 3, 9, 1, 7, 2, 8, 4, 6};
  std::mt19937 shuffle_rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::shuffle(v.begin(), v.end(), shuffle_rng);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
  }
}

TEST(WeightedPercentile, UnitWeightsMatchPlainPercentile) {
  const std::vector<Millis> plain{12, 7, 33, 21, 5, 18};
  std::vector<WeightedSample> weighted;
  for (Millis v : plain) weighted.push_back({v, 1});
  for (double ratio : {10.0, 25.0, 50.0, 75.0, 90.0, 100.0}) {
    EXPECT_DOUBLE_EQ(weighted_percentile(weighted, ratio),
                     percentile(plain, ratio))
        << "ratio=" << ratio;
  }
}

TEST(WeightedPercentile, EquivalentToExpandedList) {
  const std::vector<WeightedSample> weighted{{10.0, 3}, {20.0, 1}, {5.0, 6}};
  std::vector<Millis> expanded;
  for (const auto& s : weighted) {
    expanded.insert(expanded.end(), s.weight, s.value);
  }
  for (double ratio = 5.0; ratio <= 100.0; ratio += 5.0) {
    EXPECT_DOUBLE_EQ(weighted_percentile(weighted, ratio),
                     percentile(expanded, ratio))
        << "ratio=" << ratio;
  }
}

// Property sweep: random weighted lists must agree with their expansion at
// every ratio.
class WeightedEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(WeightedEquivalence, RandomListsAgreeWithExpansion) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_real_distribution<double> value_dist(0.0, 500.0);
  std::uniform_int_distribution<std::uint64_t> weight_dist(1, 7);
  std::uniform_int_distribution<int> size_dist(1, 40);

  std::vector<WeightedSample> weighted;
  std::vector<Millis> expanded;
  const int n = size_dist(rng);
  for (int i = 0; i < n; ++i) {
    const WeightedSample s{value_dist(rng), weight_dist(rng)};
    weighted.push_back(s);
    expanded.insert(expanded.end(), s.weight, s.value);
  }
  for (double ratio : {1.0, 13.0, 50.0, 75.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(weighted_percentile(weighted, ratio),
                     percentile(expanded, ratio))
        << "seed=" << GetParam() << " ratio=" << ratio;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedEquivalence, ::testing::Range(0, 25));

TEST(WeightedPercentile, HeavyTailDominatesHighRatio) {
  // 99 fast deliveries, 1 slow one: the 100th percentile is the slow one,
  // the 99th is fast.
  const std::vector<WeightedSample> samples{{10.0, 99}, {500.0, 1}};
  EXPECT_DOUBLE_EQ(weighted_percentile(samples, 99.0), 10.0);
  EXPECT_DOUBLE_EQ(weighted_percentile(samples, 100.0), 500.0);
}

TEST(Summarize, EmptyYieldsZeros) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, KnownValues) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic textbook example
}

}  // namespace
}  // namespace multipub
