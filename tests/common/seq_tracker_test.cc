#include "common/seq_tracker.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.h"

namespace multipub {
namespace {

TEST(SeqTracker, StartsAtOriginAndAdvancesContiguously) {
  SeqTracker t;
  EXPECT_EQ(t.next(), 1u);
  EXPECT_EQ(t.high(), 0u);
  EXPECT_TRUE(t.contiguous());

  t.record(1);
  t.record(2);
  EXPECT_EQ(t.next(), 3u);
  EXPECT_EQ(t.high(), 2u);
  EXPECT_TRUE(t.contiguous());
}

TEST(SeqTracker, OutOfOrderReceiptsParkUntilTheGapFills) {
  SeqTracker t;
  t.record(1);
  t.record(4);  // 2 and 3 missing
  EXPECT_EQ(t.next(), 2u);
  EXPECT_EQ(t.high(), 4u);
  EXPECT_FALSE(t.contiguous());

  t.record(3);
  EXPECT_EQ(t.next(), 2u);  // still blocked on 2

  t.record(2);  // drains the parked 3 and 4 in one step
  EXPECT_EQ(t.next(), 5u);
  EXPECT_TRUE(t.contiguous());
}

TEST(SeqTracker, OpensGapFiresOncePerNewGap) {
  SeqTracker t;
  t.record(1);
  // 3 skips 2: a NEW gap.
  EXPECT_TRUE(t.opens_gap(3));
  t.record(3);
  // 4 extends the known frontier contiguously — the gap at 2 is old news,
  // the periodic sync pass re-requests it, not the arrival path.
  EXPECT_FALSE(t.opens_gap(4));
  t.record(4);
  // 7 skips 5 and 6: another new gap.
  EXPECT_TRUE(t.opens_gap(7));
  // A duplicate or late copy below the cursor never opens anything.
  EXPECT_FALSE(t.opens_gap(1));
}

TEST(SeqTracker, StaleAndDuplicateRecordsAreIgnored) {
  SeqTracker t;
  for (std::uint64_t s = 1; s <= 5; ++s) t.record(s);
  t.record(3);  // replayed duplicate
  t.record(5);
  EXPECT_EQ(t.next(), 6u);
  EXPECT_EQ(t.high(), 5u);
  EXPECT_TRUE(t.contiguous());
}

TEST(SeqTracker, NextNamesTheOldestMissingEntry) {
  // The cumulative-ack property the replay protocol leans on: however the
  // receipts interleave, next() is always the oldest entry never recorded,
  // so a re-request from next() can heal any lost replay batch.
  SeqTracker t;
  t.record(2);
  t.record(5);
  t.record(6);
  EXPECT_EQ(t.next(), 1u);
  t.record(1);
  EXPECT_EQ(t.next(), 3u);
  t.record(4);
  EXPECT_EQ(t.next(), 3u);
  t.record(3);
  EXPECT_EQ(t.next(), 7u);
}

TEST(SeqTracker, ResetRestartsAtOrigin) {
  SeqTracker t;
  t.record(1);
  t.record(9);
  t.reset();
  EXPECT_EQ(t.next(), 1u);
  EXPECT_EQ(t.high(), 0u);
  EXPECT_TRUE(t.contiguous());
  EXPECT_EQ(t, SeqTracker{});
}

TEST(SeqTracker, EqualityComparesTheWholeCursorState) {
  SeqTracker a;
  SeqTracker b;
  a.record(1);
  b.record(1);
  EXPECT_EQ(a, b);
  b.record(3);  // b parked an out-of-order receipt
  EXPECT_FALSE(a == b);
  a.record(3);
  EXPECT_EQ(a, b);
}

TEST(SeqTracker, RandomizedPermutationsConvergeRegardlessOfOrder) {
  Rng rng(20260808);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t n =
        static_cast<std::uint64_t>(rng.uniform_int(1, 40));
    std::vector<std::uint64_t> order;
    for (std::uint64_t s = 1; s <= n; ++s) order.push_back(s);
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
    }

    SeqTracker t;
    std::set<std::uint64_t> reference;
    for (const std::uint64_t s : order) {
      t.record(s);
      reference.insert(s);
      // Invariant: next() - 1 is the longest contiguous prefix received.
      std::uint64_t prefix = 0;
      while (reference.count(prefix + 1) != 0) ++prefix;
      EXPECT_EQ(t.next(), prefix + 1);
      EXPECT_EQ(t.high(), *reference.rbegin());
    }
    EXPECT_EQ(t.next(), n + 1);
    EXPECT_TRUE(t.contiguous());
  }
}

}  // namespace
}  // namespace multipub
