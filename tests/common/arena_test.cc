#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace multipub {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndAccounted) {
  Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);

  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(1, 64);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
  EXPECT_GE(arena.bytes_used(), 3u + 8u + 1u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(ArenaTest, MakeArrayDefaultInitializes) {
  Arena arena;
  std::int32_t* xs = arena.make_array<std::int32_t>(1000);
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(xs[i], 0);
  xs[999] = 7;
  EXPECT_EQ(xs[999], 7);
}

TEST(ArenaTest, BlocksDoubleGeometricallyUpToTheCap) {
  Arena arena;
  // Many small allocations: block count should grow logarithmically, so
  // reserved bytes stay within a small factor of used bytes.
  for (int i = 0; i < 10000; ++i) (void)arena.allocate(64, 8);
  EXPECT_GE(arena.bytes_used(), 64u * 10000u);
  EXPECT_LE(arena.bytes_reserved(), 4u * arena.bytes_used());
}

TEST(ArenaTest, OversizedRequestGetsItsOwnBlock) {
  Arena arena;
  const std::size_t big = Arena::kMaxBlockBytes + 1024;
  auto* p = static_cast<std::byte*>(arena.allocate(big, 16));
  ASSERT_NE(p, nullptr);
  p[0] = std::byte{1};
  p[big - 1] = std::byte{2};
  EXPECT_GE(arena.bytes_reserved(), big);
}

TEST(ArenaTest, ResetDropsEverything) {
  Arena arena;
  (void)arena.make_array<double>(512);
  EXPECT_GT(arena.bytes_used(), 0u);
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  // Usable again after reset.
  double* xs = arena.make_array<double>(8);
  xs[0] = 1.5;
  EXPECT_EQ(xs[0], 1.5);
}

}  // namespace
}  // namespace multipub
