#include "core/heuristic.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/king_synth.h"
#include "geo/synthetic.h"
#include "sim/scenario.h"
#include "testutil.h"

namespace multipub::core {
namespace {

using testutil::TinyWorld;

class HeuristicTinyTest : public ::testing::Test {
 protected:
  TinyWorld world_;
  Optimizer exact_{world_.catalog, world_.backbone, world_.clients};
  HeuristicOptimizer heuristic_{world_.catalog, world_.backbone,
                                world_.clients};
};

TEST_F(HeuristicTinyTest, MatchesExactOnUnconstrainedTopic) {
  const auto topic = testutil::tiny_topic(10, 1000, 75.0, kUnreachable);
  const auto exact = exact_.optimize(topic);
  const auto approx = heuristic_.optimize(topic);
  EXPECT_EQ(approx.config, exact.config);
  EXPECT_DOUBLE_EQ(approx.cost, exact.cost);
  EXPECT_TRUE(approx.constraint_met);
}

TEST_F(HeuristicTinyTest, MatchesExactOnTightConstraint) {
  const auto topic = testutil::tiny_topic(10, 1000, 75.0, 110.0);
  const auto exact = exact_.optimize(topic);
  const auto approx = heuristic_.optimize(topic);
  EXPECT_TRUE(approx.constraint_met);
  EXPECT_LE(approx.percentile, 110.0);
  // Greedy may land on a different (but no more than marginally pricier)
  // configuration; in TinyWorld it is exact.
  EXPECT_EQ(approx.config, exact.config);
}

TEST_F(HeuristicTinyTest, InfeasibleFallsBackToLatencyMinimizing) {
  const auto topic = testutil::tiny_topic(10, 1000, 75.0, 1.0);
  const auto approx = heuristic_.optimize(topic);
  EXPECT_FALSE(approx.constraint_met);
  // The greedy floor is within a small factor of the global floor.
  const auto exact = exact_.optimize(topic);
  EXPECT_LE(approx.percentile, exact.percentile * 1.25);
}

TEST_F(HeuristicTinyTest, EvaluatesFarFewerConfigsThanBruteForce) {
  const auto topic = testutil::tiny_topic(10, 1000, 75.0, 110.0);
  const auto exact = exact_.optimize(topic);
  const auto approx = heuristic_.optimize(topic);
  EXPECT_LT(approx.configs_evaluated, exact.configs_evaluated * 3);
  // (On 3 regions the saving is tiny; the EC2 tests below show the gap.)
}

TEST_F(HeuristicTinyTest, RespectsModePolicy) {
  const auto topic = testutil::tiny_topic(10, 1000, 75.0, 105.0);
  HeuristicOptions direct_only;
  direct_only.mode_policy = ModePolicy::kDirectOnly;
  const auto approx = heuristic_.optimize(topic, direct_only);
  EXPECT_EQ(approx.config.mode, DeliveryMode::kDirect);
}

TEST_F(HeuristicTinyTest, CandidateMaskRestrictsTheSearch) {
  const auto topic = testutil::tiny_topic(10, 1000, 75.0, kUnreachable);
  HeuristicOptions masked;
  masked.candidates = geo::RegionSet::single(TinyWorld::kB);
  const auto result = heuristic_.optimize(topic, masked);
  EXPECT_EQ(result.config.regions, geo::RegionSet::single(TinyWorld::kB));
}

TEST_F(HeuristicTinyTest, MaxRegionsCapsGrowth) {
  const auto topic = testutil::tiny_topic(10, 1000, 75.0, 1.0);
  HeuristicOptions capped;
  capped.max_regions = 1;
  const auto approx = heuristic_.optimize(topic, capped);
  EXPECT_EQ(approx.config.region_count(), 1);
}

// Quality sweep on the EC2 world across experiment workloads and bounds:
// the heuristic's cost must stay within 10 % of brute force whenever both
// meet the constraint.
class HeuristicQuality : public ::testing::TestWithParam<double> {};

TEST_P(HeuristicQuality, CloseToExactOnEc2World) {
  Rng rng(61);
  const sim::Scenario scenario = sim::make_experiment1_scenario(rng);
  auto topic = scenario.topic;
  topic.constraint.max = GetParam();

  const Optimizer exact(scenario.catalog, scenario.backbone,
                        scenario.population.latencies);
  const HeuristicOptimizer heuristic(scenario.catalog, scenario.backbone,
                                     scenario.population.latencies);
  const auto e = exact.optimize(topic);
  const auto h = heuristic.optimize(topic);

  EXPECT_EQ(h.constraint_met, e.constraint_met) << "max_t=" << GetParam();
  if (e.constraint_met) {
    EXPECT_LE(h.cost, e.cost * 1.10) << "max_t=" << GetParam();
  }
  EXPECT_LT(h.configs_evaluated, 1500u);  // vs 2036 brute force at N=10;
                                          // the gap widens exponentially
}

INSTANTIATE_TEST_SUITE_P(Bounds, HeuristicQuality,
                         ::testing::Values(150.0, 160.0, 175.0, 200.0, 250.0,
                                           400.0));

TEST(HeuristicScale, HandlesTwentyRegionWorlds) {
  // Brute force at 20 regions would need ~2 million evaluations; the
  // heuristic stays in the hundreds.
  Rng rng(62);
  const auto world = geo::synthesize_world(20, {}, rng);
  auto population = geo::synthesize_population(world.catalog, world.backbone,
                                               5, {}, rng);

  TopicState topic;
  topic.topic = TopicId{0};
  topic.constraint = {90.0, 120.0};
  std::vector<ClientId> pubs, subs;
  for (std::size_t i = 0; i < population.size(); ++i) {
    const ClientId id{static_cast<ClientId::underlying_type>(i)};
    (i % 2 == 0 ? pubs : subs).push_back(id);
  }
  topic.publishers = uniform_publishers(pubs, 10, 1024);
  topic.subscribers = unit_subscribers(subs);

  const HeuristicOptimizer heuristic(world.catalog, world.backbone,
                                     population.latencies);
  const auto result = heuristic.optimize(topic);
  EXPECT_FALSE(result.config.regions.empty());
  EXPECT_LT(result.configs_evaluated, 5000u);
  if (result.constraint_met) {
    EXPECT_LE(result.percentile, 120.0);
  }
}

}  // namespace
}  // namespace multipub::core
