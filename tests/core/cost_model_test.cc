#include "core/cost_model.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace multipub::core {
namespace {

using testutil::TinyWorld;

class CostModelTest : public ::testing::Test {
 protected:
  TinyWorld world_;
  CostModel model_{world_.catalog, world_.clients};

  static TopicConfig make_config(std::initializer_list<RegionId> regions,
                                 DeliveryMode mode) {
    geo::RegionSet set;
    for (RegionId r : regions) set.add(r);
    return {set, mode};
  }
};

TEST_F(CostModelTest, SubscribersPerRegionHandChecked) {
  const auto topic = testutil::tiny_topic();
  const auto counts = model_.subscribers_per_region(
      topic, make_config({TinyWorld::kA, TinyWorld::kB}, DeliveryMode::kDirect)
                 .regions);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);  // nearA2 and nearC attach to A
  EXPECT_EQ(counts[1], 1u);  // nearB
  EXPECT_EQ(counts[2], 0u);  // C not serving
}

TEST_F(CostModelTest, DirectCostEquation3HandChecked) {
  // 10 messages x 1000 B = 10^4 bytes published.
  // Z = bytes * (2 subs * beta(A) + 1 sub * beta(B))
  const auto topic = testutil::tiny_topic(10, 1000);
  const auto config =
      make_config({TinyWorld::kA, TinyWorld::kB}, DeliveryMode::kDirect);
  const double expected =
      10000.0 * (2 * per_gb_to_per_byte(0.09) + 1 * per_gb_to_per_byte(0.14));
  EXPECT_DOUBLE_EQ(model_.cost(topic, config), expected);

  const auto breakdown = model_.cost_breakdown(topic, config);
  EXPECT_DOUBLE_EQ(breakdown.subscriber_egress, expected);
  EXPECT_DOUBLE_EQ(breakdown.inter_region, 0.0);
}

TEST_F(CostModelTest, RoutedCostEquation4AddsForwarding) {
  const auto topic = testutil::tiny_topic(10, 1000);
  const auto direct =
      make_config({TinyWorld::kA, TinyWorld::kB}, DeliveryMode::kDirect);
  const auto routed =
      make_config({TinyWorld::kA, TinyWorld::kB}, DeliveryMode::kRouted);

  // Publisher's home is A; (N_R - 1) = 1 forward at alpha(A) = $0.02/GB.
  const double forwarding = 10000.0 * per_gb_to_per_byte(0.02);
  EXPECT_DOUBLE_EQ(model_.cost(topic, routed),
                   model_.cost(topic, direct) + forwarding);

  const auto breakdown = model_.cost_breakdown(topic, routed);
  EXPECT_DOUBLE_EQ(breakdown.inter_region, forwarding);
}

TEST_F(CostModelTest, RoutedSingleRegionHasNoForwarding) {
  const auto topic = testutil::tiny_topic();
  const auto routed = make_config({TinyWorld::kA}, DeliveryMode::kRouted);
  const auto direct = make_config({TinyWorld::kA}, DeliveryMode::kDirect);
  EXPECT_DOUBLE_EQ(model_.cost(topic, routed), model_.cost(topic, direct));
}

TEST_F(CostModelTest, ForwardingBilledAtPublisherHomeTariff) {
  // Publisher near C: home among {A, C} is C, whose alpha is $0.16/GB.
  TopicState topic = testutil::tiny_topic(0, 0);
  topic.publishers = {{TinyWorld::kNearC, 5, 5000}};
  const auto routed =
      make_config({TinyWorld::kA, TinyWorld::kC}, DeliveryMode::kRouted);
  const auto breakdown = model_.cost_breakdown(topic, routed);
  EXPECT_DOUBLE_EQ(breakdown.inter_region, 5000.0 * per_gb_to_per_byte(0.16));
}

TEST_F(CostModelTest, ServingRegionWithoutSubscribersCostsNothingDirect) {
  // All three regions serve, but only A and B have local subscribers... in
  // TinyWorld nearC attaches to C when C serves. Use a topic without nearC.
  TopicState topic = testutil::tiny_topic(10, 1000);
  topic.subscribers = unit_subscribers({TinyWorld::kNearA2, TinyWorld::kNearB});
  const auto all_direct = make_config(
      {TinyWorld::kA, TinyWorld::kB, TinyWorld::kC}, DeliveryMode::kDirect);
  // C serves but nobody attaches there -> no egress from C.
  const double expected =
      10000.0 * (per_gb_to_per_byte(0.09) + per_gb_to_per_byte(0.14));
  EXPECT_DOUBLE_EQ(model_.cost(topic, all_direct), expected);
}

TEST_F(CostModelTest, BundledSubscriberWeightScalesCost) {
  TopicState topic = testutil::tiny_topic(10, 1000);
  topic.subscribers = {{TinyWorld::kNearA2, 4}};  // virtual client of 4
  const auto config = make_config({TinyWorld::kA}, DeliveryMode::kDirect);
  EXPECT_DOUBLE_EQ(model_.cost(topic, config),
                   10000.0 * 4 * per_gb_to_per_byte(0.09));
}

TEST_F(CostModelTest, CostScalesLinearlyWithTraffic) {
  const auto config =
      make_config({TinyWorld::kA, TinyWorld::kB}, DeliveryMode::kRouted);
  const auto small = testutil::tiny_topic(10, 1000);
  const auto large = testutil::tiny_topic(100, 1000);
  EXPECT_NEAR(model_.cost(large, config), 10.0 * model_.cost(small, config),
              1e-12);
}

TEST_F(CostModelTest, MoreRegionsNeverCheaperUnderDirect) {
  // Adding a region can only move subscribers to (possibly pricier) closer
  // regions or leave them; with TinyWorld's tariffs, the superset is at
  // least as expensive.
  const auto topic = testutil::tiny_topic(10, 1000);
  const double ab = model_.cost(
      topic, make_config({TinyWorld::kA, TinyWorld::kB}, DeliveryMode::kDirect));
  const double abc = model_.cost(
      topic, make_config({TinyWorld::kA, TinyWorld::kB, TinyWorld::kC},
                         DeliveryMode::kDirect));
  EXPECT_GE(abc, ab);
}

TEST(ScaleToDay, SimpleProportion) {
  EXPECT_DOUBLE_EQ(scale_to_day(1.0, 3600.0), 24.0);
  EXPECT_DOUBLE_EQ(scale_to_day(0.5, 86400.0), 0.5);
}

TEST(CostModelPaperNumbers, OneRegionGlobalWorkloadMatchesFigure3b) {
  // Cross-check against the paper's Figure 3b "One Region" cost: 100
  // publishers x 1 msg/s x 1 KB, 100 subscribers, one cheap region
  // (beta $0.09/GB), one day:
  //   cost = 100 pubs * 86400 msgs... = 86400 s * 100 pubs * 1024 B * 100
  //   subs * 0.09/2^30 = ~$74/day. The paper reports $77/day.
  const double bytes_per_day = 86400.0 * 100.0 * 1024.0;
  const double cost = bytes_per_day * 100.0 * per_gb_to_per_byte(0.09);
  EXPECT_NEAR(cost, 74.2, 0.2);
  EXPECT_NEAR(cost, 77.0, 4.0);  // within a few dollars of the paper
}

}  // namespace
}  // namespace multipub::core
