#include "core/delivery_model.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace multipub::core {
namespace {

using testutil::TinyWorld;

class DeliveryModelTest : public ::testing::Test {
 protected:
  TinyWorld world_;
  DeliveryModel model_{world_.backbone, world_.clients};

  static TopicConfig direct_ab() {
    geo::RegionSet set;
    set.add(TinyWorld::kA);
    set.add(TinyWorld::kB);
    return {set, DeliveryMode::kDirect};
  }
  static TopicConfig routed_ab() {
    TopicConfig c = direct_ab();
    c.mode = DeliveryMode::kRouted;
    return c;
  }
};

TEST_F(DeliveryModelTest, DirectEquation1HandChecked) {
  const TopicConfig config = direct_ab();
  // nearA2's closest of {A,B} is A: D = L[pub][A] + L[sub][A] = 10 + 20.
  EXPECT_DOUBLE_EQ(model_.pair_delivery_time(TinyWorld::kNearA,
                                             TinyWorld::kNearA2, config),
                   30.0);
  // nearB attaches to B: D = L[pub][B] + L[sub][B] = 100 + 15.
  EXPECT_DOUBLE_EQ(
      model_.pair_delivery_time(TinyWorld::kNearA, TinyWorld::kNearB, config),
      115.0);
  // nearC's closest of {A,B} is A (85 < 160): D = 10 + 85.
  EXPECT_DOUBLE_EQ(
      model_.pair_delivery_time(TinyWorld::kNearA, TinyWorld::kNearC, config),
      95.0);
}

TEST_F(DeliveryModelTest, RoutedEquation2HandChecked) {
  const TopicConfig config = routed_ab();
  // Publisher's home among {A,B} is A (10 < 100).
  // nearA2 (R^S = A = R^P): 10 + 0 + 20 = 30 (two hops).
  EXPECT_DOUBLE_EQ(model_.pair_delivery_time(TinyWorld::kNearA,
                                             TinyWorld::kNearA2, config),
                   30.0);
  // nearB (R^S = B): 10 + backbone(A,B)=80 + 15 = 105 (three hops).
  EXPECT_DOUBLE_EQ(
      model_.pair_delivery_time(TinyWorld::kNearA, TinyWorld::kNearB, config),
      105.0);
  // nearC (R^S = A): 10 + 0 + 85 = 95.
  EXPECT_DOUBLE_EQ(
      model_.pair_delivery_time(TinyWorld::kNearA, TinyWorld::kNearC, config),
      95.0);
}

TEST_F(DeliveryModelTest, RoutedBeatsDirectWhenBackboneIsFast) {
  // The paper's Experiment 2 insight in miniature: publisher->B via client
  // path costs 100, via home region + backbone costs 10+80=90.
  EXPECT_LT(model_.pair_delivery_time(TinyWorld::kNearA, TinyWorld::kNearB,
                                      routed_ab()),
            model_.pair_delivery_time(TinyWorld::kNearA, TinyWorld::kNearB,
                                      direct_ab()));
}

TEST_F(DeliveryModelTest, SingleRegionModesCoincide) {
  const geo::RegionSet only_a = geo::RegionSet::single(TinyWorld::kA);
  const TopicConfig direct{only_a, DeliveryMode::kDirect};
  const TopicConfig routed{only_a, DeliveryMode::kRouted};
  for (ClientId sub :
       {TinyWorld::kNearA2, TinyWorld::kNearB, TinyWorld::kNearC}) {
    EXPECT_DOUBLE_EQ(
        model_.pair_delivery_time(TinyWorld::kNearA, sub, direct),
        model_.pair_delivery_time(TinyWorld::kNearA, sub, routed));
  }
}

TEST_F(DeliveryModelTest, WeightedSamplesCarryMessageCounts) {
  const auto topic = testutil::tiny_topic(/*msg_count=*/10);
  const auto samples = model_.weighted_delivery_times(topic, direct_ab());
  ASSERT_EQ(samples.size(), 3u);  // 1 publisher x 3 subscribers
  for (const auto& s : samples) {
    EXPECT_EQ(s.weight, 10u);
  }
}

TEST_F(DeliveryModelTest, PercentileHandChecked) {
  const auto topic = testutil::tiny_topic(/*msg_count=*/10, 1000, 75.0);
  // Direct {A,B}: expanded deliveries are 10x30, 10x95, 10x115.
  // rank = ceil(0.75 * 30) = 23 -> value 115.
  EXPECT_DOUBLE_EQ(model_.delivery_percentile(topic, direct_ab(), 75.0),
                   115.0);
  // Routed: 10x30, 10x95, 10x105 -> rank 23 -> 105.
  EXPECT_DOUBLE_EQ(model_.delivery_percentile(topic, routed_ab(), 75.0),
                   105.0);
  // At ratio 66%: rank ceil(19.8) = 20 -> second block -> 95 for both.
  EXPECT_DOUBLE_EQ(model_.delivery_percentile(topic, direct_ab(), 66.0), 95.0);
}

TEST_F(DeliveryModelTest, ExactListHasOneEntryPerDelivery) {
  const auto topic = testutil::tiny_topic(/*msg_count=*/7);
  const auto list = model_.exact_delivery_times(topic, direct_ab());
  EXPECT_EQ(list.size(), topic.total_deliveries());
  EXPECT_EQ(list.size(), 21u);  // 7 msgs x 3 subscribers
}

TEST_F(DeliveryModelTest, ZeroCountPublisherContributesNothing) {
  auto topic = testutil::tiny_topic(/*msg_count=*/5);
  topic.publishers.push_back({TinyWorld::kNearB, 0, 0});
  const auto samples = model_.weighted_delivery_times(topic, direct_ab());
  EXPECT_EQ(samples.size(), 3u);  // silent publisher filtered out
}

TEST_F(DeliveryModelTest, SubscriberWeightMultipliesSampleWeight) {
  auto topic = testutil::tiny_topic(/*msg_count=*/4);
  topic.subscribers[0].weight = 5;  // bundled virtual subscriber
  const auto samples = model_.weighted_delivery_times(topic, direct_ab());
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].weight, 20u);  // 4 msgs x weight 5
  EXPECT_EQ(samples[1].weight, 4u);
}

// Property: the weighted percentile and the paper's exact list agree for
// every ratio and both modes.
class ExactVsWeighted : public ::testing::TestWithParam<double> {};

TEST_P(ExactVsWeighted, Agree) {
  TinyWorld world;
  const DeliveryModel model(world.backbone, world.clients);
  auto topic = testutil::tiny_topic(/*msg_count=*/13);
  topic.publishers.push_back({TinyWorld::kNearB, 4, 4000});
  topic.publishers.push_back({TinyWorld::kNearC, 9, 9000});

  const double ratio = GetParam();
  for (const auto& config :
       enumerate_configurations(geo::RegionSet::universe(3))) {
    EXPECT_DOUBLE_EQ(model.delivery_percentile(topic, config, ratio),
                     model.exact_delivery_percentile(topic, config, ratio))
        << config.to_string() << " at ratio " << ratio;
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, ExactVsWeighted,
                         ::testing::Values(5.0, 25.0, 50.0, 75.0, 95.0,
                                           100.0));

}  // namespace
}  // namespace multipub::core
