#include "core/latency_estimator.h"

#include <gtest/gtest.h>

namespace multipub::core {
namespace {

geo::ClientLatencyMap two_by_two() {
  geo::ClientLatencyMap map(2);
  map.add_client(std::vector<Millis>{10, 100});
  map.add_client(std::vector<Millis>{90, 20});
  return map;
}

TEST(LatencyEstimator, StartsFromInitialMap) {
  const LatencyEstimator est(two_by_two());
  EXPECT_DOUBLE_EQ(est.estimate(ClientId{0}, RegionId{0}), 10.0);
  EXPECT_DOUBLE_EQ(est.estimate(ClientId{1}, RegionId{1}), 20.0);
  EXPECT_EQ(est.observations(), 0u);
}

TEST(LatencyEstimator, SingleObservationBlendsWithSmoothing) {
  LatencyEstimator est(two_by_two(), 0.5);
  est.observe(ClientId{0}, RegionId{0}, 30.0);
  EXPECT_DOUBLE_EQ(est.estimate(ClientId{0}, RegionId{0}), 20.0);  // (10+30)/2
  EXPECT_EQ(est.observations(), 1u);
}

TEST(LatencyEstimator, ConvergesToStableSignal) {
  LatencyEstimator est(two_by_two(), 0.3);
  for (int i = 0; i < 60; ++i) est.observe(ClientId{0}, RegionId{0}, 55.0);
  EXPECT_NEAR(est.estimate(ClientId{0}, RegionId{0}), 55.0, 0.01);
}

TEST(LatencyEstimator, SmoothingOneTrustsNewestSample) {
  LatencyEstimator est(two_by_two(), 1.0);
  est.observe(ClientId{1}, RegionId{0}, 42.0);
  EXPECT_DOUBLE_EQ(est.estimate(ClientId{1}, RegionId{0}), 42.0);
}

TEST(LatencyEstimator, SingleNoisySampleMovesEstimateOnlyPartway) {
  LatencyEstimator est(two_by_two(), 0.3);
  est.observe(ClientId{0}, RegionId{0}, 500.0);  // one outlier
  EXPECT_LT(est.estimate(ClientId{0}, RegionId{0}), 200.0);
  EXPECT_GT(est.estimate(ClientId{0}, RegionId{0}), 10.0);
}

TEST(LatencyEstimator, UnreachableCellAdoptsFirstSample) {
  geo::ClientLatencyMap map(2);
  map.add_client(std::vector<Millis>{kUnreachable, 50.0});
  LatencyEstimator est(std::move(map), 0.3);
  est.observe(ClientId{0}, RegionId{0}, 77.0);
  EXPECT_DOUBLE_EQ(est.estimate(ClientId{0}, RegionId{0}), 77.0);
}

TEST(LatencyEstimator, OtherCellsUntouched) {
  LatencyEstimator est(two_by_two(), 0.5);
  est.observe(ClientId{0}, RegionId{0}, 30.0);
  EXPECT_DOUBLE_EQ(est.estimate(ClientId{0}, RegionId{1}), 100.0);
  EXPECT_DOUBLE_EQ(est.estimate(ClientId{1}, RegionId{0}), 90.0);
}

}  // namespace
}  // namespace multipub::core
