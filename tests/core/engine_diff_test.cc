// Differential test: the batched EvaluationEngine must reproduce the seed's
// config-by-config reference path EXACTLY — same chosen configuration, same
// percentile and cost doubles, same feasibility — across randomized worlds
// that deliberately provoke every tie-break (equal latencies, equal tariffs,
// infeasible fallbacks, pruned candidate sets, all three mode policies).
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/evaluation_engine.h"
#include "core/optimizer.h"
#include "geo/latency.h"
#include "geo/region.h"
#include "geo/region_set.h"

namespace multipub::core {
namespace {

struct RandomWorld {
  geo::RegionCatalog catalog;
  geo::InterRegionLatency backbone;
  geo::ClientLatencyMap clients;
  std::vector<ClientId> client_ids;
};

// Latencies snap to multiples of 5 ms and tariffs draw from a small discrete
// menu so exact ties (equal latency, equal cost) occur constantly — the
// regime where an incorrect tie-break order would diverge from the reference.
RandomWorld make_world(Rng& rng, std::size_t n_regions,
                       std::size_t n_clients) {
  RandomWorld world;
  static const double kAlphaMenu[] = {0.02, 0.02, 0.09, 0.16};
  static const double kBetaMenu[] = {0.09, 0.09, 0.14, 0.25};
  std::vector<geo::Region> regions;
  for (std::size_t i = 0; i < n_regions; ++i) {
    geo::Region r;
    r.name = "r" + std::to_string(i);
    r.location = r.name;
    r.inter_region_cost_per_gb = kAlphaMenu[rng.uniform_int(0, 3)];
    r.internet_cost_per_gb = kBetaMenu[rng.uniform_int(0, 3)];
    regions.push_back(r);
  }
  world.catalog = geo::RegionCatalog(std::move(regions));

  world.backbone = geo::InterRegionLatency(n_regions);
  for (std::size_t a = 0; a < n_regions; ++a) {
    for (std::size_t b = a + 1; b < n_regions; ++b) {
      world.backbone.set(RegionId{static_cast<std::int32_t>(a)},
                         RegionId{static_cast<std::int32_t>(b)},
                         5.0 * static_cast<double>(rng.uniform_int(2, 30)));
    }
  }

  world.clients = geo::ClientLatencyMap(n_regions);
  for (std::size_t c = 0; c < n_clients; ++c) {
    std::vector<Millis> row(n_regions);
    for (std::size_t j = 0; j < n_regions; ++j) {
      row[j] = 5.0 * static_cast<double>(rng.uniform_int(1, 40));
    }
    world.client_ids.push_back(world.clients.add_client(row));
  }
  return world;
}

TopicState make_topic(Rng& rng, const RandomWorld& world) {
  TopicState topic;
  topic.topic = TopicId{0};

  static const double kRatios[] = {50.0, 75.0, 90.0, 95.0, 99.0, 100.0};
  topic.constraint.ratio = kRatios[rng.uniform_int(0, 5)];
  // Mix of regimes: mostly-feasible, borderline (forces the cost/percentile
  // tie-breaks among a narrow feasible set), and impossible (fallback path).
  switch (rng.uniform_int(0, 3)) {
    case 0: topic.constraint.max = kUnreachable; break;
    case 1: topic.constraint.max = 5.0 * rng.uniform_int(20, 80); break;
    case 2: topic.constraint.max = 5.0 * rng.uniform_int(6, 30); break;
    default: topic.constraint.max = 1.0; break;  // nothing feasible
  }

  const auto pick_client = [&] {
    return world.client_ids[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(world.client_ids.size()) - 1))];
  };

  const std::int64_t n_pubs = rng.uniform_int(1, 4);
  for (std::int64_t p = 0; p < n_pubs; ++p) {
    PublisherStats pub;
    pub.client = pick_client();
    // Occasional silent publisher: contributes no samples and no bytes.
    pub.msg_count = rng.uniform_int(0, 4) == 0
                        ? 0
                        : static_cast<std::uint64_t>(rng.uniform_int(1, 50));
    pub.total_bytes = pub.msg_count * static_cast<Bytes>(rng.uniform_int(100, 2000));
    topic.publishers.push_back(pub);
  }
  if (topic.total_messages() == 0) topic.publishers[0].msg_count = 7;

  const std::int64_t n_subs = rng.uniform_int(1, 8);
  for (std::int64_t s = 0; s < n_subs; ++s) {
    SubscriberStats sub;
    sub.client = pick_client();
    sub.weight = static_cast<std::uint32_t>(rng.uniform_int(0, 5));
    sub.selectivity = rng.uniform_int(0, 2) == 0 ? 1.0 : rng.uniform(0.1, 1.0);
    topic.subscribers.push_back(sub);
  }
  if (topic.total_subscriber_weight() == 0) topic.subscribers[0].weight = 3;
  return topic;
}

OptimizerOptions make_options(Rng& rng, std::size_t n_regions) {
  OptimizerOptions options;
  switch (rng.uniform_int(0, 3)) {
    case 0: options.mode_policy = ModePolicy::kDirectOnly; break;
    case 1: options.mode_policy = ModePolicy::kRoutedOnly; break;
    default: options.mode_policy = ModePolicy::kBoth; break;
  }
  if (rng.uniform_int(0, 2) == 0) {  // pruned candidate set
    geo::RegionSet candidates;
    for (std::size_t j = 0; j < n_regions; ++j) {
      if (rng.uniform_int(0, 1) == 0) {
        candidates.add(RegionId{static_cast<std::int32_t>(j)});
      }
    }
    if (candidates.empty()) {
      candidates.add(RegionId{static_cast<std::int32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n_regions) - 1))});
    }
    options.candidates = candidates;
  }
  return options;
}

TEST(EngineDiffTest, MatchesReferenceAcrossRandomizedTopics) {
  Rng rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    const auto n_regions = static_cast<std::size_t>(rng.uniform_int(1, 6));
    const auto n_clients = static_cast<std::size_t>(rng.uniform_int(2, 12));
    const RandomWorld world = make_world(rng, n_regions, n_clients);
    const Optimizer optimizer(world.catalog, world.backbone, world.clients);
    const TopicState topic = make_topic(rng, world);
    const OptimizerOptions options = make_options(rng, n_regions);
    SCOPED_TRACE("trial " + std::to_string(trial));

    const OptimizerResult ref = optimizer.optimize_reference(topic, options);
    const OptimizerResult got = optimizer.optimize(topic, options);

    EXPECT_EQ(got.config, ref.config)
        << "engine " << got.config.to_string() << " vs reference "
        << ref.config.to_string();
    // Bit-identical doubles, not approximate: the engine mirrors the
    // reference accumulation orders exactly.
    EXPECT_EQ(got.percentile, ref.percentile);
    EXPECT_EQ(got.cost, ref.cost);
    EXPECT_EQ(got.constraint_met, ref.constraint_met);
    EXPECT_EQ(got.configs_evaluated, ref.configs_evaluated);
  }
}

TEST(EngineDiffTest, EvaluateAllMatchesReferenceRowForRow) {
  Rng rng(424242);
  for (int trial = 0; trial < 40; ++trial) {
    const auto n_regions = static_cast<std::size_t>(rng.uniform_int(1, 5));
    const auto n_clients = static_cast<std::size_t>(rng.uniform_int(2, 10));
    const RandomWorld world = make_world(rng, n_regions, n_clients);
    const Optimizer optimizer(world.catalog, world.backbone, world.clients);
    const TopicState topic = make_topic(rng, world);
    const OptimizerOptions options = make_options(rng, n_regions);
    SCOPED_TRACE("trial " + std::to_string(trial));

    const auto ref = optimizer.evaluate_all_reference(topic, options);
    const auto got = optimizer.evaluate_all(topic, options);

    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      SCOPED_TRACE("row " + std::to_string(i) + " " +
                   ref[i].config.to_string());
      EXPECT_EQ(got[i].config, ref[i].config);
      EXPECT_EQ(got[i].percentile, ref[i].percentile);
      EXPECT_EQ(got[i].cost, ref[i].cost);
      EXPECT_EQ(got[i].feasible, ref[i].feasible);
    }
  }
}

// A reused engine must not leak state between topics: interleave wildly
// different topics through ONE engine instance (the optimize_topics worker
// pattern) and compare against fresh reference runs.
TEST(EngineDiffTest, ReusedEngineCarriesNoStateBetweenTopics) {
  Rng rng(777);
  const RandomWorld world = make_world(rng, 5, 10);
  const Optimizer optimizer(world.catalog, world.backbone, world.clients);
  EvaluationEngine engine(optimizer);
  for (int trial = 0; trial < 60; ++trial) {
    const TopicState topic = make_topic(rng, world);
    const OptimizerOptions options = make_options(rng, 5);
    SCOPED_TRACE("trial " + std::to_string(trial));

    const OptimizerResult ref = optimizer.optimize_reference(topic, options);
    const OptimizerResult got = engine.optimize(topic, options);

    EXPECT_EQ(got.config, ref.config);
    EXPECT_EQ(got.percentile, ref.percentile);
    EXPECT_EQ(got.cost, ref.cost);
    EXPECT_EQ(got.constraint_met, ref.constraint_met);
  }
}

}  // namespace
}  // namespace multipub::core
