#include "core/optimizer.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"
#include "testutil.h"

namespace multipub::core {
namespace {

using testutil::TinyWorld;

class OptimizerTest : public ::testing::Test {
 protected:
  TinyWorld world_;
  Optimizer optimizer_{world_.catalog, world_.backbone, world_.clients};
};

TEST_F(OptimizerTest, EvaluatesAllConfigurations) {
  const auto topic = testutil::tiny_topic(10, 1000, 75.0, 200.0);
  const auto result = optimizer_.optimize(topic);
  EXPECT_EQ(result.configs_evaluated, 11u);  // 2*(2^3-1)-3
}

TEST_F(OptimizerTest, UnconstrainedPicksCheapest) {
  // With max_T = infinity every configuration is feasible; the cheapest is
  // a single cheap region serving everyone: region A (beta $0.09).
  const auto topic = testutil::tiny_topic(10, 1000, 75.0, kUnreachable);
  const auto result = optimizer_.optimize(topic);
  EXPECT_TRUE(result.constraint_met);
  EXPECT_EQ(result.config.regions, geo::RegionSet::single(TinyWorld::kA));
  // 3 subscribers x 10^4 bytes at beta(A).
  EXPECT_DOUBLE_EQ(result.cost, 3 * 10000.0 * per_gb_to_per_byte(0.09));
}

TEST_F(OptimizerTest, TightConstraintForcesMoreRegions) {
  // Single-region percentiles (ratio 75 -> worst pair):
  //   {A}: deliveries 30, 115... compute: subs all to A: nearA2 30,
  //        nearB 10+105=115, nearC 95 -> p75 = 115.
  //   {B}: nearA2 110+100=210... clearly worse.
  // Bound 110 ms: {A} infeasible; {A,B} routed gives 105 -> feasible.
  const auto topic = testutil::tiny_topic(10, 1000, 75.0, 110.0);
  const auto result = optimizer_.optimize(topic);
  EXPECT_TRUE(result.constraint_met);
  EXPECT_LE(result.percentile, 110.0);
  EXPECT_GE(result.config.region_count(), 2);
}

TEST_F(OptimizerTest, ImpossibleConstraintFallsBackToLatencyMinimizing) {
  const auto topic = testutil::tiny_topic(10, 1000, 75.0, 1.0);
  const auto result = optimizer_.optimize(topic);
  EXPECT_FALSE(result.constraint_met);
  // The fallback must be the global percentile minimum over all configs.
  for (const auto& eval : optimizer_.evaluate_all(topic)) {
    EXPECT_LE(result.percentile, eval.percentile);
  }
}

TEST_F(OptimizerTest, OptimalityInvariant) {
  // The chosen config is feasible and no feasible config is cheaper
  // (with ties resolved by percentile then size).
  for (const Millis max_t : {90.0, 100.0, 110.0, 120.0, 150.0, 200.0}) {
    const auto topic = testutil::tiny_topic(10, 1000, 75.0, max_t);
    const auto result = optimizer_.optimize(topic);
    const auto evals = optimizer_.evaluate_all(topic);
    bool any_feasible = false;
    for (const auto& eval : evals) {
      if (!eval.feasible) continue;
      any_feasible = true;
      EXPECT_LE(result.cost, eval.cost + 1e-15)
          << "max_t=" << max_t << ": cheaper feasible config "
          << eval.config.to_string();
    }
    EXPECT_EQ(result.constraint_met, any_feasible);
  }
}

TEST_F(OptimizerTest, ModePolicyRestrictionsAreRespected) {
  const auto topic = testutil::tiny_topic(10, 1000, 75.0, 105.0);

  OptimizerOptions direct_only;
  direct_only.mode_policy = ModePolicy::kDirectOnly;
  for (const auto& eval : optimizer_.evaluate_all(topic, direct_only)) {
    EXPECT_EQ(eval.config.mode, DeliveryMode::kDirect);
  }

  OptimizerOptions routed_only;
  routed_only.mode_policy = ModePolicy::kRoutedOnly;
  for (const auto& eval : optimizer_.evaluate_all(topic, routed_only)) {
    if (eval.config.region_count() > 1) {
      EXPECT_EQ(eval.config.mode, DeliveryMode::kRouted);
    }
  }
}

TEST_F(OptimizerTest, RoutedReachesLowerBoundThanDirectHere) {
  // In TinyWorld the backbone is faster than client paths, so the minimum
  // achievable percentile under routed-only is lower than direct-only
  // (the Experiment 2 phenomenon).
  const auto topic = testutil::tiny_topic(10, 1000, 75.0, 1.0);  // infeasible

  OptimizerOptions direct_only;
  direct_only.mode_policy = ModePolicy::kDirectOnly;
  OptimizerOptions routed_only;
  routed_only.mode_policy = ModePolicy::kRoutedOnly;

  const auto best_direct = optimizer_.optimize(topic, direct_only);
  const auto best_routed = optimizer_.optimize(topic, routed_only);
  EXPECT_LT(best_routed.percentile, best_direct.percentile);
}

TEST_F(OptimizerTest, CandidateRestrictionShrinksSearch) {
  const auto topic = testutil::tiny_topic(10, 1000, 75.0, 200.0);
  OptimizerOptions options;
  options.candidates = geo::RegionSet::single(TinyWorld::kB);
  const auto result = optimizer_.optimize(topic, options);
  EXPECT_EQ(result.configs_evaluated, 1u);
  EXPECT_EQ(result.config.regions, geo::RegionSet::single(TinyWorld::kB));
}

TEST_F(OptimizerTest, ExactStrategyAgreesWithWeighted) {
  const auto topic = testutil::tiny_topic(17, 512, 75.0, 120.0);
  OptimizerOptions weighted;
  OptimizerOptions exact;
  exact.strategy = EvaluationStrategy::kExactList;
  const auto a = optimizer_.optimize(topic, weighted);
  const auto b = optimizer_.optimize(topic, exact);
  EXPECT_EQ(a.config, b.config);
  EXPECT_DOUBLE_EQ(a.percentile, b.percentile);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST_F(OptimizerTest, CostDecreasesMonotonicallyWithLooserBounds) {
  // Core promise of the paper: relaxing max_T can only reduce (or keep) the
  // optimal cost while the constraint stays satisfiable.
  double previous_cost = std::numeric_limits<double>::infinity();
  for (Millis max_t = 95.0; max_t <= 200.0; max_t += 5.0) {
    const auto topic = testutil::tiny_topic(10, 1000, 75.0, max_t);
    const auto result = optimizer_.optimize(topic);
    if (result.constraint_met) {
      EXPECT_LE(result.cost, previous_cost + 1e-15) << "max_t=" << max_t;
      previous_cost = result.cost;
    }
  }
  EXPECT_LT(previous_cost, std::numeric_limits<double>::infinity());
}

TEST(OptimizerOrdering, BetterPrefersFeasibleThenCostThenLatencyThenSize) {
  ConfigEvaluation feasible_cheap;
  feasible_cheap.feasible = true;
  feasible_cheap.cost = 1.0;
  feasible_cheap.percentile = 100.0;
  feasible_cheap.config.regions = geo::RegionSet::universe(3);

  ConfigEvaluation feasible_pricey = feasible_cheap;
  feasible_pricey.cost = 2.0;

  ConfigEvaluation infeasible_fast;
  infeasible_fast.feasible = false;
  infeasible_fast.cost = 0.1;
  infeasible_fast.percentile = 10.0;

  EXPECT_TRUE(Optimizer::better(feasible_cheap, feasible_pricey));
  EXPECT_FALSE(Optimizer::better(feasible_pricey, feasible_cheap));
  EXPECT_TRUE(Optimizer::better(feasible_pricey, infeasible_fast));

  // Equal cost: fewer regions wins (reproduces Fig. 3a/3c; see
  // Optimizer::better).
  ConfigEvaluation smaller = feasible_cheap;
  smaller.config.regions = geo::RegionSet::single(RegionId{0});
  smaller.percentile = 120.0;  // even with a worse percentile
  EXPECT_TRUE(Optimizer::better(smaller, feasible_cheap));

  // Equal cost and region count: lower percentile wins.
  ConfigEvaluation faster = feasible_cheap;
  faster.percentile = 50.0;
  EXPECT_TRUE(Optimizer::better(faster, feasible_cheap));

  // Among infeasible: percentile wins irrespective of cost.
  ConfigEvaluation infeasible_slow_cheap;
  infeasible_slow_cheap.feasible = false;
  infeasible_slow_cheap.cost = 0.0001;
  infeasible_slow_cheap.percentile = 500.0;
  EXPECT_TRUE(Optimizer::better(infeasible_fast, infeasible_slow_cheap));
}

// Property sweep over random worlds: the optimizer's answer must always be
// the best under its own ordering (exhaustive cross-check).
class RandomWorldOptimality : public ::testing::TestWithParam<int> {};

TEST_P(RandomWorldOptimality, SelectionIsExhaustivelyOptimal) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n_regions = 3;

  geo::RegionCatalog catalog({
      {RegionId{}, "r0", "r0", rng.uniform(0.01, 0.2), rng.uniform(0.05, 0.3)},
      {RegionId{}, "r1", "r1", rng.uniform(0.01, 0.2), rng.uniform(0.05, 0.3)},
      {RegionId{}, "r2", "r2", rng.uniform(0.01, 0.2), rng.uniform(0.05, 0.3)},
  });
  geo::InterRegionLatency backbone(n_regions);
  backbone.set(RegionId{0}, RegionId{1}, rng.uniform(10, 150));
  backbone.set(RegionId{0}, RegionId{2}, rng.uniform(10, 150));
  backbone.set(RegionId{1}, RegionId{2}, rng.uniform(10, 150));

  geo::ClientLatencyMap clients(n_regions);
  TopicState topic;
  topic.topic = TopicId{0};
  topic.constraint = {rng.uniform(50, 100), rng.uniform(30, 250)};
  for (int i = 0; i < 5; ++i) {
    std::vector<Millis> row{rng.uniform(5, 200), rng.uniform(5, 200),
                            rng.uniform(5, 200)};
    const ClientId id = clients.add_client(row);
    if (i < 2) {
      topic.publishers.push_back(
          {id, static_cast<std::uint64_t>(rng.uniform_int(1, 20)), 0});
      topic.publishers.back().total_bytes =
          topic.publishers.back().msg_count * 1024;
    } else {
      topic.subscribers.push_back({id, 1});
    }
  }

  const Optimizer optimizer(catalog, backbone, clients);
  const auto result = optimizer.optimize(topic);
  const auto evals = optimizer.evaluate_all(topic);
  for (const auto& eval : evals) {
    ConfigEvaluation chosen;
    chosen.config = result.config;
    chosen.percentile = result.percentile;
    chosen.cost = result.cost;
    chosen.feasible = result.constraint_met;
    EXPECT_FALSE(Optimizer::better(eval, chosen))
        << "seed " << GetParam() << ": " << eval.config.to_string()
        << " beats chosen " << result.config.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorldOptimality, ::testing::Range(0, 20));

}  // namespace
}  // namespace multipub::core
