// Property sweeps on the EC2 world with randomized workloads: the
// optimizer's structural guarantees must hold regardless of where clients
// sit and what they send.
#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"
#include "core/heuristic.h"
#include "core/optimizer.h"
#include "geo/king_synth.h"

namespace multipub::core {
namespace {

struct RandomWorkload {
  geo::ClientPopulation population;
  TopicState topic;
};

RandomWorkload random_workload(std::uint64_t seed,
                               const geo::RegionCatalog& catalog,
                               const geo::InterRegionLatency& backbone) {
  Rng rng(seed);
  RandomWorkload out;
  out.population.latencies = geo::ClientLatencyMap(catalog.size());

  const int n_pubs = static_cast<int>(rng.uniform_int(1, 8));
  const int n_subs = static_cast<int>(rng.uniform_int(1, 12));
  out.topic.topic = TopicId{0};
  out.topic.constraint = {rng.uniform(50.0, 100.0), rng.uniform(40.0, 300.0)};

  for (int i = 0; i < n_pubs + n_subs; ++i) {
    const RegionId home{static_cast<RegionId::underlying_type>(
        rng.uniform_int(0, static_cast<long>(catalog.size()) - 1))};
    auto local = geo::synthesize_local_population(catalog, backbone, home, 1,
                                                  {}, rng);
    const ClientId id = out.population.latencies.add_client(
        local.latencies.row(ClientId{0}));
    out.population.home_region.push_back(home);
    if (i < n_pubs) {
      const auto msgs = static_cast<std::uint64_t>(rng.uniform_int(1, 50));
      out.topic.publishers.push_back({id, msgs, msgs * 1024});
    } else {
      out.topic.subscribers.push_back({id, 1});
    }
  }
  return out;
}

class Ec2Property : public ::testing::TestWithParam<int> {
 protected:
  geo::RegionCatalog catalog_ = geo::RegionCatalog::ec2_2016();
  geo::InterRegionLatency backbone_ = geo::InterRegionLatency::ec2_2016();
};

TEST_P(Ec2Property, FeasibleAnswersSatisfyTheirConstraint) {
  const auto workload = random_workload(
      static_cast<std::uint64_t>(GetParam()), catalog_, backbone_);
  const Optimizer optimizer(catalog_, backbone_,
                            workload.population.latencies);
  const auto result = optimizer.optimize(workload.topic);
  if (result.constraint_met) {
    EXPECT_LE(result.percentile, workload.topic.constraint.max);
  }
  EXPECT_FALSE(result.config.regions.empty());
}

TEST_P(Ec2Property, RelaxingTheBoundNeverRaisesCost) {
  auto workload = random_workload(static_cast<std::uint64_t>(GetParam()) + 100,
                                  catalog_, backbone_);
  const Optimizer optimizer(catalog_, backbone_,
                            workload.population.latencies);
  double previous = std::numeric_limits<double>::infinity();
  for (Millis max_t = 60.0; max_t <= 400.0; max_t += 20.0) {
    workload.topic.constraint.max = max_t;
    const auto result = optimizer.optimize(workload.topic);
    if (!result.constraint_met) continue;
    EXPECT_LE(result.cost, previous + 1e-15) << "max_t=" << max_t;
    previous = result.cost;
  }
}

TEST_P(Ec2Property, FallbackIsTheGlobalLatencyMinimum) {
  auto workload = random_workload(static_cast<std::uint64_t>(GetParam()) + 200,
                                  catalog_, backbone_);
  workload.topic.constraint.max = 0.5;  // impossible
  const Optimizer optimizer(catalog_, backbone_,
                            workload.population.latencies);
  const auto result = optimizer.optimize(workload.topic);
  EXPECT_FALSE(result.constraint_met);
  for (const auto& eval : optimizer.evaluate_all(workload.topic)) {
    EXPECT_LE(result.percentile, eval.percentile + 1e-12);
  }
}

TEST_P(Ec2Property, HeuristicFeasibilityMatchesExhaustive) {
  const auto workload = random_workload(
      static_cast<std::uint64_t>(GetParam()) + 300, catalog_, backbone_);
  const Optimizer exact(catalog_, backbone_, workload.population.latencies);
  const HeuristicOptimizer heuristic(catalog_, backbone_,
                                     workload.population.latencies);
  const auto e = exact.optimize(workload.topic);
  const auto h = heuristic.optimize(workload.topic);
  EXPECT_EQ(h.constraint_met, e.constraint_met);
  if (e.constraint_met) {
    // Dual-direction local search: small bounded gap.
    EXPECT_LE(h.cost, e.cost * 1.15 + 1e-12);
  }
}

TEST_P(Ec2Property, ExactAndWeightedEvaluatorsAgreeOnRandomWorkloads) {
  const auto workload = random_workload(
      static_cast<std::uint64_t>(GetParam()) + 500, catalog_, backbone_);
  const Optimizer optimizer(catalog_, backbone_,
                            workload.population.latencies);
  // Check a scattering of configurations, both modes.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 501);
  const DeliveryModel model(backbone_, workload.population.latencies);
  for (int trial = 0; trial < 10; ++trial) {
    geo::RegionSet regions(
        static_cast<std::uint64_t>(rng.uniform_int(1, (1 << 10) - 1)));
    const TopicConfig config{
        regions, trial % 2 == 0 ? DeliveryMode::kDirect
                                : DeliveryMode::kRouted};
    const double ratio = workload.topic.constraint.ratio;
    EXPECT_DOUBLE_EQ(
        model.delivery_percentile(workload.topic, config, ratio),
        model.exact_delivery_percentile(workload.topic, config, ratio))
        << config.to_string();
  }
}

TEST_P(Ec2Property, AddingASubscriberNeverLowersDirectCost) {
  auto workload = random_workload(static_cast<std::uint64_t>(GetParam()) + 400,
                                  catalog_, backbone_);
  const Optimizer optimizer(catalog_, backbone_,
                            workload.population.latencies);
  const TopicConfig config{geo::RegionSet::universe(10),
                           DeliveryMode::kDirect};
  const auto before = optimizer.evaluate(workload.topic, config);

  // Clone an existing subscriber (same position, new identity-by-weight).
  workload.topic.subscribers.front().weight += 1;
  const auto after = optimizer.evaluate(workload.topic, config);
  EXPECT_GE(after.cost, before.cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Ec2Property, ::testing::Range(0, 15));

}  // namespace
}  // namespace multipub::core
