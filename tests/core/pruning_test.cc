#include "core/pruning.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/optimizer.h"
#include "geo/king_synth.h"
#include "testutil.h"

namespace multipub::core {
namespace {

using testutil::TinyWorld;

TEST(Pruning, KeepsEveryClientsClosestRegion) {
  TinyWorld world;
  const auto topic = testutil::tiny_topic();
  const auto pruned =
      prune_candidates(topic, world.clients, world.catalog, {.keep_closest = 1});
  // Closest regions: publisher nearA -> A; subs nearA2 -> A, nearB -> B,
  // nearC -> C. Plus cheapest region A.
  EXPECT_TRUE(pruned.contains(TinyWorld::kA));
  EXPECT_TRUE(pruned.contains(TinyWorld::kB));
  EXPECT_TRUE(pruned.contains(TinyWorld::kC));
}

TEST(Pruning, AlwaysKeepsCheapestRegion) {
  TinyWorld world;
  // Topic whose clients are all near B and C — cheapest region A must
  // survive anyway so the cheap fallback stays reachable.
  TopicState topic;
  topic.topic = TopicId{0};
  topic.constraint = {75.0, kUnreachable};
  topic.publishers = {{TinyWorld::kNearB, 5, 5000}};
  topic.subscribers = unit_subscribers({TinyWorld::kNearC});
  const auto pruned =
      prune_candidates(topic, world.clients, world.catalog, {.keep_closest = 1});
  EXPECT_TRUE(pruned.contains(TinyWorld::kA));
}

TEST(Pruning, DropsRegionsNobodyIsCloseTo) {
  // Ten EC2 regions, but all clients homed at Tokyo: keep_closest=2 should
  // leave far fewer than 10 candidates.
  const auto catalog = geo::RegionCatalog::ec2_2016();
  const auto backbone = geo::InterRegionLatency::ec2_2016();
  Rng rng(7);
  const auto pop = geo::synthesize_local_population(
      catalog, backbone, catalog.find("ap-northeast-1"), 30, {}, rng);

  TopicState topic;
  topic.topic = TopicId{0};
  topic.constraint = {95.0, 100.0};
  std::vector<ClientId> pubs, subs;
  for (std::size_t i = 0; i < 15; ++i) {
    pubs.emplace_back(static_cast<ClientId::underlying_type>(i));
    subs.emplace_back(static_cast<ClientId::underlying_type>(15 + i));
  }
  topic.publishers = uniform_publishers(pubs, 10, 1024);
  topic.subscribers = unit_subscribers(subs);

  const auto pruned =
      prune_candidates(topic, pop.latencies, catalog, {.keep_closest = 2});
  EXPECT_LT(pruned.size(), 6);
  EXPECT_GE(pruned.size(), 2);
  EXPECT_TRUE(pruned.contains(catalog.find("ap-northeast-1")));
}

TEST(Pruning, PrunedSearchAgreesWithFullSearchWhenCandidatesSuffice) {
  TinyWorld world;
  const Optimizer optimizer(world.catalog, world.backbone, world.clients);
  const auto topic = testutil::tiny_topic(10, 1000, 75.0, 110.0);

  const auto pruned =
      prune_candidates(topic, world.clients, world.catalog, {.keep_closest = 2});
  OptimizerOptions restricted;
  restricted.candidates = pruned;

  const auto full = optimizer.optimize(topic);
  const auto fast = optimizer.optimize(topic, restricted);
  // In TinyWorld, keep_closest=2 keeps everything the optimum needs.
  EXPECT_EQ(full.config, fast.config);
  EXPECT_LE(fast.configs_evaluated, full.configs_evaluated);
}

TEST(Pruning, KeepClosestBoundedByRegionCount) {
  TinyWorld world;
  const auto topic = testutil::tiny_topic();
  const auto pruned = prune_candidates(topic, world.clients, world.catalog,
                                       {.keep_closest = 99});
  EXPECT_EQ(pruned.size(), 3);  // cannot exceed the universe
}

}  // namespace
}  // namespace multipub::core
