#include "core/bundling.h"

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "testutil.h"

namespace multipub::core {
namespace {

using testutil::TinyWorld;

TEST(Bundling, IdenticalClientsCollapse) {
  geo::ClientLatencyMap clients(2);
  std::vector<ClientId> subs;
  for (int i = 0; i < 5; ++i) {
    subs.push_back(clients.add_client(std::vector<Millis>{10, 50}));
  }
  TopicState topic;
  topic.topic = TopicId{0};
  topic.constraint = {75.0, 100.0};
  topic.publishers = {{clients.add_client(std::vector<Millis>{12, 48}), 3, 3000}};
  topic.subscribers = unit_subscribers(subs);

  const auto bundled = bundle_clients(topic, clients, {.epsilon_ms = 0.5});
  EXPECT_EQ(bundled.topic.subscribers.size(), 1u);
  EXPECT_EQ(bundled.topic.subscribers[0].weight, 5u);
  EXPECT_EQ(bundled.subscriber_members[0].size(), 5u);
  EXPECT_EQ(bundled.topic.publishers.size(), 1u);
}

TEST(Bundling, DistantClientsStaySeparate) {
  TinyWorld world;
  const auto topic = testutil::tiny_topic();
  const auto bundled = bundle_clients(topic, world.clients, {.epsilon_ms = 5.0});
  // nearA2, nearB, nearC rows differ by far more than 5 ms.
  EXPECT_EQ(bundled.topic.subscribers.size(), 3u);
}

TEST(Bundling, PreservesTotals) {
  TinyWorld world;
  auto topic = testutil::tiny_topic(10, 1000);
  topic.publishers.push_back({TinyWorld::kNearA2, 7, 7 * 500});
  const auto bundled = bundle_clients(topic, world.clients, {.epsilon_ms = 20.0});
  EXPECT_EQ(bundled.topic.total_messages(), topic.total_messages());
  EXPECT_EQ(bundled.topic.total_published_bytes(),
            topic.total_published_bytes());
  EXPECT_EQ(bundled.topic.total_subscriber_weight(),
            topic.total_subscriber_weight());
}

TEST(Bundling, NearbyPublishersMergeTraffic) {
  // nearA (10,100,80) and nearA2 (20,110,90) are within eps=15 of each other.
  TinyWorld world;
  TopicState topic;
  topic.topic = TopicId{0};
  topic.constraint = {75.0, 150.0};
  topic.publishers = {{TinyWorld::kNearA, 10, 10000},
                      {TinyWorld::kNearA2, 5, 2500}};
  topic.subscribers = unit_subscribers({TinyWorld::kNearB});

  const auto bundled = bundle_clients(topic, world.clients, {.epsilon_ms = 15.0});
  ASSERT_EQ(bundled.topic.publishers.size(), 1u);
  EXPECT_EQ(bundled.topic.publishers[0].msg_count, 15u);
  EXPECT_EQ(bundled.topic.publishers[0].total_bytes, 12500u);
  EXPECT_EQ(bundled.publisher_members[0].size(), 2u);
}

TEST(Bundling, ZeroEpsilonIsIdentityPartition) {
  TinyWorld world;
  const auto topic = testutil::tiny_topic();
  const auto bundled = bundle_clients(topic, world.clients, {.epsilon_ms = 0.0});
  EXPECT_EQ(bundled.topic.subscribers.size(), topic.subscribers.size());
  EXPECT_EQ(bundled.topic.publishers.size(), topic.publishers.size());
}

TEST(Bundling, BundledAnswerStaysCloseToExact) {
  // Optimizing the bundled problem must give the same configuration here:
  // the merged clients share closest regions at this epsilon.
  TinyWorld world;
  auto topic = testutil::tiny_topic(10, 1000, 75.0, 110.0);
  topic.publishers.push_back({TinyWorld::kNearA2, 10, 10000});

  const Optimizer exact_opt(world.catalog, world.backbone, world.clients);
  const auto exact = exact_opt.optimize(topic);

  const auto bundled = bundle_clients(topic, world.clients, {.epsilon_ms = 15.0});
  const Optimizer bundled_opt(world.catalog, world.backbone,
                              bundled.latencies);
  const auto approx = bundled_opt.optimize(bundled.topic);

  EXPECT_EQ(exact.config, approx.config);
  // Percentile drift bounded by epsilon-ish.
  EXPECT_NEAR(exact.percentile, approx.percentile, 2 * 15.0);
}

TEST(Bundling, RolesAreNotMixed) {
  // A client that both publishes and subscribes is represented separately
  // per role; bundles never span roles.
  geo::ClientLatencyMap clients(2);
  const ClientId c = clients.add_client(std::vector<Millis>{10, 50});
  TopicState topic;
  topic.topic = TopicId{0};
  topic.constraint = {75.0, 100.0};
  topic.publishers = {{c, 3, 3000}};
  topic.subscribers = unit_subscribers({c});
  const auto bundled = bundle_clients(topic, clients, {.epsilon_ms = 10.0});
  EXPECT_EQ(bundled.topic.publishers.size(), 1u);
  EXPECT_EQ(bundled.topic.subscribers.size(), 1u);
  EXPECT_NE(bundled.topic.publishers[0].client,
            bundled.topic.subscribers[0].client);
}

}  // namespace
}  // namespace multipub::core
