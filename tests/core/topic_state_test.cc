#include "core/topic_state.h"

#include <gtest/gtest.h>

#include "core/constraint.h"

namespace multipub::core {
namespace {

TEST(TopicState, TotalsOverMixedPublishers) {
  TopicState topic;
  topic.publishers = {{ClientId{0}, 10, 10240},
                      {ClientId{1}, 0, 0},
                      {ClientId{2}, 5, 2560}};
  topic.subscribers = {{ClientId{3}, 1, 1.0}, {ClientId{4}, 4, 1.0}};

  EXPECT_EQ(topic.total_messages(), 15u);
  EXPECT_EQ(topic.total_published_bytes(), 12800u);
  EXPECT_EQ(topic.total_subscriber_weight(), 5u);
  // |D_C| = messages x subscriber weight (paper §IV-A).
  EXPECT_EQ(topic.total_deliveries(), 75u);
}

TEST(TopicState, EmptyTopicHasZeroTotals) {
  const TopicState topic;
  EXPECT_EQ(topic.total_messages(), 0u);
  EXPECT_EQ(topic.total_published_bytes(), 0u);
  EXPECT_EQ(topic.total_subscriber_weight(), 0u);
  EXPECT_EQ(topic.total_deliveries(), 0u);
}

TEST(TopicState, UniformPublishersBuilder) {
  const auto pubs =
      uniform_publishers({ClientId{7}, ClientId{9}}, 12, 512);
  ASSERT_EQ(pubs.size(), 2u);
  EXPECT_EQ(pubs[0].client, ClientId{7});
  EXPECT_EQ(pubs[0].msg_count, 12u);
  EXPECT_EQ(pubs[0].total_bytes, 12u * 512u);
  EXPECT_EQ(pubs[1].client, ClientId{9});
}

TEST(TopicState, UnitSubscribersBuilder) {
  const auto subs = unit_subscribers({ClientId{1}, ClientId{2}});
  ASSERT_EQ(subs.size(), 2u);
  for (const auto& s : subs) {
    EXPECT_EQ(s.weight, 1u);
    EXPECT_DOUBLE_EQ(s.selectivity, 1.0);
  }
}

TEST(DeliveryConstraint, SatisfiedBy) {
  const DeliveryConstraint constraint{95.0, 200.0};
  EXPECT_TRUE(constraint.satisfied_by(199.9));
  EXPECT_TRUE(constraint.satisfied_by(200.0));
  EXPECT_FALSE(constraint.satisfied_by(200.1));
}

TEST(DeliveryConstraint, DefaultIsUnconstrained) {
  const DeliveryConstraint constraint;
  EXPECT_TRUE(constraint.satisfied_by(1e12));
  EXPECT_DOUBLE_EQ(constraint.ratio, 100.0);
}

}  // namespace
}  // namespace multipub::core
