#include "core/config.h"

#include <gtest/gtest.h>

#include <set>

namespace multipub::core {
namespace {

std::size_t count_with_mode(const std::vector<TopicConfig>& configs,
                            DeliveryMode mode) {
  std::size_t n = 0;
  for (const auto& c : configs) {
    if (c.mode == mode) ++n;
  }
  return n;
}

class EnumerationCount : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EnumerationCount, MatchesPaperFormula) {
  // 2 * (2^N - 1) - N configurations (paper §IV).
  const std::size_t n = GetParam();
  const auto configs =
      enumerate_configurations(geo::RegionSet::universe(n), ModePolicy::kBoth);
  const std::size_t expected = 2 * ((std::size_t{1} << n) - 1) - n;
  EXPECT_EQ(configs.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EnumerationCount,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 10));

TEST(EnumerateConfigurations, SingletonsAppearOnceAsDirect) {
  const auto configs =
      enumerate_configurations(geo::RegionSet::universe(3), ModePolicy::kBoth);
  std::size_t singletons = 0;
  for (const auto& c : configs) {
    if (c.region_count() == 1) {
      ++singletons;
      EXPECT_EQ(c.mode, DeliveryMode::kDirect);
    }
  }
  EXPECT_EQ(singletons, 3u);
}

TEST(EnumerateConfigurations, MultiRegionSubsetsAppearInBothModes) {
  const auto configs =
      enumerate_configurations(geo::RegionSet::universe(3), ModePolicy::kBoth);
  // 4 subsets of size >= 2 (three pairs + the triple), each twice.
  EXPECT_EQ(count_with_mode(configs, DeliveryMode::kRouted), 4u);
  EXPECT_EQ(count_with_mode(configs, DeliveryMode::kDirect), 3u + 4u);
}

TEST(EnumerateConfigurations, DirectOnlyPolicy) {
  const auto configs = enumerate_configurations(geo::RegionSet::universe(4),
                                                ModePolicy::kDirectOnly);
  EXPECT_EQ(count_with_mode(configs, DeliveryMode::kRouted), 0u);
  EXPECT_EQ(configs.size(), 15u);  // 2^4 - 1 subsets, one config each
}

TEST(EnumerateConfigurations, RoutedOnlyPolicyStillIncludesSingletons) {
  const auto configs = enumerate_configurations(geo::RegionSet::universe(3),
                                                ModePolicy::kRoutedOnly);
  // Singletons are mode-less (canonical direct); multis routed.
  std::size_t singles = 0, multis = 0;
  for (const auto& c : configs) {
    if (c.region_count() == 1) {
      ++singles;
      EXPECT_EQ(c.mode, DeliveryMode::kDirect);
    } else {
      ++multis;
      EXPECT_EQ(c.mode, DeliveryMode::kRouted);
    }
  }
  EXPECT_EQ(singles, 3u);
  EXPECT_EQ(multis, 4u);
}

TEST(EnumerateConfigurations, RestrictedCandidateSet) {
  geo::RegionSet candidates;
  candidates.add(RegionId{2});
  candidates.add(RegionId{7});
  const auto configs = enumerate_configurations(candidates, ModePolicy::kBoth);
  // Subsets: {2}, {7}, {2,7} -> 1 + 1 + 2 modes = 4 configs.
  EXPECT_EQ(configs.size(), 4u);
  for (const auto& c : configs) {
    for (RegionId r : c.regions.to_vector()) {
      EXPECT_TRUE(r == RegionId{2} || r == RegionId{7});
    }
  }
}

TEST(EnumerateConfigurations, NoDuplicates) {
  const auto configs =
      enumerate_configurations(geo::RegionSet::universe(5), ModePolicy::kBoth);
  std::set<std::pair<std::uint64_t, int>> seen;
  for (const auto& c : configs) {
    EXPECT_TRUE(
        seen.insert({c.regions.mask(), static_cast<int>(c.mode)}).second)
        << "duplicate " << c.to_string();
  }
}

TEST(TopicConfig, ToStringIsReadable) {
  TopicConfig c{geo::RegionSet::single(RegionId{0}), DeliveryMode::kDirect};
  EXPECT_EQ(c.to_string(), "{R1}/direct");
  c.regions.add(RegionId{4});
  c.mode = DeliveryMode::kRouted;
  EXPECT_EQ(c.to_string(), "{R1,R5}/routed");
}

}  // namespace
}  // namespace multipub::core
