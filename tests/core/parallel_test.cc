#include "core/parallel.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace multipub::core {
namespace {

using testutil::TinyWorld;

class ParallelTest : public ::testing::Test {
 protected:
  TinyWorld world_;
  Optimizer optimizer_{world_.catalog, world_.backbone, world_.clients};

  std::vector<TopicState> make_topics(std::size_t n) {
    std::vector<TopicState> topics;
    for (std::size_t i = 0; i < n; ++i) {
      auto topic = testutil::tiny_topic(
          10 + i, 1000, 75.0, 90.0 + 10.0 * static_cast<double>(i % 5));
      topic.topic = TopicId{static_cast<TopicId::underlying_type>(i)};
      topics.push_back(std::move(topic));
    }
    return topics;
  }
};

TEST_F(ParallelTest, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(optimize_topics(optimizer_, {}).empty());
}

TEST_F(ParallelTest, MatchesSequentialResults) {
  const auto topics = make_topics(12);
  const auto sequential = optimize_topics(optimizer_, topics, {}, 1);
  const auto parallel = optimize_topics(optimizer_, topics, {}, 4);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < topics.size(); ++i) {
    EXPECT_EQ(parallel[i].config, sequential[i].config) << "topic " << i;
    EXPECT_DOUBLE_EQ(parallel[i].cost, sequential[i].cost);
    EXPECT_DOUBLE_EQ(parallel[i].percentile, sequential[i].percentile);
  }
}

TEST_F(ParallelTest, ResultsInInputOrder) {
  const auto topics = make_topics(8);
  const auto results = optimize_topics(optimizer_, topics, {}, 3);
  for (std::size_t i = 0; i < topics.size(); ++i) {
    // Each topic's answer must equal its own direct optimization.
    const auto direct = optimizer_.optimize(topics[i]);
    EXPECT_EQ(results[i].config, direct.config) << "topic " << i;
  }
}

TEST_F(ParallelTest, MoreThreadsThanTopicsIsFine) {
  const auto topics = make_topics(2);
  const auto results = optimize_topics(optimizer_, topics, {}, 16);
  EXPECT_EQ(results.size(), 2u);
}

TEST_F(ParallelTest, DefaultThreadCountWorks) {
  const auto topics = make_topics(5);
  const auto results = optimize_topics(optimizer_, topics, {}, 0);
  EXPECT_EQ(results.size(), 5u);
}

TEST_F(ParallelTest, ThreadCountNeverChangesResults) {
  // Workers own per-thread evaluation engines; which worker picks up which
  // topic is a race, so every field must be bit-identical (EXPECT_EQ, not
  // DOUBLE_EQ) no matter how the topics were distributed.
  const auto topics = make_topics(23);
  const auto baseline = optimize_topics(optimizer_, topics, {}, 1);
  for (unsigned threads : {2u, 3u, 5u, 8u, 16u}) {
    const auto results = optimize_topics(optimizer_, topics, {}, threads);
    ASSERT_EQ(results.size(), baseline.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].config, baseline[i].config)
          << "topic " << i << " threads " << threads;
      EXPECT_EQ(results[i].percentile, baseline[i].percentile);
      EXPECT_EQ(results[i].cost, baseline[i].cost);
      EXPECT_EQ(results[i].constraint_met, baseline[i].constraint_met);
      EXPECT_EQ(results[i].configs_evaluated, baseline[i].configs_evaluated);
    }
  }
}

TEST_F(ParallelTest, OptionsAreAppliedToEveryTopic) {
  const auto topics = make_topics(6);
  OptimizerOptions routed_only;
  routed_only.mode_policy = ModePolicy::kRoutedOnly;
  const auto results = optimize_topics(optimizer_, topics, routed_only, 3);
  for (const auto& r : results) {
    if (r.config.region_count() > 1) {
      EXPECT_EQ(r.config.mode, DeliveryMode::kRouted);
    }
  }
}

}  // namespace
}  // namespace multipub::core
