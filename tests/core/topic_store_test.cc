#include "core/topic_store.h"

#include <gtest/gtest.h>

namespace multipub::core {
namespace {

constexpr TopicId kTopic{0};
constexpr RegionId kEast{0};
constexpr RegionId kWest{1};
constexpr ClientId kPub{10};
constexpr ClientId kPub2{11};
constexpr ClientId kSub{20};
constexpr ClientId kSub2{21};

TEST(TopicStore, FirstReportMarksTopicNew) {
  TopicStore store;
  store.apply_report(kEast, kTopic, {{kPub, 10, 1000}}, {kSub});
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.dirty(kTopic));
  EXPECT_NE(store.dirty_reasons(kTopic) & reason_bit(DirtyReason::kNew), 0u);

  const TopicState* state = store.state(kTopic);
  ASSERT_NE(state, nullptr);
  ASSERT_EQ(state->publishers.size(), 1u);
  EXPECT_EQ(state->publishers[0].msg_count, 10u);
  ASSERT_EQ(state->subscribers.size(), 1u);
  EXPECT_EQ(state->subscribers[0].client, kSub);
}

TEST(TopicStore, IdenticalReportStaysClean) {
  TopicStore store;
  store.apply_report(kEast, kTopic, {{kPub, 10, 1000}}, {kSub});
  store.clear_dirty();
  store.apply_report(kEast, kTopic, {{kPub, 10, 1000}}, {kSub});
  EXPECT_FALSE(store.dirty(kTopic));
  EXPECT_EQ(store.dirty_count(), 0u);
}

TEST(TopicStore, TrafficChangeDirtiesWithTrafficReason) {
  TopicStore store;
  store.apply_report(kEast, kTopic, {{kPub, 10, 1000}}, {kSub});
  store.clear_dirty();
  store.apply_report(kEast, kTopic, {{kPub, 25, 2500}}, {kSub});
  EXPECT_NE(store.dirty_reasons(kTopic) & reason_bit(DirtyReason::kTraffic),
            0u);
  EXPECT_EQ(store.state(kTopic)->publishers[0].msg_count, 25u);
}

TEST(TopicStore, ThresholdRejectsSmallDriftAndKeepsStoredStats) {
  TopicStore store({.traffic_threshold = 0.2});
  store.apply_report(kEast, kTopic, {{kPub, 100, 10000}}, {kSub});
  store.clear_dirty();

  // 10% drift on both counters: below the 20% gate — rejected outright.
  store.apply_report(kEast, kTopic, {{kPub, 110, 11000}}, {kSub});
  EXPECT_FALSE(store.dirty(kTopic));
  EXPECT_EQ(store.state(kTopic)->publishers[0].msg_count, 100u);

  // 50% drift: beyond the gate — accepted and dirtied.
  store.apply_report(kEast, kTopic, {{kPub, 150, 15000}}, {kSub});
  EXPECT_TRUE(store.dirty(kTopic));
  EXPECT_EQ(store.state(kTopic)->publishers[0].msg_count, 150u);
}

TEST(TopicStore, ThresholdNeverGatesPublisherSetChanges) {
  TopicStore store({.traffic_threshold = 0.5});
  store.apply_report(kEast, kTopic, {{kPub, 100, 10000}}, {kSub});
  store.clear_dirty();
  // A new publisher is a set change, not drift: always significant.
  store.apply_report(kEast, kTopic, {{kPub, 100, 10000}, {kPub2, 1, 100}},
                     {kSub});
  EXPECT_TRUE(store.dirty(kTopic));
  EXPECT_EQ(store.state(kTopic)->publishers.size(), 2u);
}

TEST(TopicStore, MembershipChangeDirtiesWithMembershipReason) {
  TopicStore store;
  store.apply_report(kEast, kTopic, {{kPub, 10, 1000}}, {kSub});
  store.clear_dirty();
  store.apply_report(kEast, kTopic, {{kPub, 10, 1000}}, {kSub, kSub2});
  EXPECT_NE(store.dirty_reasons(kTopic) & reason_bit(DirtyReason::kMembership),
            0u);
  EXPECT_EQ(store.state(kTopic)->subscribers.size(), 2u);
}

TEST(TopicStore, ConstraintDirtiesOnlyOnChange) {
  TopicStore store;
  store.set_constraint(kTopic, {95.0, 150.0});
  store.clear_dirty();
  store.set_constraint(kTopic, {95.0, 150.0});  // identical: no-op
  EXPECT_FALSE(store.dirty(kTopic));
  store.set_constraint(kTopic, {95.0, 120.0});
  EXPECT_NE(store.dirty_reasons(kTopic) & reason_bit(DirtyReason::kConstraint),
            0u);
}

TEST(TopicStore, CrossRegionMergeDedupsPublishersByMaxCount) {
  TopicStore store;
  // Under direct delivery both serving regions observe the same publisher;
  // the merge must not double-count it.
  store.apply_report(kEast, kTopic, {{kPub, 10, 1000}}, {kSub});
  store.apply_report(kWest, kTopic, {{kPub, 8, 800}}, {kSub2});
  const TopicState* state = store.state(kTopic);
  ASSERT_EQ(state->publishers.size(), 1u);
  EXPECT_EQ(state->publishers[0].msg_count, 10u);  // max wins
  ASSERT_EQ(state->subscribers.size(), 2u);        // union
}

TEST(TopicStore, EmptyReportClearsRegionView) {
  TopicStore store;
  store.apply_report(kEast, kTopic, {{kPub, 10, 1000}}, {});
  store.apply_report(kWest, kTopic, {{kPub2, 5, 500}}, {kSub});
  store.clear_dirty();
  // East goes authoritatively silent: only West's view remains.
  store.apply_report(kEast, kTopic, {}, {});
  EXPECT_TRUE(store.dirty(kTopic));
  const TopicState* state = store.state(kTopic);
  ASSERT_EQ(state->publishers.size(), 1u);
  EXPECT_EQ(state->publishers[0].client, kPub2);
}

TEST(TopicStore, TouchClientDirtiesOnlyParticipatingTopics) {
  TopicStore store;
  store.apply_report(kEast, kTopic, {{kPub, 10, 1000}}, {kSub});
  store.apply_report(kEast, TopicId{1}, {{kPub2, 10, 1000}}, {kSub2});
  store.clear_dirty();

  store.touch_client(kSub, DirtyReason::kLatency);
  EXPECT_NE(store.dirty_reasons(kTopic) & reason_bit(DirtyReason::kLatency),
            0u);
  EXPECT_FALSE(store.dirty(TopicId{1}));

  store.touch_client(ClientId{999}, DirtyReason::kLatency);  // unknown: no-op
  EXPECT_EQ(store.dirty_count(), 1u);
}

TEST(TopicStore, ReconcileDropsViewsMissingFromFullSnapshot) {
  TopicStore store;
  store.apply_report(kEast, kTopic, {{kPub, 10, 1000}}, {});
  store.apply_report(kEast, TopicId{1}, {{kPub2, 5, 500}}, {});
  store.clear_dirty();

  // The full snapshot only mentions topic 1: topic 0's east view is stale
  // (e.g. its delta was lost) and gets dropped.
  store.reconcile_region(kEast, {TopicId{1}});
  EXPECT_NE(store.dirty_reasons(kTopic) & reason_bit(DirtyReason::kRefresh),
            0u);
  EXPECT_TRUE(store.state(kTopic)->publishers.empty());
  EXPECT_FALSE(store.dirty(TopicId{1}));
}

TEST(TopicStore, MarkAllAndClearDirty) {
  TopicStore store;
  store.apply_report(kEast, kTopic, {{kPub, 10, 1000}}, {});
  store.apply_report(kEast, TopicId{1}, {{kPub2, 5, 500}}, {});
  store.clear_dirty();
  EXPECT_EQ(store.dirty_count(), 0u);

  store.mark_all_dirty(DirtyReason::kAvailability);
  EXPECT_EQ(store.dirty_count(), 2u);
  EXPECT_EQ(store.dirty_topics(), (std::vector<TopicId>{kTopic, TopicId{1}}));
  store.clear_dirty();
  EXPECT_EQ(store.dirty_reasons(kTopic), 0u);
}

}  // namespace
}  // namespace multipub::core
