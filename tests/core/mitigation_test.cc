#include "core/mitigation.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace multipub::core {
namespace {

using testutil::TinyWorld;

class MitigationTest : public ::testing::Test {
 protected:
  TinyWorld world_;
  DeliveryModel model_{world_.backbone, world_.clients};
};

TEST_F(MitigationTest, NoDisadvantagedClientsNoChange) {
  // Bound 200 ms: everyone is fine under {A} (worst pair is 115 ms).
  const auto topic = testutil::tiny_topic(10, 1000, 75.0, 200.0);
  const TopicConfig config{geo::RegionSet::single(TinyWorld::kA),
                           DeliveryMode::kDirect};
  const auto outcome = mitigate_high_latency_clients(topic, config, model_);
  EXPECT_TRUE(outcome.disadvantaged.empty());
  EXPECT_TRUE(outcome.added_regions.empty());
  EXPECT_EQ(outcome.config, config);
}

TEST_F(MitigationTest, DetectsClientWhoseEveryDeliveryExceedsBound) {
  // Under {A} alone with bound 100: nearB receives at 10+105 = 115 > 100 on
  // every delivery; nearA2 receives at 30 and nearC at 95, both fine.
  const auto topic = testutil::tiny_topic(10, 1000, 75.0, 100.0);
  const TopicConfig config{geo::RegionSet::single(TinyWorld::kA),
                           DeliveryMode::kDirect};
  const auto outcome = mitigate_high_latency_clients(topic, config, model_);
  ASSERT_EQ(outcome.disadvantaged.size(), 1u);
  EXPECT_EQ(outcome.disadvantaged[0], TinyWorld::kNearB);
  // Adding B fixes nearB: direct delivery 100+15 = 115... still > 100!
  // But with B serving, publisher->B is 100 and sub leg 15 -> 115. Routed
  // would be 105. Mode is direct here, so the best addition gives 115,
  // which misses the bound but improves nothing significantly (115 ~ 115).
  // Wait: under {A}, nearB's delivery is L[pub][A] + L[sub][A] = 10 + 105
  // = 115 too. So no region helps under direct mode -> nothing added.
  EXPECT_TRUE(outcome.added_regions.empty());
}

TEST_F(MitigationTest, ForcedRegionMeetsClientNeedsUnderRoutedMode) {
  // Routed mode: under {A}, nearB gets 10 + 0 + 105 = 115 > bound 110.
  // Force-adding B: nearB attaches to B, delivery 10 + 80 + 15 = 105 <= 110.
  const auto topic = testutil::tiny_topic(10, 1000, 75.0, 110.0);
  const TopicConfig config{geo::RegionSet::single(TinyWorld::kA),
                           DeliveryMode::kRouted};
  const auto outcome = mitigate_high_latency_clients(topic, config, model_);
  ASSERT_EQ(outcome.disadvantaged.size(), 1u);
  EXPECT_EQ(outcome.disadvantaged[0], TinyWorld::kNearB);
  ASSERT_EQ(outcome.added_regions.size(), 1u);
  EXPECT_EQ(outcome.added_regions[0], TinyWorld::kB);
  EXPECT_TRUE(outcome.config.regions.contains(TinyWorld::kB));
  EXPECT_TRUE(outcome.config.regions.contains(TinyWorld::kA));
}

TEST_F(MitigationTest, SignificantImprovementAcceptedWithoutMeetingBound) {
  // Impossible bound (1 ms): nobody can meet it, but adding the client's
  // home region still shrinks its latency a lot (115 -> 105 is NOT a 30%
  // improvement, so with default params nothing is added; with a lenient
  // threshold it is).
  const auto topic = testutil::tiny_topic(10, 1000, 75.0, 1.0);
  const TopicConfig config{geo::RegionSet::single(TinyWorld::kA),
                           DeliveryMode::kRouted};

  MitigationParams strict;  // default 0.7
  const auto none = mitigate_high_latency_clients(topic, config, model_, strict);
  EXPECT_EQ(none.added_regions.size(), 0u);

  MitigationParams lenient;
  lenient.significant_improvement = 0.95;  // accept >= 5% improvements
  const auto some =
      mitigate_high_latency_clients(topic, config, model_, lenient);
  EXPECT_GE(some.added_regions.size(), 1u);
}

TEST_F(MitigationTest, SubscriberPercentileHandChecked) {
  auto topic = testutil::tiny_topic(10, 1000, 75.0, 100.0);
  topic.publishers.push_back({TinyWorld::kNearA2, 30, 30000});
  const TopicConfig config{geo::RegionSet::single(TinyWorld::kA),
                           DeliveryMode::kDirect};
  // nearB's deliveries: from nearA (weight 10): 10+105 = 115;
  // from nearA2 (weight 30): 20+105 = 125. ratio 75 of 40 -> rank 30 -> 125.
  EXPECT_DOUBLE_EQ(
      subscriber_percentile(topic, config, TinyWorld::kNearB, model_), 125.0);
}

TEST_F(MitigationTest, PreservesDeliveryMode) {
  const auto topic = testutil::tiny_topic(10, 1000, 75.0, 110.0);
  const TopicConfig config{geo::RegionSet::single(TinyWorld::kA),
                           DeliveryMode::kRouted};
  const auto outcome = mitigate_high_latency_clients(topic, config, model_);
  EXPECT_EQ(outcome.config.mode, DeliveryMode::kRouted);
}

}  // namespace
}  // namespace multipub::core
