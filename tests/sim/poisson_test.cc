#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/delivery_model.h"
#include "sim/live_runner.h"

namespace multipub::sim {
namespace {

class PoissonTrafficTest : public ::testing::Test {
 protected:
  PoissonTrafficTest() : rng_(171) {
    WorkloadSpec workload;
    workload.interval_seconds = 60.0;
    workload.ratio = 75.0;
    scenario_ = make_scenario({{RegionId{0}, 3, 4}}, workload, rng_);
  }

  Rng rng_;
  Scenario scenario_;
};

TEST_F(PoissonTrafficTest, CountApproximatesRateTimesSeconds) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::single(RegionId{0}),
               core::DeliveryMode::kDirect});
  for (const auto& sub : live.subscribers()) sub->clear_deliveries();
  live.schedule_traffic(0.0, 60.0, 512, 2.0, rng_,
                        LiveSystem::Arrivals::kPoisson);
  live.simulator().run();

  // 3 publishers x 2 Hz x 60 s = 360 expected; Poisson sd ~ sqrt(360) ~ 19.
  const auto observed = live.observed_topic_state();
  const auto total = observed.total_messages();
  EXPECT_GT(total, 360u - 5 * 19);
  EXPECT_LT(total, 360u + 5 * 19);
}

TEST_F(PoissonTrafficTest, ModelEquivalenceHoldsUnderBurstyArrivals) {
  // The analytic model takes whatever message counts actually occurred, so
  // live == model must stay exact even for a Poisson process.
  LiveSystem live(scenario_);
  const core::TopicConfig config{geo::RegionSet(0b0000000011),
                                 core::DeliveryMode::kRouted};
  live.deploy(config);
  for (const auto& sub : live.subscribers()) sub->clear_deliveries();
  live.schedule_traffic(0.0, 60.0, 1024, 1.0, rng_,
                        LiveSystem::Arrivals::kPoisson);
  live.simulator().run();

  std::vector<Millis> times;
  for (const auto& sub : live.subscribers()) {
    const auto t = sub->delivery_times();
    times.insert(times.end(), t.begin(), t.end());
  }
  ASSERT_FALSE(times.empty());

  const auto observed = live.observed_topic_state();
  EXPECT_EQ(times.size(), observed.total_deliveries());

  const core::DeliveryModel delivery(scenario_.backbone,
                                     scenario_.population.latencies);
  EXPECT_NEAR(percentile(times, 75.0),
              delivery.delivery_percentile(observed, config, 75.0), 1e-9);

  const core::CostModel cost(scenario_.catalog,
                             scenario_.population.latencies);
  EXPECT_NEAR(live.transport().ledger().total_cost(scenario_.catalog),
              cost.cost(observed, config), 1e-12);
}

TEST_F(PoissonTrafficTest, EveryPublisherEmitsAtLeastOnce) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::single(RegionId{0}),
               core::DeliveryMode::kDirect});
  // Absurdly low rate: the at-least-one guarantee kicks in.
  live.schedule_traffic(0.0, 1.0, 128, 0.001, rng_,
                        LiveSystem::Arrivals::kPoisson);
  live.simulator().run();
  const auto observed = live.observed_topic_state();
  for (const auto& pub : observed.publishers) {
    EXPECT_GE(pub.msg_count, 1u);
  }
}

}  // namespace
}  // namespace multipub::sim
