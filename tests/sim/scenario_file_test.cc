#include "sim/scenario_file.h"

#include <gtest/gtest.h>

namespace multipub::sim {
namespace {

constexpr const char* kValid = R"(
# a two-continent workload
placement us-east-1 10 10
placement ap-northeast-1 5 20   # Tokyo heavy on subscribers
rate 2.0
size 512
interval 30
ratio 95
max_t 150
seed 7
)";

TEST(ScenarioFile, ParsesValidSpec) {
  std::string error;
  const auto spec = parse_scenario_spec(kValid, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ASSERT_EQ(spec->placements.size(), 2u);
  EXPECT_EQ(spec->placements[0].region, "us-east-1");
  EXPECT_EQ(spec->placements[0].publishers, 10u);
  EXPECT_EQ(spec->placements[1].subscribers, 20u);
  EXPECT_DOUBLE_EQ(spec->workload.publish_rate_hz, 2.0);
  EXPECT_EQ(spec->workload.message_bytes, 512u);
  EXPECT_DOUBLE_EQ(spec->workload.interval_seconds, 30.0);
  EXPECT_DOUBLE_EQ(spec->workload.ratio, 95.0);
  EXPECT_DOUBLE_EQ(spec->workload.max_t, 150.0);
  EXPECT_EQ(spec->seed, 7u);
}

TEST(ScenarioFile, DefaultsApplyWhenKeysOmitted) {
  std::string error;
  const auto spec = parse_scenario_spec("placement us-east-1 1 1\n", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_DOUBLE_EQ(spec->workload.publish_rate_hz, 1.0);
  EXPECT_EQ(spec->workload.message_bytes, 1024u);
  EXPECT_DOUBLE_EQ(spec->workload.ratio, 75.0);
  EXPECT_EQ(spec->workload.max_t, kUnreachable);
}

TEST(ScenarioFile, InfMaxTIsUnconstrained) {
  std::string error;
  const auto spec =
      parse_scenario_spec("placement us-east-1 1 1\nmax_t inf\n", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->workload.max_t, kUnreachable);
}

TEST(ScenarioFile, RejectsUnknownKeyWithLineNumber) {
  std::string error;
  const auto spec = parse_scenario_spec(
      "placement us-east-1 1 1\nfrobnicate 3\n", &error);
  EXPECT_FALSE(spec.has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_NE(error.find("frobnicate"), std::string::npos);
}

TEST(ScenarioFile, RejectsMalformedNumbers) {
  std::string error;
  EXPECT_FALSE(parse_scenario_spec("placement us-east-1 x 1\n", &error)
                   .has_value());
  EXPECT_FALSE(
      parse_scenario_spec("placement us-east-1 1 1\nratio fast\n", &error)
          .has_value());
  EXPECT_FALSE(
      parse_scenario_spec("placement us-east-1 1 1\nrate\n", &error)
          .has_value());
}

TEST(ScenarioFile, RejectsEmptyAndOutOfRange) {
  std::string error;
  EXPECT_FALSE(parse_scenario_spec("", &error).has_value());
  EXPECT_NE(error.find("placement"), std::string::npos);
  EXPECT_FALSE(
      parse_scenario_spec("placement us-east-1 1 1\nratio 0\n", &error)
          .has_value());
  EXPECT_FALSE(
      parse_scenario_spec("placement us-east-1 1 1\nratio 101\n", &error)
          .has_value());
}

TEST(ScenarioFile, BuildsRunnableScenario) {
  std::string error;
  const auto spec = parse_scenario_spec(kValid, &error);
  ASSERT_TRUE(spec.has_value()) << error;

  const auto catalog = geo::RegionCatalog::ec2_2016();
  const auto backbone = geo::InterRegionLatency::ec2_2016();
  const auto scenario = build_scenario(*spec, catalog, backbone, &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->topic.publishers.size(), 15u);
  EXPECT_EQ(scenario->topic.subscribers.size(), 30u);
  EXPECT_EQ(scenario->topic.publishers[0].msg_count, 60u);  // 2 Hz x 30 s

  // The scenario is actually optimizable.
  const auto result = scenario->make_optimizer().optimize(scenario->topic);
  EXPECT_FALSE(result.config.regions.empty());
}

TEST(ScenarioFile, BuildRejectsUnknownRegion) {
  std::string error;
  const auto spec =
      parse_scenario_spec("placement atlantis-1 1 1\n", &error);
  ASSERT_TRUE(spec.has_value());
  const auto catalog = geo::RegionCatalog::ec2_2016();
  const auto backbone = geo::InterRegionLatency::ec2_2016();
  EXPECT_FALSE(build_scenario(*spec, catalog, backbone, &error).has_value());
  EXPECT_NE(error.find("atlantis-1"), std::string::npos);
}

TEST(ScenarioFile, BuildRejectsPublisherlessScenario) {
  std::string error;
  const auto spec = parse_scenario_spec("placement us-east-1 0 5\n", &error);
  ASSERT_TRUE(spec.has_value());
  const auto catalog = geo::RegionCatalog::ec2_2016();
  const auto backbone = geo::InterRegionLatency::ec2_2016();
  EXPECT_FALSE(build_scenario(*spec, catalog, backbone, &error).has_value());
}

TEST(ScenarioFile, SameSeedSameScenario) {
  std::string error;
  const auto spec = parse_scenario_spec(kValid, &error);
  ASSERT_TRUE(spec.has_value());
  const auto catalog = geo::RegionCatalog::ec2_2016();
  const auto backbone = geo::InterRegionLatency::ec2_2016();
  const auto a = build_scenario(*spec, catalog, backbone, &error);
  const auto b = build_scenario(*spec, catalog, backbone, &error);
  ASSERT_TRUE(a && b);
  for (std::size_t c = 0; c < a->population.latencies.n_clients(); ++c) {
    const ClientId id{static_cast<ClientId::underlying_type>(c)};
    for (int r = 0; r < 10; ++r) {
      EXPECT_DOUBLE_EQ(a->population.latencies.at(id, RegionId{r}),
                       b->population.latencies.at(id, RegionId{r}));
    }
  }
}

}  // namespace
}  // namespace multipub::sim
