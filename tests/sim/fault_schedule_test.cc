// Fault-schedule text format: exact round-tripping (the chaos shrinker's
// printed repro must reconstruct the same schedule), malformed-input
// rejection with useful messages, and the scenario-file 'fault' stanza.
#include "sim/fault_schedule.h"

#include <gtest/gtest.h>

#include <string>

#include "sim/scenario_file.h"
#include "testutil.h"

namespace multipub::sim {
namespace {

using testutil::TinyWorld;

FaultSchedule parse_ok(const std::string& text) {
  std::string error;
  auto schedule = parse_fault_schedule(text, &error);
  EXPECT_TRUE(schedule.has_value()) << error;
  return schedule.value_or(FaultSchedule{});
}

std::string parse_error(const std::string& text) {
  std::string error;
  auto schedule = parse_fault_schedule(text, &error);
  EXPECT_FALSE(schedule.has_value()) << "parsed " << schedule->size()
                                     << " events from: " << text;
  return error;
}

TEST(FaultScheduleParse, AllKindsAndEndpointForms) {
  const auto schedule = parse_ok(
      "# comment\n"
      "fault outage region-b 4 3\n"
      "fault partition region-a region:region-b 2 2   # trailing comment\n"
      "fault delay region:* client:* 1 5 2.5 25\n"
      "fault drop * client:7 0 1 0.25\n");
  ASSERT_EQ(schedule.size(), 4u);

  EXPECT_EQ(schedule[0].kind, FaultEvent::Kind::kOutage);
  EXPECT_EQ(schedule[0].from.kind, FaultEndpointSpec::Kind::kRegion);
  EXPECT_EQ(schedule[0].from.region, "region-b");
  EXPECT_EQ(schedule[0].start_round, 4);
  EXPECT_EQ(schedule[0].rounds, 3);
  EXPECT_TRUE(schedule[0].covers(4));
  EXPECT_TRUE(schedule[0].covers(6));
  EXPECT_FALSE(schedule[0].covers(7));

  EXPECT_EQ(schedule[1].kind, FaultEvent::Kind::kPartition);
  EXPECT_EQ(schedule[1].to.region, "region-b");  // region: prefix stripped

  EXPECT_EQ(schedule[2].kind, FaultEvent::Kind::kDelay);
  EXPECT_EQ(schedule[2].from.kind, FaultEndpointSpec::Kind::kAnyRegion);
  EXPECT_EQ(schedule[2].to.kind, FaultEndpointSpec::Kind::kAnyClient);
  EXPECT_DOUBLE_EQ(schedule[2].delay_factor, 2.5);
  EXPECT_DOUBLE_EQ(schedule[2].delay_extra_ms, 25.0);

  EXPECT_EQ(schedule[3].kind, FaultEvent::Kind::kDrop);
  EXPECT_EQ(schedule[3].from.kind, FaultEndpointSpec::Kind::kAny);
  EXPECT_EQ(schedule[3].to.kind, FaultEndpointSpec::Kind::kClient);
  EXPECT_EQ(schedule[3].to.client, 7);
  EXPECT_DOUBLE_EQ(schedule[3].drop_probability, 0.25);
}

TEST(FaultScheduleParse, FormatParsesBackToTheSameSchedule) {
  // Deliberately awkward doubles: %.17g must survive the text round-trip.
  const auto original = parse_ok(
      "fault outage region-c 0 1\n"
      "fault partition client:3 region-a 5 2\n"
      "fault delay region-b * 1 9 1.0999999999999999 0.10000000000000001\n"
      "fault drop region:* region:* 2 3 0.33333333333333331\n");
  const std::string text = format_fault_schedule(original);
  const auto reparsed = parse_ok(text);
  EXPECT_EQ(original, reparsed);
  // And formatting is a fixed point: the canonical text reprints itself.
  EXPECT_EQ(text, format_fault_schedule(reparsed));
}

TEST(FaultScheduleParse, MalformedInputsAreRejectedWithLineNumbers) {
  EXPECT_NE(parse_error("fault outage region:* 0 1").find("concrete region"),
            std::string::npos);
  EXPECT_NE(parse_error("fault outage region-a 0").find("expects"),
            std::string::npos);
  EXPECT_NE(parse_error("fault meteor region-a 0 1").find("unknown fault kind"),
            std::string::npos);
  EXPECT_NE(parse_error("fault drop a b 0 1 1.5").find("[0, 1]"),
            std::string::npos);
  EXPECT_NE(parse_error("fault delay a b 0 1 0 5").find("factor"),
            std::string::npos);
  EXPECT_NE(parse_error("fault delay a b 0 1 2.0 -1").find("extra"),
            std::string::npos);
  EXPECT_NE(parse_error("fault partition a b -1 1").find("start"),
            std::string::npos);
  EXPECT_NE(parse_error("fault partition a b 1 0").find("round count"),
            std::string::npos);
  EXPECT_NE(parse_error("fault drop client:x b 0 1 0.5").find("client id"),
            std::string::npos);
  EXPECT_NE(parse_error("blackout region-a 0 1").find("expected 'fault'"),
            std::string::npos);
  // Errors carry the (1-based) offending line.
  EXPECT_NE(parse_error("fault outage region-a 0 1\n\nfault outage b 0\n")
                .find("line 3"),
            std::string::npos);
}

TEST(ScenarioFileFaults, FaultStanzasFlowIntoTheScenario) {
  const std::string text =
      "placement region-a 2 2\n"
      "placement region-b 1 3\n"
      "rate 1.0\n"
      "fault outage region-b 4 2\n"
      "fault drop region-a region-b 1 1 0.5\n";
  std::string error;
  auto spec = parse_scenario_spec(text, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ASSERT_EQ(spec->faults.size(), 2u);

  TinyWorld world;
  auto scenario = build_scenario(*spec, world.catalog, world.backbone, &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->faults, spec->faults);
}

TEST(ScenarioFileFaults, MalformedFaultLineGetsTheScenarioLineNumber) {
  std::string error;
  auto spec = parse_scenario_spec(
      "placement region-a 1 1\nfault outage region-a 0\n", &error);
  EXPECT_FALSE(spec.has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_NE(error.find("expects"), std::string::npos);
}

TEST(ScenarioFileFaults, UnknownFaultRegionIsRejectedAtBuildTime) {
  std::string error;
  auto spec = parse_scenario_spec(
      "placement region-a 1 1\nfault outage atlantis 0 1\n", &error);
  ASSERT_TRUE(spec.has_value()) << error;  // names resolve at build time

  TinyWorld world;
  auto scenario = build_scenario(*spec, world.catalog, world.backbone, &error);
  EXPECT_FALSE(scenario.has_value());
  EXPECT_NE(error.find("atlantis"), std::string::npos);
}

TEST(ScenarioFileFaults, ChaosScheduleHelperReconstructsLiterals) {
  const auto schedule = testutil::chaos_schedule(
      "fault outage region-b 4 3\nfault drop * * 0 1 0.5\n");
  ASSERT_EQ(schedule.size(), 2u);
  EXPECT_EQ(schedule[0].from.region, "region-b");
}

}  // namespace
}  // namespace multipub::sim
