#include "sim/scenario.h"

#include <gtest/gtest.h>

namespace multipub::sim {
namespace {

TEST(MessagesPerInterval, RoundsRateTimesSeconds) {
  WorkloadSpec w;
  w.publish_rate_hz = 1.0;
  w.interval_seconds = 60.0;
  EXPECT_EQ(messages_per_interval(w), 60u);
  w.publish_rate_hz = 0.5;
  EXPECT_EQ(messages_per_interval(w), 30u);
  w.publish_rate_hz = 0.001;
  EXPECT_EQ(messages_per_interval(w), 1u);  // never zero
}

TEST(MakeScenario, PlacementsProduceExpectedClients) {
  Rng rng(1);
  WorkloadSpec workload;
  const auto scenario = make_scenario(
      {{RegionId{0}, 2, 3}, {RegionId{5}, 1, 4}}, workload, rng);
  EXPECT_EQ(scenario.topic.publishers.size(), 3u);
  EXPECT_EQ(scenario.topic.subscribers.size(), 7u);
  EXPECT_EQ(scenario.population.size(), 10u);
  // Homes as requested.
  EXPECT_EQ(scenario.population.clients_near(RegionId{0}).size(), 5u);
  EXPECT_EQ(scenario.population.clients_near(RegionId{5}).size(), 5u);
}

TEST(MakeScenario, WorkloadKnobsFlowIntoTopicState) {
  Rng rng(2);
  WorkloadSpec workload;
  workload.publish_rate_hz = 2.0;
  workload.interval_seconds = 30.0;
  workload.message_bytes = 512;
  workload.ratio = 95.0;
  workload.max_t = 150.0;
  const auto scenario = make_scenario({{RegionId{0}, 1, 1}}, workload, rng);
  ASSERT_EQ(scenario.topic.publishers.size(), 1u);
  EXPECT_EQ(scenario.topic.publishers[0].msg_count, 60u);
  EXPECT_EQ(scenario.topic.publishers[0].total_bytes, 60u * 512u);
  EXPECT_DOUBLE_EQ(scenario.topic.constraint.ratio, 95.0);
  EXPECT_DOUBLE_EQ(scenario.topic.constraint.max, 150.0);
  EXPECT_DOUBLE_EQ(scenario.interval_seconds, 30.0);
}

TEST(MakeScenario, ClientIdsAreDenseAndDistinct) {
  Rng rng(3);
  WorkloadSpec workload;
  const auto scenario =
      make_scenario({{RegionId{1}, 5, 5}, {RegionId{2}, 5, 5}}, workload, rng);
  std::vector<bool> seen(20, false);
  for (const auto& p : scenario.topic.publishers) {
    ASSERT_LT(p.client.index(), 20u);
    EXPECT_FALSE(seen[p.client.index()]);
    seen[p.client.index()] = true;
  }
  for (const auto& s : scenario.topic.subscribers) {
    ASSERT_LT(s.client.index(), 20u);
    EXPECT_FALSE(seen[s.client.index()]);
    seen[s.client.index()] = true;
  }
}

TEST(Experiment1Scenario, MatchesPaperWorkload) {
  Rng rng(4);
  const auto scenario = make_experiment1_scenario(rng);
  EXPECT_EQ(scenario.topic.publishers.size(), 100u);
  EXPECT_EQ(scenario.topic.subscribers.size(), 100u);
  EXPECT_DOUBLE_EQ(scenario.topic.constraint.ratio, 75.0);
  // 1 msg/s for 60 s and 1 KB messages.
  EXPECT_EQ(scenario.topic.publishers[0].msg_count, 60u);
  EXPECT_EQ(scenario.topic.publishers[0].total_bytes, 60u * 1024u);
  // 10 + 10 clients homed at every region.
  for (const auto& region : scenario.catalog.all()) {
    EXPECT_EQ(scenario.population.clients_near(region.id).size(), 20u);
  }
}

TEST(Experiment2Scenario, AsymmetricPlacement) {
  Rng rng(5);
  const auto scenario = make_experiment2_scenario(rng);
  EXPECT_EQ(scenario.topic.publishers.size(), 100u);
  EXPECT_EQ(scenario.topic.subscribers.size(), 50u);
  // Publishers all in Asia-Pacific (regions 5..8).
  for (const auto& p : scenario.topic.publishers) {
    const RegionId home =
        scenario.population.home_region[p.client.index()];
    EXPECT_GE(home.value(), 5);
    EXPECT_LE(home.value(), 8);
  }
}

TEST(Experiment3Scenario, FullyLocalPopulation) {
  Rng rng(6);
  const RegionId sao_paulo{9};
  const auto scenario = make_experiment3_scenario(sao_paulo, rng);
  EXPECT_EQ(scenario.topic.publishers.size(), 100u);
  EXPECT_EQ(scenario.topic.subscribers.size(), 100u);
  EXPECT_DOUBLE_EQ(scenario.topic.constraint.ratio, 95.0);
  for (RegionId home : scenario.population.home_region) {
    EXPECT_EQ(home, sao_paulo);
  }
}

TEST(Scenario, MakeOptimizerIsUsable) {
  Rng rng(7);
  auto scenario = make_experiment3_scenario(RegionId{5}, rng);
  scenario.topic.constraint.max = kUnreachable;
  const auto optimizer = scenario.make_optimizer();
  const auto result = optimizer.optimize(scenario.topic);
  EXPECT_TRUE(result.constraint_met);
  EXPECT_EQ(result.configs_evaluated, 2u * 1023u - 10u);
}

}  // namespace
}  // namespace multipub::sim
