#include "sim/metrics_snapshot.h"

#include <gtest/gtest.h>

namespace multipub::sim {
namespace {

class MetricsSnapshotTest : public ::testing::Test {
 protected:
  MetricsSnapshotTest() : rng_(151) {
    WorkloadSpec workload;
    workload.interval_seconds = 10.0;
    workload.ratio = 75.0;
    scenario_ = make_scenario({{RegionId{0}, 2, 3}}, workload, rng_);
  }

  Rng rng_;
  Scenario scenario_;
};

TEST_F(MetricsSnapshotTest, CountsMatchObservableActivity) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::single(RegionId{0}),
               core::DeliveryMode::kDirect});
  const auto run = live.run_interval(10.0, 1024, 1.0, rng_);

  auto metrics = collect_metrics(live);
  EXPECT_DOUBLE_EQ(metrics.value("clients.deliveries"),
                   static_cast<double>(run.deliveries));
  EXPECT_DOUBLE_EQ(metrics.value("clients.reconnects"), 0.0);
  EXPECT_DOUBLE_EQ(metrics.value("clients.duplicates"), 0.0);
  EXPECT_DOUBLE_EQ(metrics.value("transport.messages_dropped"), 0.0);
  EXPECT_TRUE(metrics.contains("transport.dropped_unregistered"));
  EXPECT_DOUBLE_EQ(metrics.value("transport.dropped_unregistered"), 0.0);
  EXPECT_GT(metrics.value("transport.messages_sent"), 0.0);
  EXPECT_NEAR(metrics.value("transport.cost_usd"), run.interval_cost, 1e-12);
  // Only us-east-1 serves: it delivered and billed; Tokyo is idle.
  EXPECT_DOUBLE_EQ(metrics.value("region.us-east-1.delivered"),
                   static_cast<double>(run.deliveries));
  EXPECT_DOUBLE_EQ(metrics.value("region.ap-northeast-1.internet_bytes"),
                   0.0);
  EXPECT_DOUBLE_EQ(metrics.value("region.us-east-1.down"), 0.0);
}

TEST_F(MetricsSnapshotTest, OutageAndServersAreVisible) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::single(RegionId{0}),
               core::DeliveryMode::kDirect});
  live.transport().set_region_down(RegionId{5}, true);
  (void)live.run_interval(10.0, 1024, 1.0, rng_);
  (void)live.control_round();  // scaler runs during report collection

  auto metrics = collect_metrics(live);
  EXPECT_DOUBLE_EQ(metrics.value("region.ap-northeast-1.down"), 1.0);
  EXPECT_GE(metrics.value("region.us-east-1.servers"), 1.0);
}

TEST_F(MetricsSnapshotTest, ControlPlaneCountersAreExposed) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::single(RegionId{0}),
               core::DeliveryMode::kDirect});
  (void)live.run_interval(10.0, 1024, 1.0, rng_);
  (void)live.control_round();

  auto metrics = collect_metrics(live);
  EXPECT_DOUBLE_EQ(metrics.value("controller.rounds"), 1.0);
  EXPECT_GE(metrics.value("controller.topics_tracked"), 1.0);
  // First sighting of the topic: it was dirty and got evaluated.
  EXPECT_GE(metrics.value("controller.evaluated_last_round"), 1.0);
  EXPECT_DOUBLE_EQ(metrics.value("region.us-east-1.drain_forwarded"), 0.0);
}

TEST_F(MetricsSnapshotTest, RenderContainsEveryRegion) {
  LiveSystem live(scenario_);
  auto metrics = collect_metrics(live);
  const std::string text = metrics.render();
  for (const auto& region : scenario_.catalog.all()) {
    EXPECT_NE(text.find("region." + region.name + "."), std::string::npos)
        << region.name;
  }
}

TEST_F(MetricsSnapshotTest, WindowMetricsLiveInTheirOwnRegistry) {
  // The window telemetry (DESIGN.md §14) describes the execution engine and
  // varies with the shard count — it must NEVER leak into collect_metrics,
  // whose render is byte-compared across shard counts by the differential
  // suites.
  LiveSystem live(scenario_);
  live.set_shards(4);
  live.deploy({geo::RegionSet::single(RegionId{0}),
               core::DeliveryMode::kDirect});
  (void)live.run_interval(10.0, 1024, 1.0, rng_);

  EXPECT_EQ(collect_metrics(live).render().find("dataplane."),
            std::string::npos);

  auto windows = collect_window_metrics(live);
  EXPECT_GT(windows.value("dataplane.windows_executed"), 0.0);
  EXPECT_GT(windows.value("dataplane.events_per_window"), 0.0);
  EXPECT_GT(windows.value("dataplane.window_width_mean_ms"), 0.0);
  EXPECT_GE(windows.value("dataplane.window_width_max_ms"),
            windows.value("dataplane.window_width_mean_ms"));
  EXPECT_TRUE(windows.contains("dataplane.barrier_spins"));
  EXPECT_TRUE(windows.contains("dataplane.barrier_parks"));
  EXPECT_TRUE(windows.contains("dataplane.mail_items"));
}

TEST_F(MetricsSnapshotTest, WindowMetricsAreAllZeroUnsharded) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::single(RegionId{0}),
               core::DeliveryMode::kDirect});
  (void)live.run_interval(10.0, 1024, 1.0, rng_);
  auto windows = collect_window_metrics(live);
  EXPECT_DOUBLE_EQ(windows.value("dataplane.windows_executed"), 0.0);
  EXPECT_DOUBLE_EQ(windows.value("dataplane.mail_items"), 0.0);
  EXPECT_DOUBLE_EQ(windows.value("dataplane.barrier_parks"), 0.0);
}

}  // namespace
}  // namespace multipub::sim
