#include "sim/baselines.h"

#include <gtest/gtest.h>

namespace multipub::sim {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() : rng_(11), scenario_(make_experiment1_scenario(rng_)) {
    scenario_.topic.constraint.max = kUnreachable;
  }

  Rng rng_;
  Scenario scenario_;
};

TEST_F(BaselinesTest, OneRegionIsASingleRegion) {
  const auto optimizer = scenario_.make_optimizer();
  const auto baseline = one_region_baseline(optimizer, scenario_.topic);
  EXPECT_EQ(baseline.config.region_count(), 1);
}

TEST_F(BaselinesTest, OneRegionIsCheapestSingleRegion) {
  const auto optimizer = scenario_.make_optimizer();
  const auto baseline = one_region_baseline(optimizer, scenario_.topic);
  for (std::size_t i = 0; i < scenario_.catalog.size(); ++i) {
    const core::TopicConfig single{
        geo::RegionSet::single(RegionId{static_cast<RegionId::underlying_type>(i)}),
        core::DeliveryMode::kDirect};
    const auto eval = optimizer.evaluate(scenario_.topic, single);
    EXPECT_LE(baseline.cost, eval.cost + 1e-15);
  }
}

TEST_F(BaselinesTest, AllRegionsUsesEveryRegion) {
  const auto optimizer = scenario_.make_optimizer();
  const auto baseline =
      all_regions_baseline(optimizer, scenario_.topic,
                           core::DeliveryMode::kRouted, scenario_.catalog.size());
  EXPECT_EQ(baseline.config.region_count(),
            static_cast<int>(scenario_.catalog.size()));
  EXPECT_EQ(baseline.config.mode, core::DeliveryMode::kRouted);
}

TEST_F(BaselinesTest, AllRegionsIsFasterThanOneRegion) {
  // The global workload premise (Fig. 3a): serving from every region cuts
  // the delivery percentile versus any single region.
  const auto optimizer = scenario_.make_optimizer();
  const auto one = one_region_baseline(optimizer, scenario_.topic);
  const auto all =
      all_regions_baseline(optimizer, scenario_.topic,
                           core::DeliveryMode::kRouted, scenario_.catalog.size());
  EXPECT_LT(all.percentile, one.percentile);
}

TEST_F(BaselinesTest, OneRegionIsCheaperThanAllRegions) {
  // The other half of Fig. 3b.
  const auto optimizer = scenario_.make_optimizer();
  const auto one = one_region_baseline(optimizer, scenario_.topic);
  const auto all =
      all_regions_baseline(optimizer, scenario_.topic,
                           core::DeliveryMode::kRouted, scenario_.catalog.size());
  EXPECT_LT(one.cost, all.cost);
}

TEST_F(BaselinesTest, MultiPubNeverCostsMoreThanEitherBaselineWhenFeasible) {
  // Whenever MultiPub's answer meets the constraint, it is at most as
  // expensive as whichever baseline also meets it.
  const auto optimizer = scenario_.make_optimizer();
  auto topic = scenario_.topic;
  for (Millis max_t : {120.0, 150.0, 180.0, 250.0}) {
    topic.constraint.max = max_t;
    const auto result = optimizer.optimize(topic);
    if (!result.constraint_met) continue;
    const auto one = one_region_baseline(optimizer, topic);
    const auto all = all_regions_baseline(optimizer, topic,
                                          core::DeliveryMode::kRouted,
                                          scenario_.catalog.size());
    if (one.feasible) {
      EXPECT_LE(result.cost, one.cost + 1e-15);
    }
    if (all.feasible) {
      EXPECT_LE(result.cost, all.cost + 1e-15);
    }
  }
}

}  // namespace
}  // namespace multipub::sim
