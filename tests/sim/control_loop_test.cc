#include "sim/control_loop.h"

#include <gtest/gtest.h>

namespace multipub::sim {
namespace {

class ControlLoopTest : public ::testing::Test {
 protected:
  ControlLoopTest() : rng_(81) {
    WorkloadSpec workload;
    workload.interval_seconds = 10.0;
    workload.ratio = 75.0;
    workload.max_t = kUnreachable;
    scenario_ = make_scenario({{RegionId{0}, 2, 4}, {RegionId{4}, 2, 4}},
                              workload, rng_);
  }

  Rng rng_;
  Scenario scenario_;
};

TEST_F(ControlLoopTest, RoundsFireAtThePeriod) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});

  ControlLoop loop(live, 10'000.0);  // every 10 virtual seconds
  const Millis base = live.simulator().now();  // deploy advanced the clock
  live.schedule_traffic(0.0, 30.0, 1024, 1.0, rng_);
  loop.schedule_rounds(3);
  live.simulator().run();

  ASSERT_EQ(loop.rounds_executed(), 3u);
  EXPECT_NEAR(loop.history()[0].at, base + 10'000.0, 1e-9);
  EXPECT_NEAR(loop.history()[1].at, base + 20'000.0, 1e-9);
  EXPECT_NEAR(loop.history()[2].at, base + 30'000.0, 1e-9);
}

TEST_F(ControlLoopTest, FirstRoundReconfiguresThenStabilizes) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});

  ControlLoop loop(live, 10'000.0);
  live.schedule_traffic(0.0, 40.0, 1024, 1.0, rng_);
  loop.schedule_rounds(4);
  live.simulator().run();

  ASSERT_EQ(loop.rounds_executed(), 4u);
  // Round 1 sees the suboptimal bootstrap and changes it; later rounds see
  // a stable workload and keep the configuration.
  ASSERT_FALSE(loop.history()[0].decisions.empty());
  EXPECT_TRUE(loop.history()[0].decisions[0].changed);
  EXPECT_EQ(loop.rounds_with_changes(), 1u);
}

TEST_F(ControlLoopTest, TrafficKeepsFlowingAcrossInBandReconfiguration) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});

  ControlLoop loop(live, 10'000.0);
  live.schedule_traffic(0.0, 40.0, 1024, 1.0, rng_);
  loop.schedule_rounds(3);
  live.simulator().run();

  // Every publication was delivered to every subscriber despite the
  // reconfiguration happening mid-stream. 4 pubs x 40 msgs x 8 subs.
  std::size_t deliveries = 0;
  for (const auto& sub : live.subscribers()) {
    deliveries += sub->deliveries().size();
  }
  EXPECT_EQ(deliveries, 4u * 40u * 8u);
}

TEST_F(ControlLoopTest, ZeroRoundsIsANoop) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  ControlLoop loop(live, 5'000.0);
  loop.schedule_rounds(0);
  live.simulator().run();
  EXPECT_EQ(loop.rounds_executed(), 0u);
}

TEST_F(ControlLoopTest, OptionsArePassedThrough) {
  LiveSystem live(scenario_);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});

  core::OptimizerOptions routed_only;
  routed_only.mode_policy = core::ModePolicy::kRoutedOnly;
  ControlLoop loop(live, 10'000.0, routed_only);
  live.schedule_traffic(0.0, 15.0, 1024, 1.0, rng_);
  loop.schedule_rounds(1);
  live.simulator().run();

  ASSERT_EQ(loop.rounds_executed(), 1u);
  ASSERT_FALSE(loop.history()[0].decisions.empty());
  const auto& config = loop.history()[0].decisions[0].result.config;
  if (config.region_count() > 1) {
    EXPECT_EQ(config.mode, core::DeliveryMode::kRouted);
  }
}

}  // namespace
}  // namespace multipub::sim
