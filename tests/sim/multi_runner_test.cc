#include "sim/multi_runner.h"

#include <gtest/gtest.h>

namespace multipub::sim {
namespace {

class MultiRunnerTest : public ::testing::Test {
 protected:
  MultiRunnerTest() : rng_(111) {
    // Topic 0: a latency-tight US/EU alert topic.
    TopicSpec alerts;
    alerts.placements = {{RegionId{0}, 1, 3}, {RegionId{4}, 1, 3}};
    alerts.workload.ratio = 95.0;
    alerts.workload.max_t = 120.0;
    alerts.workload.message_bytes = 512;
    // Topic 1: a cost-driven Tokyo-local game topic.
    TopicSpec game;
    game.placements = {{RegionId{5}, 2, 4}};
    game.workload.ratio = 95.0;
    game.workload.max_t = kUnreachable;
    game.workload.publish_rate_hz = 2.0;
    scenario_ = make_multi_topic_scenario({alerts, game}, rng_);
  }

  Rng rng_;
  MultiTopicScenario scenario_;
};

TEST_F(MultiRunnerTest, ScenarioBuildsDisjointDenseClients) {
  ASSERT_EQ(scenario_.topics.size(), 2u);
  EXPECT_EQ(scenario_.topics[0].publishers.size(), 2u);
  EXPECT_EQ(scenario_.topics[0].subscribers.size(), 6u);
  EXPECT_EQ(scenario_.topics[1].publishers.size(), 2u);
  EXPECT_EQ(scenario_.topics[1].subscribers.size(), 4u);
  EXPECT_EQ(scenario_.population.size(), 14u);
  EXPECT_EQ(scenario_.topics[0].topic, TopicId{0});
  EXPECT_EQ(scenario_.topics[1].topic, TopicId{1});
}

TEST_F(MultiRunnerTest, AllTopicsDeliverCompletely) {
  MultiLiveSystem live(scenario_);
  live.deploy_all({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  const auto results = live.run_interval(10.0, rng_);
  ASSERT_EQ(results.size(), 2u);
  // Topic 0: 2 pubs x 10 msgs x 6 subs.
  EXPECT_EQ(results[0].deliveries, 2u * 10u * 6u);
  // Topic 1: 2 pubs x 20 msgs (2 Hz) x 4 subs.
  EXPECT_EQ(results[1].deliveries, 2u * 20u * 4u);
}

TEST_F(MultiRunnerTest, PerTopicCostsSumToLedgerTotal) {
  MultiLiveSystem live(scenario_);
  live.deploy_all({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  const auto results = live.run_interval(10.0, rng_);
  const Dollars sum = results[0].interval_cost + results[1].interval_cost;
  EXPECT_NEAR(sum, live.transport().ledger().total_cost(scenario_.catalog),
              1e-12);
  EXPECT_GT(results[0].interval_cost, 0.0);
  EXPECT_GT(results[1].interval_cost, 0.0);
}

TEST_F(MultiRunnerTest, ControllerDecidesEachTopicIndependently) {
  MultiLiveSystem live(scenario_);
  live.deploy_all({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  (void)live.run_interval(10.0, rng_);
  const auto decisions = live.control_round();
  ASSERT_EQ(decisions.size(), 2u);

  // Each decision equals the optimizer's answer for that topic alone (paper
  // §IV-C: independence).
  const core::Optimizer optimizer(scenario_.catalog, scenario_.backbone,
                                  scenario_.population.latencies);
  for (const auto& decision : decisions) {
    const auto& topic =
        scenario_.topics[static_cast<std::size_t>(decision.topic.value())];
    // Rebuild the observed state with actual counts (10 s interval).
    core::TopicState observed = topic;
    const auto& workload =
        scenario_.workloads[static_cast<std::size_t>(decision.topic.value())];
    for (auto& pub : observed.publishers) {
      pub.msg_count = static_cast<std::uint64_t>(
          10.0 * workload.publish_rate_hz + 0.5);
      pub.total_bytes = pub.msg_count * workload.message_bytes;
    }
    const auto expected = optimizer.optimize(observed);
    EXPECT_EQ(decision.result.config, expected.config)
        << "topic " << decision.topic.value();
  }

  // The tight alert topic needs both continents; the local game topic does
  // not need Tokyo coverage requirements — it picks a cheap single region.
  EXPECT_GE(decisions[0].result.config.region_count(), 2);
  EXPECT_EQ(decisions[1].result.config.region_count(), 1);
}

TEST_F(MultiRunnerTest, ReconfiguringOneTopicDoesNotMoveTheOther) {
  MultiLiveSystem live(scenario_);
  live.deploy_all({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  (void)live.run_interval(10.0, rng_);
  (void)live.control_round();

  // Record topic 1 attachments, then change only topic 0's constraint.
  std::vector<RegionId> before;
  for (const auto* sub : live.subscribers(TopicId{1})) {
    before.push_back(sub->attached_region(TopicId{1}));
  }
  live.controller().set_constraint(TopicId{0}, {95.0, 500.0});
  (void)live.run_interval(10.0, rng_);
  (void)live.control_round();

  std::size_t i = 0;
  for (const auto* sub : live.subscribers(TopicId{1})) {
    EXPECT_EQ(sub->attached_region(TopicId{1}), before[i++]);
  }
}

TEST_F(MultiRunnerTest, TrafficFlowsAfterReconfiguration) {
  MultiLiveSystem live(scenario_);
  live.deploy_all({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  (void)live.run_interval(10.0, rng_);
  (void)live.control_round();
  const auto after = live.run_interval(10.0, rng_);
  EXPECT_EQ(after[0].deliveries, 2u * 10u * 6u);
  EXPECT_EQ(after[1].deliveries, 2u * 20u * 4u);
  // The optimized configs are cheaper than all-regions was.
  EXPECT_GT(after[0].interval_cost, 0.0);
}

}  // namespace
}  // namespace multipub::sim
