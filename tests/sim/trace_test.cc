#include "sim/trace.h"

#include <gtest/gtest.h>

#include "sim/live_runner.h"

namespace multipub::sim {
namespace {

broker::TopicReport sample_report(TopicId topic) {
  broker::TopicReport report;
  report.topic = topic;
  report.publishers = {{ClientId{0}, 10, 10240}, {ClientId{1}, 5, 5120}};
  report.subscribers = {ClientId{2}, ClientId{3}};
  return report;
}

TEST(TraceRecorder, SerializeRoundTrips) {
  TraceRecorder recorder;
  recorder.record(RegionId{0}, {sample_report(TopicId{0})});
  recorder.record(RegionId{5}, {sample_report(TopicId{0}),
                                sample_report(TopicId{1})});
  recorder.end_interval();
  recorder.record(RegionId{0}, {sample_report(TopicId{0})});
  recorder.end_interval();

  std::string error;
  const auto parsed = parse_trace(recorder.serialize(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), 2u);
  ASSERT_EQ((*parsed)[0].ingests.size(), 2u);
  EXPECT_EQ((*parsed)[0].ingests[0].region, RegionId{0});
  EXPECT_EQ((*parsed)[0].ingests[1].region, RegionId{5});
  ASSERT_EQ((*parsed)[0].ingests[1].reports.size(), 2u);
  const auto& report = (*parsed)[0].ingests[0].reports[0];
  ASSERT_EQ(report.publishers.size(), 2u);
  EXPECT_EQ(report.publishers[0].msg_count, 10u);
  EXPECT_EQ(report.publishers[1].total_bytes, 5120u);
  ASSERT_EQ(report.subscribers.size(), 2u);
  EXPECT_EQ(report.subscribers[1], ClientId{3});
}

TEST(TraceParse, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(parse_trace("report 0 0\n", &error).has_value());
  EXPECT_NE(error.find("outside interval"), std::string::npos);
  EXPECT_FALSE(parse_trace("interval\npub 1 2 3\n", &error).has_value());
  EXPECT_FALSE(
      parse_trace("interval\nreport 0 0\npub x 2 3\n", &error).has_value());
  EXPECT_FALSE(parse_trace("interval\nbogus\n", &error).has_value());
  // Empty input is a valid empty trace.
  EXPECT_TRUE(parse_trace("", &error).has_value());
}

TEST(TraceReplay, ReproducesControllerDecisions) {
  // Record a live run's reports, replay them into a fresh controller, and
  // require the identical decisions.
  Rng rng(161);
  WorkloadSpec workload;
  workload.interval_seconds = 10.0;
  workload.ratio = 95.0;
  workload.max_t = 140.0;
  const Scenario scenario =
      make_scenario({{RegionId{0}, 2, 3}, {RegionId{5}, 2, 3}}, workload, rng);

  LiveSystem live(scenario);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});

  TraceRecorder recorder;
  std::vector<std::vector<broker::Controller::Decision>> live_decisions;
  for (int round = 0; round < 3; ++round) {
    (void)live.run_interval(10.0, 1024, 1.0, rng);
    // Mirror control_round, but tee the reports into the recorder.
    for (const auto& region : scenario.catalog.all()) {
      const auto batch = live.region_manager(region.id).collect_reports();
      recorder.record(region.id, batch.reports);
      live.controller().ingest(region.id, batch.reports,
                               batch.full_snapshot);
    }
    recorder.end_interval();
    live_decisions.push_back(live.controller().reconfigure());
    live.simulator().run();
  }

  std::string error;
  const auto trace = parse_trace(recorder.serialize(), &error);
  ASSERT_TRUE(trace.has_value()) << error;

  broker::Controller replayed(scenario.catalog, scenario.backbone,
                              scenario.population.latencies);
  replayed.set_constraint(scenario.topic.topic, scenario.topic.constraint);
  const auto decisions = replay_trace(*trace, replayed);

  ASSERT_EQ(decisions.size(), live_decisions.size());
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    ASSERT_EQ(decisions[i].size(), live_decisions[i].size()) << "round " << i;
    for (std::size_t d = 0; d < decisions[i].size(); ++d) {
      EXPECT_EQ(decisions[i][d].result.config,
                live_decisions[i][d].result.config)
          << "round " << i;
    }
  }
}

TEST(TraceReplay, WhatIfWithDifferentConstraint) {
  // The same trace replayed under a looser constraint produces a cheaper
  // deployment — the offline what-if workflow.
  Rng rng(162);
  WorkloadSpec workload;
  workload.interval_seconds = 10.0;
  workload.ratio = 95.0;
  workload.max_t = 130.0;
  const Scenario scenario =
      make_scenario({{RegionId{0}, 2, 3}, {RegionId{5}, 2, 3}}, workload, rng);

  LiveSystem live(scenario);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  TraceRecorder recorder;
  (void)live.run_interval(10.0, 1024, 1.0, rng);
  for (const auto& region : scenario.catalog.all()) {
    recorder.record(region.id,
                    live.region_manager(region.id).collect_reports().reports);
  }
  recorder.end_interval();

  auto run_with = [&](Millis max_t) {
    broker::Controller controller(scenario.catalog, scenario.backbone,
                                  scenario.population.latencies);
    controller.set_constraint(scenario.topic.topic, {95.0, max_t});
    const auto decisions = replay_trace(recorder.intervals(), controller);
    EXPECT_EQ(decisions.size(), 1u);
    EXPECT_EQ(decisions[0].size(), 1u);
    return decisions[0][0].result;
  };

  const auto tight = run_with(130.0);
  const auto loose = run_with(500.0);
  EXPECT_LE(loose.cost, tight.cost);
  EXPECT_LT(loose.config.region_count(), tight.config.region_count());
}

}  // namespace
}  // namespace multipub::sim
