#include "sim/sweep.h"

#include <gtest/gtest.h>

#include <limits>

namespace multipub::sim {
namespace {

class SweepTest : public ::testing::Test {
 protected:
  SweepTest() : rng_(21), scenario_(make_experiment1_scenario(rng_)) {}

  Rng rng_;
  Scenario scenario_;
};

TEST_F(SweepTest, ProducesOnePointPerStep) {
  const auto points = sweep_max_t(scenario_, {100.0, 200.0, 20.0});
  EXPECT_EQ(points.size(), 6u);
  EXPECT_DOUBLE_EQ(points.front().max_t, 100.0);
  EXPECT_DOUBLE_EQ(points.back().max_t, 200.0);
}

TEST_F(SweepTest, AchievedPercentileRespectsBoundWhenMet) {
  for (const auto& p : sweep_max_t(scenario_, {100.0, 220.0, 8.0})) {
    if (p.constraint_met) {
      EXPECT_LE(p.achieved_percentile, p.max_t) << "max_t=" << p.max_t;
    }
  }
}

TEST_F(SweepTest, CostIsMonotonicallyNonIncreasingOverFeasiblePoints) {
  // Looser bounds can only unlock cheaper configurations (Fig. 3b's shape).
  double previous = std::numeric_limits<double>::infinity();
  bool any_feasible = false;
  for (const auto& p : sweep_max_t(scenario_, {100.0, 220.0, 8.0})) {
    if (!p.constraint_met) continue;
    any_feasible = true;
    EXPECT_LE(p.cost_per_day, previous + 1e-9) << "max_t=" << p.max_t;
    previous = p.cost_per_day;
  }
  EXPECT_TRUE(any_feasible);
}

TEST_F(SweepTest, RegionCountShrinksTowardsOne) {
  const auto points = sweep_max_t(scenario_, {100.0, 300.0, 10.0});
  EXPECT_GE(points.front().n_regions, points.back().n_regions);
  EXPECT_EQ(points.back().n_regions, 1);  // very loose bound -> one region
}

TEST_F(SweepTest, ModePolicyIsForwarded) {
  for (const auto& p : sweep_max_t(scenario_, {100.0, 200.0, 25.0},
                                   core::ModePolicy::kDirectOnly)) {
    EXPECT_EQ(p.mode, core::DeliveryMode::kDirect);
  }
}

}  // namespace
}  // namespace multipub::sim
