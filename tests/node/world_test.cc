// build_live_world: the restricted-world builder every live process and its
// digital twin share (node/world.h).
#include "node/world.h"

#include <gtest/gtest.h>

#include "geo/latency.h"
#include "geo/region.h"

namespace multipub {
namespace {

sim::ScenarioSpec three_region_spec() {
  sim::ScenarioSpec spec;
  spec.placements = {{"us-east-1", 2, 3},
                     {"eu-west-1", 1, 2},
                     {"ap-northeast-1", 1, 2}};
  spec.workload.publish_rate_hz = 5.0;
  spec.workload.interval_seconds = 2.0;
  spec.workload.max_t = 150.0;
  spec.seed = 7;
  return spec;
}

TEST(BuildLiveWorld, RestrictsToPlacementRegionsInFirstAppearanceOrder) {
  std::string error;
  const auto scenario = node::build_live_world(three_region_spec(), &error);
  ASSERT_TRUE(scenario.has_value()) << error;

  ASSERT_EQ(scenario->catalog.size(), 3u);
  EXPECT_EQ(scenario->catalog.at(RegionId{0}).name, "us-east-1");
  EXPECT_EQ(scenario->catalog.at(RegionId{1}).name, "eu-west-1");
  EXPECT_EQ(scenario->catalog.at(RegionId{2}).name, "ap-northeast-1");
  // Region ids are re-numbered densely so matrices index from zero.
  EXPECT_EQ(scenario->catalog.at(RegionId{1}).id, RegionId{1});
  EXPECT_EQ(scenario->backbone.size(), 3u);

  // The backbone submatrix carries the full-world latencies of the picked
  // pair, not fresh values.
  const auto full_catalog = geo::RegionCatalog::ec2_2016();
  const auto full = geo::InterRegionLatency::ec2_2016();
  EXPECT_EQ(scenario->backbone.at(RegionId{0}, RegionId{2}),
            full.at(full_catalog.find("us-east-1"),
                    full_catalog.find("ap-northeast-1")));

  // All clients are homed inside the restricted world.
  for (const RegionId home : scenario->population.home_region) {
    EXPECT_TRUE(home.valid());
    EXPECT_LT(home.index(), scenario->catalog.size());
  }
  EXPECT_EQ(scenario->topic.publishers.size(), 4u);
  EXPECT_EQ(scenario->topic.subscribers.size(), 7u);
}

TEST(BuildLiveWorld, RepeatedPlacementRegionsCollapseToOneLiveRegion) {
  auto spec = three_region_spec();
  spec.placements.push_back({"us-east-1", 1, 1});
  std::string error;
  const auto scenario = node::build_live_world(spec, &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->catalog.size(), 3u);
  EXPECT_EQ(scenario->topic.publishers.size(), 5u);
}

TEST(BuildLiveWorld, UnknownRegionIsAnError) {
  auto spec = three_region_spec();
  spec.placements[1].region = "atlantis-north-1";
  std::string error;
  EXPECT_FALSE(node::build_live_world(spec, &error).has_value());
  EXPECT_NE(error.find("atlantis-north-1"), std::string::npos);
}

TEST(BuildLiveWorld, BootstrapConfigIsAPureFunctionOfTheScenario) {
  std::string error;
  const auto a = node::build_live_world(three_region_spec(), &error);
  const auto b = node::build_live_world(three_region_spec(), &error);
  ASSERT_TRUE(a.has_value() && b.has_value());
  const auto config_a = node::choose_bootstrap_config(*a);
  const auto config_b = node::choose_bootstrap_config(*b);
  // Controller, every broker and the twin each compute this independently;
  // determinism is what makes the attach phase coherent.
  EXPECT_EQ(config_a.regions, config_b.regions);
  EXPECT_EQ(config_a.mode, config_b.mode);
}

}  // namespace
}  // namespace multipub
