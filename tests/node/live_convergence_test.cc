// Live-vs-twin convergence (DESIGN.md §13).
//
// Launches a real deployment — one controller process plus one broker
// process per region, all multipub-node binaries talking TCP on localhost —
// replays a scenario through the lock-step phase machine, then runs the
// same scenario through the in-process digital twin (sim::LiveSystem over
// the discrete-event transport) and asserts the live aggregates converge to
// the twin's.
//
// Convergence contract (the documented tolerances):
//   publications            exact
//   deliveries              exact
//   per-region billed bytes exact (inter-region and internet egress)
//   billed dollars          relative 1e-6 (identical bytes through the same
//                           tariff arithmetic; the slack only covers a
//                           different summation order)
//   assignment matrix       exact string match
//
// Delivery TIMES are deliberately not compared: the processes' wall-clock
// epochs are unsynchronized, so cross-process published_at arithmetic is
// meaningless — counts and costs are the live observables.
#include "node/world.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/live_runner.h"
#include "sim/scenario_file.h"

namespace multipub {
namespace {

std::string node_binary() {
  if (const char* env = std::getenv("MULTIPUB_NODE_BIN")) return env;
  // Test binaries live in build/tests, the CLI in build/tools.
  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (n <= 0) return "multipub-node";
  self[n] = '\0';
  std::string dir(self);
  dir.resize(dir.find_last_of('/'));
  return dir + "/../tools/multipub-node";
}

std::string scenario_text(std::uint64_t seed) {
  std::ostringstream out;
  out << "placement us-east-1 2 3\n"
      << "placement eu-west-1 1 2\n"
      << "placement ap-northeast-1 1 2\n"
      << "rate 5\n"
      << "size 1024\n"
      << "interval 2\n"
      << "ratio 75\n"
      << "max_t 150\n"
      << "seed " << seed << "\n";
  return out.str();
}

pid_t spawn(const std::vector<std::string>& args, const std::string& log) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    ::dup2(fd, 1);
    ::dup2(fd, 2);
    ::close(fd);
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const auto& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  std::_Exit(127);
}

/// Waits for every pid with a shared wall-clock deadline; kills stragglers.
/// Returns true when all exited with status 0.
bool wait_all(std::vector<pid_t> pids, int deadline_ms) {
  bool ok = true;
  for (int elapsed = 0; !pids.empty() && elapsed < deadline_ms;) {
    bool progressed = false;
    for (std::size_t i = 0; i < pids.size();) {
      int status = 0;
      const pid_t r = ::waitpid(pids[i], &status, WNOHANG);
      if (r == pids[i]) {
        ok = ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
        pids.erase(pids.begin() + static_cast<std::ptrdiff_t>(i));
        progressed = true;
      } else {
        ++i;
      }
    }
    if (!progressed && !pids.empty()) {
      ::usleep(20'000);
      elapsed += 20;
    }
  }
  for (const pid_t pid : pids) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    ok = false;
  }
  return ok;
}

struct Metrics {
  std::map<std::string, std::uint64_t> counters;
  std::string assignment;  // reassembled matrix text

  [[nodiscard]] std::uint64_t at(const std::string& name) const {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
};

Metrics read_metrics(const std::string& path) {
  Metrics m;
  std::ifstream file(path);
  std::string line;
  while (std::getline(file, line)) {
    if (line.rfind("# assignment ", 0) == 0) {
      m.assignment += line.substr(std::strlen("# assignment ")) + "\n";
      continue;
    }
    std::istringstream fields(line);
    std::string name;
    std::uint64_t value = 0;
    if (fields >> name >> value) m.counters[name] = value;
  }
  return m;
}

struct LiveRun {
  Metrics controller;
  std::vector<Metrics> brokers;  // indexed by live region id
};

/// Runs one full deployment (controller + one broker per region) and
/// returns everyone's metrics. Files go under `dir` (inside the build
/// tree); region names must match the scenario's placements.
LiveRun run_deployment(const std::string& dir, std::uint64_t seed,
                       const std::vector<std::string>& regions) {
  const std::string bin = node_binary();
  const std::string scn = dir + "/exp.scn";
  {
    std::ofstream out(scn);
    out << scenario_text(seed);
  }
  const std::string port_file = dir + "/ctrl.port";
  std::remove(port_file.c_str());

  std::vector<pid_t> pids;
  pids.push_back(spawn({bin, "--role", "controller", "--scenario", scn,
                        "--port-file", port_file, "--metrics-out",
                        dir + "/ctrl.metrics", "--deadline-ms", "60000"},
                       dir + "/ctrl.log"));

  // The controller writes its ephemeral port once it listens.
  std::uint16_t port = 0;
  for (int i = 0; i < 250 && port == 0; ++i) {
    std::ifstream in(port_file);
    int value = 0;
    if (in >> value && value > 0) {
      port = static_cast<std::uint16_t>(value);
      break;
    }
    ::usleep(20'000);
  }
  EXPECT_GT(port, 0) << "controller never published its port";

  for (std::size_t r = 0; r < regions.size(); ++r) {
    const std::string tag = "b" + std::to_string(r);
    pids.push_back(spawn({bin, "--role", "broker", "--region", regions[r],
                          "--scenario", scn, "--controller-port",
                          std::to_string(port), "--metrics-out",
                          dir + "/" + tag + ".metrics", "--time-scale", "4",
                          "--deadline-ms", "60000"},
                         dir + "/" + tag + ".log"));
  }

  EXPECT_TRUE(wait_all(pids, 60'000)) << "a node crashed or timed out";

  LiveRun run;
  run.controller = read_metrics(dir + "/ctrl.metrics");
  for (std::size_t r = 0; r < regions.size(); ++r) {
    run.brokers.push_back(
        read_metrics(dir + "/b" + std::to_string(r) + ".metrics"));
  }
  return run;
}

class LiveConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LiveConvergence, LiveAggregatesMatchTheDigitalTwin) {
  const std::uint64_t seed = GetParam();
  char dir_template[] = "live_convergence_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string dir = dir_template;

  // Region names in scenario placement order = live region ids 0..2
  // (build_live_world numbers them by first appearance).
  const std::vector<std::string> regions = {"us-east-1", "eu-west-1",
                                            "ap-northeast-1"};
  const LiveRun live = run_deployment(dir, seed, regions);

  // The digital twin: the same spec through the same world builder, run
  // over the discrete-event transport.
  std::string error;
  const auto spec = sim::parse_scenario_spec(scenario_text(seed), &error);
  ASSERT_TRUE(spec.has_value()) << error;
  const auto scenario = node::build_live_world(*spec, &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  sim::LiveSystem twin(*scenario);
  twin.deploy(node::choose_bootstrap_config(*scenario));
  Rng rng(spec->seed);
  const auto interval = twin.run_interval(spec->workload.interval_seconds,
                                          spec->workload.message_bytes,
                                          spec->workload.publish_rate_hz, rng);
  (void)twin.control_round();

  // Publications and deliveries: exact.
  std::uint64_t live_publications = 0;
  std::uint64_t live_deliveries = 0;
  for (const auto& broker : live.brokers) {
    live_publications += broker.at("clients.publications");
    live_deliveries += broker.at("clients.deliveries");
  }
  EXPECT_EQ(live_publications, interval.publications);
  EXPECT_EQ(live_deliveries, interval.deliveries);

  // Per-region billed egress: exact, meter by meter.
  const net::CostLedger& ledger = twin.transport().ledger();
  net::CostLedger live_ledger(scenario->catalog.size());
  for (std::size_t r = 0; r < live.brokers.size(); ++r) {
    live_ledger.inter_region_bytes[r] =
        live.brokers[r].at("transport.inter_region_bytes");
    live_ledger.internet_bytes[r] =
        live.brokers[r].at("transport.internet_bytes");
    EXPECT_EQ(live_ledger.inter_region_bytes[r],
              ledger.inter_region_bytes[r])
        << "inter-region egress diverged for region " << r;
    EXPECT_EQ(live_ledger.internet_bytes[r], ledger.internet_bytes[r])
        << "internet egress diverged for region " << r;
  }

  // Dollars: identical bytes through the same tariffs; 1e-6 relative slack
  // only covers a different summation order.
  const Dollars twin_cost = ledger.total_cost(scenario->catalog);
  const Dollars live_cost = live_ledger.total_cost(scenario->catalog);
  EXPECT_NEAR(live_cost, twin_cost, 1e-6 * std::max(1.0, twin_cost));
  EXPECT_GT(twin_cost, 0.0);  // the interval must actually have billed

  // The deployed assignment matrix: exact string.
  EXPECT_EQ(live.controller.assignment,
            twin.controller().render_assignment_matrix());

  // Lifecycle health: every broker registered, beat and said goodbye.
  EXPECT_EQ(live.controller.at("node.brokers"), regions.size());
  EXPECT_EQ(live.controller.at("controller.rejected_hellos"), 0u);
  for (std::size_t r = 0; r < regions.size(); ++r) {
    EXPECT_GT(live.controller.at("node.heartbeats." + std::to_string(r)), 0u)
        << "no heartbeats from region " << r;
    EXPECT_GT(live.brokers[r].at("node.heartbeats_sent"), 0u);
  }

  // Keep the logs and metrics around for post-mortems on failure only.
  if (!::testing::Test::HasFailure()) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LiveConvergence,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace multipub
