#include "geo/region_set.h"

#include <gtest/gtest.h>

#include <set>

namespace multipub::geo {
namespace {

TEST(RegionSet, EmptyByDefault) {
  RegionSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_FALSE(s.first().valid());
}

TEST(RegionSet, AddRemoveContains) {
  RegionSet s;
  s.add(RegionId{3});
  s.add(RegionId{7});
  EXPECT_TRUE(s.contains(RegionId{3}));
  EXPECT_TRUE(s.contains(RegionId{7}));
  EXPECT_FALSE(s.contains(RegionId{5}));
  EXPECT_EQ(s.size(), 2);

  s.remove(RegionId{3});
  EXPECT_FALSE(s.contains(RegionId{3}));
  EXPECT_EQ(s.size(), 1);
}

TEST(RegionSet, AddIsIdempotent) {
  RegionSet s;
  s.add(RegionId{2});
  s.add(RegionId{2});
  EXPECT_EQ(s.size(), 1);
}

TEST(RegionSet, UniverseCoversExactlyN) {
  const RegionSet u = RegionSet::universe(10);
  EXPECT_EQ(u.size(), 10);
  EXPECT_TRUE(u.contains(RegionId{0}));
  EXPECT_TRUE(u.contains(RegionId{9}));
  EXPECT_FALSE(u.contains(RegionId{10}));
}

TEST(RegionSet, UniverseOf64DoesNotOverflow) {
  const RegionSet u = RegionSet::universe(64);
  EXPECT_EQ(u.size(), 64);
}

TEST(RegionSet, WithWithoutAreNonMutating) {
  const RegionSet s = RegionSet::single(RegionId{1});
  const RegionSet larger = s.with(RegionId{4});
  EXPECT_EQ(s.size(), 1);
  EXPECT_EQ(larger.size(), 2);
  EXPECT_EQ(larger.without(RegionId{4}), s);
}

TEST(RegionSet, ToVectorAscending) {
  RegionSet s;
  s.add(RegionId{9});
  s.add(RegionId{0});
  s.add(RegionId{4});
  const auto v = s.to_vector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], RegionId{0});
  EXPECT_EQ(v[1], RegionId{4});
  EXPECT_EQ(v[2], RegionId{9});
  EXPECT_EQ(s.first(), RegionId{0});
}

TEST(RegionSet, IteratorVisitsMembersAscendingWithoutAllocating) {
  RegionSet s;
  s.add(RegionId{9});
  s.add(RegionId{0});
  s.add(RegionId{63});
  s.add(RegionId{17});

  std::vector<RegionId> seen;
  for (RegionId r : s) seen.push_back(r);
  EXPECT_EQ(seen, s.to_vector());
  EXPECT_EQ(seen, (std::vector<RegionId>{RegionId{0}, RegionId{9},
                                         RegionId{17}, RegionId{63}}));
}

TEST(RegionSet, IteratorOnEmptySetIsEmptyRange) {
  const RegionSet s;
  EXPECT_EQ(s.begin(), s.end());
  int visits = 0;
  for (RegionId r : s) {
    (void)r;
    ++visits;
  }
  EXPECT_EQ(visits, 0);
}

TEST(RegionSet, IteratorSupportsPostIncrementAndStdAlgorithms) {
  RegionSet s;
  s.add(RegionId{2});
  s.add(RegionId{5});
  auto it = s.begin();
  const auto before = it++;
  EXPECT_EQ((*before).value(), 2);
  EXPECT_EQ((*it).value(), 5);
  EXPECT_EQ(std::distance(s.begin(), s.end()),
            static_cast<std::ptrdiff_t>(s.size()));
}

TEST(RegionSet, ToStringUsesPaperNumbering) {
  RegionSet s;
  s.add(RegionId{0});
  s.add(RegionId{4});
  EXPECT_EQ(s.to_string(), "{R1,R5}");
  EXPECT_EQ(RegionSet{}.to_string(), "{}");
}

class SubsetEnumeration : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SubsetEnumeration, CountsAndUniqueness) {
  const std::size_t n = GetParam();
  const auto subsets = all_nonempty_subsets(n);
  EXPECT_EQ(subsets.size(), (std::uint64_t{1} << n) - 1);

  std::set<std::uint64_t> seen;
  for (const auto& s : subsets) {
    EXPECT_FALSE(s.empty());
    EXPECT_TRUE(seen.insert(s.mask()).second) << "duplicate subset";
    // Every member must be inside the universe.
    for (RegionId r : s.to_vector()) {
      EXPECT_LT(r.index(), n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SubsetEnumeration,
                         ::testing::Values(1, 2, 3, 5, 8, 10));

}  // namespace
}  // namespace multipub::geo
