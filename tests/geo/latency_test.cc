#include "geo/latency.h"

#include <gtest/gtest.h>

namespace multipub::geo {
namespace {

TEST(InterRegionLatency, DiagonalIsZero) {
  const auto m = InterRegionLatency::ec2_2016();
  for (std::size_t i = 0; i < m.size(); ++i) {
    const RegionId r{static_cast<RegionId::underlying_type>(i)};
    EXPECT_DOUBLE_EQ(m.at(r, r), 0.0);
  }
}

TEST(InterRegionLatency, Symmetric) {
  const auto m = InterRegionLatency::ec2_2016();
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < m.size(); ++j) {
      const RegionId a{static_cast<RegionId::underlying_type>(i)};
      const RegionId b{static_cast<RegionId::underlying_type>(j)};
      EXPECT_DOUBLE_EQ(m.at(a, b), m.at(b, a));
    }
  }
}

TEST(InterRegionLatency, Complete) {
  EXPECT_TRUE(InterRegionLatency::ec2_2016().complete());
  InterRegionLatency partial(3);
  EXPECT_FALSE(partial.complete());
  partial.set(RegionId{0}, RegionId{1}, 10);
  partial.set(RegionId{0}, RegionId{2}, 20);
  EXPECT_FALSE(partial.complete());
  partial.set(RegionId{1}, RegionId{2}, 30);
  EXPECT_TRUE(partial.complete());
}

TEST(InterRegionLatency, GeographicSanity) {
  const auto m = InterRegionLatency::ec2_2016();
  // Intra-continent pairs are much faster than cross-ocean pairs.
  const RegionId virginia{0}, california{1}, ireland{3}, frankfurt{4},
      tokyo{5}, sydney{8};
  EXPECT_LT(m.at(ireland, frankfurt), m.at(virginia, tokyo));
  EXPECT_LT(m.at(virginia, california), m.at(virginia, tokyo));
  EXPECT_LT(m.at(ireland, frankfurt), 20.0);
  EXPECT_GT(m.at(frankfurt, sydney), 100.0);
}

TEST(InterRegionLatency, PrefixIsTopLeftBlock) {
  const auto m = InterRegionLatency::ec2_2016();
  const auto p = m.prefix(4);
  ASSERT_EQ(p.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(p.at(RegionId{i}, RegionId{j}),
                       m.at(RegionId{i}, RegionId{j}));
    }
  }
  EXPECT_TRUE(p.complete());
}

TEST(ClientLatencyMap, AddAndLookup) {
  ClientLatencyMap map(3);
  const ClientId c = map.add_client(std::vector<Millis>{10, 20, 30});
  EXPECT_EQ(map.n_clients(), 1u);
  EXPECT_DOUBLE_EQ(map.at(c, RegionId{0}), 10);
  EXPECT_DOUBLE_EQ(map.at(c, RegionId{2}), 30);
}

TEST(ClientLatencyMap, IdsAreDense) {
  ClientLatencyMap map(2);
  const ClientId a = map.add_client(std::vector<Millis>{1, 2});
  const ClientId b = map.add_client(std::vector<Millis>{3, 4});
  EXPECT_EQ(a.value(), 0);
  EXPECT_EQ(b.value(), 1);
}

TEST(ClientLatencyMap, ClosestRegionRespectsCandidateSet) {
  ClientLatencyMap map(3);
  const ClientId c = map.add_client(std::vector<Millis>{50, 10, 30});

  EXPECT_EQ(map.closest_region(c, RegionSet::universe(3)), RegionId{1});
  // Region 1 excluded: next best is region 2.
  RegionSet without_1;
  without_1.add(RegionId{0});
  without_1.add(RegionId{2});
  EXPECT_EQ(map.closest_region(c, without_1), RegionId{2});
  EXPECT_DOUBLE_EQ(map.closest_latency(c, without_1), 30.0);
  // Single candidate.
  EXPECT_EQ(map.closest_region(c, RegionSet::single(RegionId{0})), RegionId{0});
}

TEST(ClientLatencyMap, ClosestRegionTieBreaksTowardsLowerId) {
  ClientLatencyMap map(3);
  const ClientId c = map.add_client(std::vector<Millis>{20, 20, 20});
  EXPECT_EQ(map.closest_region(c, RegionSet::universe(3)), RegionId{0});
}

TEST(ClientLatencyMap, RowSpanMatchesEntries) {
  ClientLatencyMap map(4);
  const ClientId c = map.add_client(std::vector<Millis>{1, 2, 3, 4});
  const auto row = map.row(c);
  ASSERT_EQ(row.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(row[i], static_cast<double>(i + 1));
  }
}

}  // namespace
}  // namespace multipub::geo
