#include "geo/synthetic.h"

#include <gtest/gtest.h>

namespace multipub::geo {
namespace {

TEST(SyntheticWorld, RequestedSize) {
  Rng rng(1);
  const auto world = synthesize_world(17, {}, rng);
  EXPECT_EQ(world.catalog.size(), 17u);
  EXPECT_EQ(world.backbone.size(), 17u);
  EXPECT_TRUE(world.backbone.complete());
}

TEST(SyntheticWorld, Deterministic) {
  Rng a(9), b(9);
  const auto w1 = synthesize_world(8, {}, a);
  const auto w2 = synthesize_world(8, {}, b);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(w1.catalog.at(RegionId{i}).internet_cost_per_gb,
                     w2.catalog.at(RegionId{i}).internet_cost_per_gb);
    for (int j = 0; j < 8; ++j) {
      EXPECT_DOUBLE_EQ(w1.backbone.at(RegionId{i}, RegionId{j}),
                       w2.backbone.at(RegionId{i}, RegionId{j}));
    }
  }
}

TEST(SyntheticWorld, TariffInvariants) {
  Rng rng(2);
  const SyntheticWorldParams params;
  const auto world = synthesize_world(32, params, rng);
  for (const auto& region : world.catalog.all()) {
    EXPECT_GE(region.inter_region_cost_per_gb, params.alpha_min);
    EXPECT_LE(region.inter_region_cost_per_gb, params.alpha_max);
    EXPECT_LE(region.inter_region_cost_per_gb, region.internet_cost_per_gb)
        << region.name;
    EXPECT_LE(region.internet_cost_per_gb, params.beta_max);
  }
}

TEST(SyntheticWorld, BackboneLatenciesWithinPlaneBounds) {
  Rng rng(3);
  SyntheticWorldParams params;
  params.extent_ms = 100.0;
  params.backbone_jitter_ms = 0.0;
  const auto world = synthesize_world(12, params, rng);
  const double max_possible =
      params.backbone_base_ms + params.backbone_stretch * 100.0 * 1.4143;
  for (int i = 0; i < 12; ++i) {
    for (int j = i + 1; j < 12; ++j) {
      const Millis latency = world.backbone.at(RegionId{i}, RegionId{j});
      EXPECT_GE(latency, params.backbone_base_ms);
      EXPECT_LE(latency, max_possible);
    }
  }
}

TEST(SyntheticWorld, SingleRegionWorldIsValid) {
  Rng rng(4);
  const auto world = synthesize_world(1, {}, rng);
  EXPECT_EQ(world.catalog.size(), 1u);
  EXPECT_DOUBLE_EQ(world.backbone.at(RegionId{0}, RegionId{0}), 0.0);
}

TEST(SyntheticWorld, NamesAreUnique) {
  Rng rng(5);
  const auto world = synthesize_world(20, {}, rng);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(world.catalog.find("syn-" + std::to_string(i)), RegionId{i});
  }
}

}  // namespace
}  // namespace multipub::geo
