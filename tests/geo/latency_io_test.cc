#include "geo/latency_io.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/optimizer.h"
#include "geo/king_synth.h"

namespace multipub::geo {
namespace {

TEST(LatencyIo, RoundTripsEc2Matrices) {
  const auto backbone = InterRegionLatency::ec2_2016();
  Rng rng(1);
  const auto pop = synthesize_population(RegionCatalog::ec2_2016(), backbone,
                                         3, {}, rng);

  const std::string text = serialize_latencies(backbone, pop.latencies);
  std::string error;
  const auto parsed = parse_latencies(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  ASSERT_EQ(parsed->backbone.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      EXPECT_DOUBLE_EQ(parsed->backbone.at(RegionId{i}, RegionId{j}),
                       backbone.at(RegionId{i}, RegionId{j}));
    }
  }
  ASSERT_EQ(parsed->clients.n_clients(), 30u);
  for (std::size_t c = 0; c < 30; ++c) {
    for (int r = 0; r < 10; ++r) {
      EXPECT_DOUBLE_EQ(
          parsed->clients.at(ClientId{static_cast<int>(c)}, RegionId{r}),
          pop.latencies.at(ClientId{static_cast<int>(c)}, RegionId{r}));
    }
  }
}

TEST(LatencyIo, UnreachableCellsRoundTrip) {
  ClientLatencyMap map(2);
  map.add_client(std::vector<Millis>{10.0, kUnreachable});
  const std::string text = serialize_latencies(InterRegionLatency{}, map);
  std::string error;
  const auto parsed = parse_latencies(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->clients.at(ClientId{0}, RegionId{1}), kUnreachable);
  EXPECT_DOUBLE_EQ(parsed->clients.at(ClientId{0}, RegionId{0}), 10.0);
}

TEST(LatencyIo, CommentsAndBlankLinesIgnored) {
  const char* text = R"(
# hand-measured backbone
backbone 2

0 12.5   # one-way ms
12.5 0
)";
  std::string error;
  const auto parsed = parse_latencies(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_DOUBLE_EQ(parsed->backbone.at(RegionId{0}, RegionId{1}), 12.5);
}

TEST(LatencyIo, RejectsAsymmetricBackbone) {
  std::string error;
  EXPECT_FALSE(parse_latencies("backbone 2\n0 5\n6 0\n", &error).has_value());
  EXPECT_NE(error.find("symmetric"), std::string::npos);
}

TEST(LatencyIo, RejectsNonZeroDiagonal) {
  std::string error;
  EXPECT_FALSE(parse_latencies("backbone 2\n1 5\n5 0\n", &error).has_value());
  EXPECT_NE(error.find("diagonal"), std::string::npos);
}

TEST(LatencyIo, RejectsTruncatedAndMalformed) {
  std::string error;
  EXPECT_FALSE(parse_latencies("backbone 3\n0 1 2\n", &error).has_value());
  EXPECT_FALSE(parse_latencies("backbone 2\n0 x\nx 0\n", &error).has_value());
  EXPECT_FALSE(parse_latencies("clients 2 2\n1 2\n", &error).has_value());
  EXPECT_FALSE(parse_latencies("wat 1\n", &error).has_value());
  EXPECT_FALSE(parse_latencies("backbone 0\n", &error).has_value());
}

TEST(LatencyIo, EmptyInputYieldsEmptyMatrices) {
  std::string error;
  const auto parsed = parse_latencies("", &error);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->backbone.size(), 0u);
  EXPECT_EQ(parsed->clients.n_clients(), 0u);
}

TEST(LatencyIo, ParsedMatricesDriveTheOptimizer) {
  // End-to-end: load matrices from text, optimize on them.
  const char* text = R"(
backbone 2
0 50
50 0
clients 3 2
10 90
15 95
80 12
)";
  std::string error;
  const auto parsed = parse_latencies(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  RegionCatalog catalog({
      {RegionId{}, "a", "A", 0.02, 0.09},
      {RegionId{}, "b", "B", 0.09, 0.14},
  });
  core::TopicState topic;
  topic.topic = TopicId{0};
  topic.constraint = {75.0, 200.0};
  topic.publishers = {{ClientId{0}, 10, 10240}};
  topic.subscribers = core::unit_subscribers({ClientId{1}, ClientId{2}});

  const core::Optimizer optimizer(catalog, parsed->backbone, parsed->clients);
  const auto result = optimizer.optimize(topic);
  EXPECT_TRUE(result.constraint_met);
}

}  // namespace
}  // namespace multipub::geo
