#include "geo/region.h"

#include <gtest/gtest.h>

namespace multipub::geo {
namespace {

TEST(RegionCatalog, Ec2HasTenRegionsInPaperOrder) {
  const auto catalog = RegionCatalog::ec2_2016();
  ASSERT_EQ(catalog.size(), 10u);
  EXPECT_EQ(catalog.at(RegionId{0}).name, "us-east-1");
  EXPECT_EQ(catalog.at(RegionId{4}).name, "eu-central-1");
  EXPECT_EQ(catalog.at(RegionId{5}).name, "ap-northeast-1");
  EXPECT_EQ(catalog.at(RegionId{9}).name, "sa-east-1");
}

TEST(RegionCatalog, TableOneTariffs) {
  const auto catalog = RegionCatalog::ec2_2016();
  // Spot-check the paper's Table I.
  const Region& virginia = catalog.at(RegionId{0});
  EXPECT_DOUBLE_EQ(virginia.inter_region_cost_per_gb, 0.02);
  EXPECT_DOUBLE_EQ(virginia.internet_cost_per_gb, 0.09);

  const Region& seoul = catalog.at(RegionId{6});
  EXPECT_DOUBLE_EQ(seoul.inter_region_cost_per_gb, 0.08);
  EXPECT_DOUBLE_EQ(seoul.internet_cost_per_gb, 0.126);

  const Region& sao_paulo = catalog.at(RegionId{9});
  EXPECT_DOUBLE_EQ(sao_paulo.inter_region_cost_per_gb, 0.16);
  EXPECT_DOUBLE_EQ(sao_paulo.internet_cost_per_gb, 0.25);
}

TEST(RegionCatalog, IdsAreDenseIndices) {
  const auto catalog = RegionCatalog::ec2_2016();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog.all()[i].id.index(), i);
  }
}

TEST(RegionCatalog, FindByName) {
  const auto catalog = RegionCatalog::ec2_2016();
  EXPECT_EQ(catalog.find("eu-west-1"), RegionId{3});
  EXPECT_FALSE(catalog.find("mars-north-1").valid());
}

TEST(RegionCatalog, PrefixKeepsOrderAndTariffs) {
  const auto catalog = RegionCatalog::ec2_2016();
  const auto five = catalog.prefix(5);
  ASSERT_EQ(five.size(), 5u);
  EXPECT_EQ(five.at(RegionId{4}).name, "eu-central-1");
  EXPECT_DOUBLE_EQ(five.at(RegionId{0}).internet_cost_per_gb, 0.09);
}

TEST(Region, PerByteTariffsScale) {
  const auto catalog = RegionCatalog::ec2_2016();
  const Region& tokyo = catalog.at(RegionId{5});
  EXPECT_DOUBLE_EQ(tokyo.alpha_per_byte() * kBytesPerGb, 0.09);
  EXPECT_DOUBLE_EQ(tokyo.beta_per_byte() * kBytesPerGb, 0.14);
}

TEST(RegionCatalog, AsiaAndSouthAmericaAreExpensive) {
  // The premise of the paper's Experiment 3: some regions' egress is much
  // pricier than others.
  const auto catalog = RegionCatalog::ec2_2016();
  const double cheap = catalog.at(RegionId{0}).internet_cost_per_gb;
  for (int i = 5; i <= 9; ++i) {
    EXPECT_GT(catalog.at(RegionId{i}).internet_cost_per_gb, cheap);
  }
}

}  // namespace
}  // namespace multipub::geo
