#include "geo/modern.h"

#include <gtest/gtest.h>

namespace multipub::geo {
namespace {

TEST(GreatCircleLatency, ZeroDistanceIsBaseOnly) {
  EXPECT_DOUBLE_EQ(great_circle_latency_ms(50.0, 8.0, 50.0, 8.0), 2.0);
}

TEST(GreatCircleLatency, KnownCityPairs) {
  // Dublin <-> London: ~460 km great circle -> ~4.9 ms one-way incl. base.
  const Millis dub_lon = great_circle_latency_ms(53.3, -6.3, 51.5, -0.1);
  EXPECT_GT(dub_lon, 3.0);
  EXPECT_LT(dub_lon, 7.0);

  // N. Virginia <-> Tokyo: ~11000 km -> ~70 ms one-way.
  const Millis iad_nrt = great_circle_latency_ms(38.9, -77.4, 35.7, 139.7);
  EXPECT_GT(iad_nrt, 55.0);
  EXPECT_LT(iad_nrt, 90.0);
}

TEST(GreatCircleLatency, SymmetricInArguments) {
  EXPECT_DOUBLE_EQ(great_circle_latency_ms(10, 20, 30, 40),
                   great_circle_latency_ms(30, 40, 10, 20));
}

class ModernAwsTest : public ::testing::Test {
 protected:
  ModernAwsWorld world_ = modern_aws_world();
};

TEST_F(ModernAwsTest, ThirtyRegions) {
  EXPECT_EQ(world_.catalog.size(), 30u);
  EXPECT_EQ(world_.backbone.size(), 30u);
  EXPECT_TRUE(world_.backbone.complete());
}

TEST_F(ModernAwsTest, LookupByModernNames) {
  EXPECT_TRUE(world_.catalog.find("eu-central-2").valid());
  EXPECT_TRUE(world_.catalog.find("ap-southeast-4").valid());
  EXPECT_TRUE(world_.catalog.find("af-south-1").valid());
  EXPECT_FALSE(world_.catalog.find("mars-north-1").valid());
}

TEST_F(ModernAwsTest, TariffInvariants) {
  for (const auto& region : world_.catalog.all()) {
    EXPECT_GT(region.internet_cost_per_gb, 0.0) << region.name;
    EXPECT_LE(region.inter_region_cost_per_gb, region.internet_cost_per_gb)
        << region.name;
  }
  // Cape Town and Sao Paulo remain the expensive outliers.
  const auto cheap = world_.catalog.find("us-east-1");
  const auto cape = world_.catalog.find("af-south-1");
  const auto sao = world_.catalog.find("sa-east-1");
  EXPECT_GT(world_.catalog.at(cape).internet_cost_per_gb,
            1.5 * world_.catalog.at(cheap).internet_cost_per_gb);
  EXPECT_GT(world_.catalog.at(sao).internet_cost_per_gb,
            1.5 * world_.catalog.at(cheap).internet_cost_per_gb);
}

TEST_F(ModernAwsTest, ContinentalClustersAreFast) {
  const auto at = [&](const char* a, const char* b) {
    return world_.backbone.at(world_.catalog.find(a),
                              world_.catalog.find(b));
  };
  EXPECT_LT(at("eu-west-1", "eu-west-2"), 8.0);       // Dublin-London
  EXPECT_LT(at("ap-northeast-1", "ap-northeast-3"), 8.0);  // Tokyo-Osaka
  EXPECT_LT(at("us-east-1", "us-east-2"), 8.0);       // Virginia-Ohio
  EXPECT_GT(at("eu-west-1", "ap-southeast-2"), 80.0);  // Dublin-Sydney
  EXPECT_GT(at("us-west-2", "af-south-1"), 70.0);      // Oregon-Cape Town
}

TEST_F(ModernAwsTest, Deterministic) {
  const auto again = modern_aws_world();
  for (std::size_t i = 0; i < 30; ++i) {
    for (std::size_t j = 0; j < 30; ++j) {
      EXPECT_DOUBLE_EQ(
          world_.backbone.at(RegionId{static_cast<int>(i)},
                             RegionId{static_cast<int>(j)}),
          again.backbone.at(RegionId{static_cast<int>(i)},
                            RegionId{static_cast<int>(j)}));
    }
  }
}

}  // namespace
}  // namespace multipub::geo
