#include "geo/king_synth.h"

#include <gtest/gtest.h>

namespace multipub::geo {
namespace {

class KingSynthTest : public ::testing::Test {
 protected:
  RegionCatalog catalog_ = RegionCatalog::ec2_2016();
  InterRegionLatency backbone_ = InterRegionLatency::ec2_2016();
  KingSynthParams params_;
};

TEST_F(KingSynthTest, PerRegionCountsAndHomes) {
  Rng rng(1);
  const auto pop = synthesize_population(catalog_, backbone_, 7, params_, rng);
  EXPECT_EQ(pop.size(), 70u);
  EXPECT_EQ(pop.latencies.n_clients(), 70u);
  for (const auto& region : catalog_.all()) {
    EXPECT_EQ(pop.clients_near(region.id).size(), 7u);
  }
}

TEST_F(KingSynthTest, HomeRegionIsActuallyClosest) {
  Rng rng(2);
  const auto pop = synthesize_population(catalog_, backbone_, 10, params_, rng);
  const RegionSet all = RegionSet::universe(catalog_.size());
  for (std::size_t i = 0; i < pop.size(); ++i) {
    const ClientId c{static_cast<ClientId::underlying_type>(i)};
    EXPECT_EQ(pop.latencies.closest_region(c, all), pop.home_region[i])
        << "client " << i;
  }
}

TEST_F(KingSynthTest, Deterministic) {
  Rng rng_a(99), rng_b(99);
  const auto a = synthesize_population(catalog_, backbone_, 5, params_, rng_a);
  const auto b = synthesize_population(catalog_, backbone_, 5, params_, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const ClientId c{static_cast<ClientId::underlying_type>(i)};
    for (std::size_t r = 0; r < catalog_.size(); ++r) {
      const RegionId region{static_cast<RegionId::underlying_type>(r)};
      EXPECT_DOUBLE_EQ(a.latencies.at(c, region), b.latencies.at(c, region));
    }
  }
}

TEST_F(KingSynthTest, ClientPathsAreSlowerThanBackbone) {
  // The substitution's key property: a client's path to a remote region is
  // at least as slow as last-mile + the backbone leg, so the inter-cloud
  // backbone is the fast path (what makes routed delivery attractive).
  Rng rng(3);
  const auto pop = synthesize_population(catalog_, backbone_, 5, params_, rng);
  for (std::size_t i = 0; i < pop.size(); ++i) {
    const ClientId c{static_cast<ClientId::underlying_type>(i)};
    const RegionId home = pop.home_region[i];
    const Millis lastmile = pop.latencies.at(c, home);
    for (std::size_t r = 0; r < catalog_.size(); ++r) {
      const RegionId region{static_cast<RegionId::underlying_type>(r)};
      EXPECT_GE(pop.latencies.at(c, region) + 1e-9,
                lastmile + backbone_.at(home, region))
          << "client " << i << " region " << r;
    }
  }
}

TEST_F(KingSynthTest, LocalPopulationHomesAtRequestedRegion) {
  Rng rng(4);
  const RegionId tokyo = catalog_.find("ap-northeast-1");
  const auto pop = synthesize_local_population(catalog_, backbone_, tokyo, 42,
                                               params_, rng);
  EXPECT_EQ(pop.size(), 42u);
  for (RegionId home : pop.home_region) {
    EXPECT_EQ(home, tokyo);
  }
}

TEST_F(KingSynthTest, LastMileDistributionIsPlausible) {
  Rng rng(5);
  const auto pop = synthesize_population(catalog_, backbone_, 50, params_, rng);
  double sum = 0.0;
  double max_seen = 0.0;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    const ClientId c{static_cast<ClientId::underlying_type>(i)};
    const Millis lastmile = pop.latencies.at(c, pop.home_region[i]);
    EXPECT_GT(lastmile, 0.0);
    sum += lastmile;
    max_seen = std::max(max_seen, lastmile);
  }
  const double mean = sum / static_cast<double>(pop.size());
  // Lognormal(median 18, sigma 0.45): mean around 18*exp(0.45^2/2) ~ 20.
  EXPECT_GT(mean, 12.0);
  EXPECT_LT(mean, 30.0);
  // Long tail exists but is bounded in practice.
  EXPECT_LT(max_seen, 200.0);
}

}  // namespace
}  // namespace multipub::geo
