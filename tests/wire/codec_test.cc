#include "wire/codec.h"

#include <gtest/gtest.h>

#include <vector>

namespace multipub::wire {
namespace {

Message sample_message() {
  Message msg;
  msg.type = MessageType::kPublish;
  msg.topic = TopicId{7};
  msg.publisher = ClientId{123};
  msg.subscriber = ClientId{456};
  msg.seq = 0xDEADBEEFCAFEULL;
  msg.published_at = 12345.678;
  msg.payload_bytes = 1024;
  msg.config_regions = geo::RegionSet(0b1011001);
  msg.config_mode = WireMode::kRouted;
  msg.key = 0x1122334455667788ULL;
  msg.filter = {100, 5000};
  return msg;
}

TEST(Codec, RoundTripPreservesEveryField) {
  const Message original = sample_message();
  const auto decoded = decode(encode(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
}

TEST(Codec, RoundTripAllMessageTypes) {
  for (auto type : {MessageType::kSubscribe, MessageType::kUnsubscribe,
                    MessageType::kPublish, MessageType::kForward,
                    MessageType::kDeliver, MessageType::kConfigUpdate}) {
    Message msg = sample_message();
    msg.type = type;
    const auto decoded = decode(encode(msg));
    ASSERT_TRUE(decoded.has_value()) << to_string(type);
    EXPECT_EQ(decoded->type, type);
  }
}

TEST(Codec, RoundTripInvalidIds) {
  Message msg = sample_message();
  msg.publisher = ClientId::invalid();
  msg.subscriber = ClientId::invalid();
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->publisher.valid());
  EXPECT_FALSE(decoded->subscriber.valid());
}

TEST(Codec, RejectsWrongSize) {
  const auto frame = encode(sample_message());
  EXPECT_FALSE(decode(std::span(frame).subspan(0, 10)).has_value());
  std::vector<std::byte> too_long(frame.begin(), frame.end());
  too_long.push_back(std::byte{0});
  EXPECT_FALSE(decode(too_long).has_value());
}

TEST(Codec, RejectsBadMagic) {
  auto frame = encode(sample_message());
  frame[0] = std::byte{0x00};
  EXPECT_FALSE(decode(frame).has_value());
}

TEST(Codec, RejectsUnknownVersion) {
  auto frame = encode(sample_message());
  frame[1] = std::byte{99};
  EXPECT_FALSE(decode(frame).has_value());
}

TEST(Codec, RejectsUnknownMessageType) {
  auto frame = encode(sample_message());
  frame[2] = std::byte{0};  // below kSubscribe
  EXPECT_FALSE(decode(frame).has_value());
  frame[2] = std::byte{200};
  EXPECT_FALSE(decode(frame).has_value());
}

TEST(Codec, RejectsUnknownMode) {
  auto frame = encode(sample_message());
  frame[3] = std::byte{7};
  EXPECT_FALSE(decode(frame).has_value());
}

TEST(Codec, FrameSizeIsStable) {
  // Wire compatibility: the v4 frame is exactly 88 bytes (v3's 80 plus the
  // trailing delivery_seq u64).
  EXPECT_EQ(encode(sample_message()).size(), kEncodedSize);
  EXPECT_EQ(kEncodedSize, 88u);
}

TEST(Codec, KeyFilterRoundTrips) {
  Message msg = sample_message();
  msg.filter = {42, 42};  // single-key filter
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->filter.matches(42));
  EXPECT_FALSE(decoded->filter.matches(43));
  EXPECT_FALSE(decoded->filter.match_all());
}

TEST(KeyFilter, Semantics) {
  EXPECT_TRUE(KeyFilter::all().match_all());
  EXPECT_TRUE(KeyFilter::all().matches(0));
  EXPECT_TRUE(KeyFilter::all().matches(~std::uint64_t{0}));
  const KeyFilter range{10, 20};
  EXPECT_FALSE(range.matches(9));
  EXPECT_TRUE(range.matches(10));
  EXPECT_TRUE(range.matches(20));
  EXPECT_FALSE(range.matches(21));
}

TEST(Message, BillableBytesOnlyForPublicationTraffic) {
  Message msg = sample_message();
  msg.payload_bytes = 4096;
  msg.type = MessageType::kPublish;
  EXPECT_EQ(msg.billable_bytes(), 4096u);
  msg.type = MessageType::kForward;
  EXPECT_EQ(msg.billable_bytes(), 4096u);
  msg.type = MessageType::kDeliver;
  EXPECT_EQ(msg.billable_bytes(), 4096u);
  msg.type = MessageType::kSubscribe;
  EXPECT_EQ(msg.billable_bytes(), 0u);
  msg.type = MessageType::kConfigUpdate;
  EXPECT_EQ(msg.billable_bytes(), 0u);
}

}  // namespace
}  // namespace multipub::wire
