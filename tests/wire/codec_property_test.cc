// Property test: encode/decode is a bijection on the message domain.
//
// Round-trips every MessageType — including the weighted cohort messages
// and the node-lifecycle protocol — across boundary weights and sequence
// numbers, first through the codec directly and then through a real
// TcpEndpoint loopback pair, so a field added to Message but forgotten in
// the codec (the fate of `weight` before v3) fails here immediately.
#include <gtest/gtest.h>

#include <vector>

#include "net/tcp.h"
#include "wire/codec.h"
#include "wire/message.h"

namespace multipub::wire {
namespace {

constexpr MessageType kAllTypes[] = {
    MessageType::kSubscribe,       MessageType::kUnsubscribe,
    MessageType::kPublish,         MessageType::kForward,
    MessageType::kDeliver,         MessageType::kConfigUpdate,
    MessageType::kPing,            MessageType::kPong,
    MessageType::kLatencyReport,   MessageType::kNodeHello,
    MessageType::kNodeWelcome,     MessageType::kPeerInfo,
    MessageType::kHeartbeat,       MessageType::kPhaseStart,
    MessageType::kPhaseDone,       MessageType::kReportPublisher,
    MessageType::kReportSubscriber, MessageType::kNodeBye,
    MessageType::kReportEnd,       MessageType::kReplayRequest,
    MessageType::kReplayBatch,     MessageType::kStateSnapshot,
    MessageType::kStateDelta,
};

constexpr std::uint32_t kBoundaryWeights[] = {0, 1, 2, 0xFFFFFFFFu};
constexpr std::uint64_t kBoundarySeqs[] = {0, 1, (std::uint64_t{1} << 39) - 1,
                                           ~std::uint64_t{0}};

/// Every combination of type x boundary weight x boundary seq, with the
/// remaining fields varied deterministically so no two messages collide.
std::vector<Message> boundary_messages() {
  std::vector<Message> out;
  int salt = 0;
  for (MessageType type : kAllTypes) {
    for (std::uint32_t weight : kBoundaryWeights) {
      for (std::uint64_t seq : kBoundarySeqs) {
        Message msg;
        msg.type = type;
        msg.topic = TopicId{salt % 7};
        msg.publisher = ClientId{salt % 11};
        msg.subscriber = ClientId{-1 + salt % 3};
        msg.seq = seq;
        msg.published_at = 0.25 * static_cast<double>(salt);
        msg.payload_bytes = static_cast<Bytes>(salt) << 10;
        msg.config_regions = geo::RegionSet(0x5A5A5A5Au ^ salt);
        msg.config_mode = salt % 2 == 0 ? WireMode::kDirect : WireMode::kRouted;
        msg.key = ~static_cast<std::uint64_t>(salt);
        msg.filter = {static_cast<std::uint64_t>(salt),
                      ~std::uint64_t{0} - static_cast<std::uint64_t>(salt)};
        msg.weight = weight;
        // The v4 field: exercised on every kind (the codec carries it
        // unconditionally), with its own boundary sweep below.
        msg.delivery_seq = ~seq + static_cast<std::uint64_t>(salt);
        out.push_back(msg);
        ++salt;
      }
    }
  }
  return out;
}

TEST(CodecProperty, EveryKindAndBoundaryRoundTripsThroughTheCodec) {
  for (const Message& msg : boundary_messages()) {
    const auto decoded = decode(encode(msg));
    ASSERT_TRUE(decoded.has_value()) << to_string(msg.type);
    EXPECT_EQ(*decoded, msg) << to_string(msg.type) << " weight=" << msg.weight
                             << " seq=" << msg.seq;
  }
}

TEST(CodecProperty, DeliverySeqSurvivesTheWireAtEveryBoundary) {
  // The exact regression codec v4 exists for: the broker's replay-ring
  // stamp must survive the frame on the kinds the reliability protocol
  // rides on.
  for (MessageType type :
       {MessageType::kDeliver, MessageType::kForward,
        MessageType::kReplayRequest, MessageType::kReplayBatch,
        MessageType::kStateSnapshot, MessageType::kStateDelta}) {
    for (std::uint64_t stamp : kBoundarySeqs) {
      Message msg;
      msg.type = type;
      msg.delivery_seq = stamp;
      const auto decoded = decode(encode(msg));
      ASSERT_TRUE(decoded.has_value()) << to_string(type);
      EXPECT_EQ(decoded->delivery_seq, stamp) << to_string(type);
    }
  }
}

TEST(CodecProperty, ReservedWordRejectionSurvivesTheV4Extension) {
  // delivery_seq lives at offset 80, AFTER the reserved word at 76: the v4
  // extension must not have repurposed (or stopped checking) the reserved
  // word. Every single-bit pollution of it must still be rejected.
  Message msg;
  msg.type = MessageType::kReplayBatch;
  msg.delivery_seq = 0x0123456789ABCDEFull;
  auto frame = encode(msg);
  ASSERT_TRUE(decode(frame).has_value());
  for (int bit = 0; bit < 32; ++bit) {
    auto polluted = frame;
    polluted[76 + static_cast<std::size_t>(bit) / 8] |=
        static_cast<std::byte>(1u << (bit % 8));
    EXPECT_FALSE(decode(polluted).has_value()) << "bit " << bit;
  }
}

TEST(CodecProperty, WeightSurvivesTheWire) {
  // The exact regression codec v3 exists for: a cohort fan-out message's
  // weight must not silently collapse back to 1.
  Message cohort;
  cohort.type = MessageType::kDeliver;
  cohort.weight = 4096;
  const auto decoded = decode(encode(cohort));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->weight, 4096u);
}

TEST(CodecProperty, EveryKindAndBoundaryRoundTripsThroughALoopbackPair) {
  const std::vector<Message> sent = boundary_messages();

  std::vector<Message> inbox;
  net::TcpEndpoint server([&](const Message& m) { inbox.push_back(m); });
  ASSERT_TRUE(server.listen(0));
  net::TcpEndpoint client([](const Message&) {});
  const int peer = client.connect_to(server.port());
  ASSERT_GE(peer, 0);

  for (const Message& msg : sent) {
    ASSERT_TRUE(client.send(peer, msg));
  }
  for (int round = 0; round < 2000 && inbox.size() < sent.size(); ++round) {
    client.poll(5);
    server.poll(5);
  }
  ASSERT_EQ(inbox.size(), sent.size());
  EXPECT_EQ(server.corrupt_frames(), 0u);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    ASSERT_EQ(inbox[i], sent[i]) << "index " << i;
  }
}

}  // namespace
}  // namespace multipub::wire
