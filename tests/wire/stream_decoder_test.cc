// Property test: the resumable StreamDecoder is equivalent to one-shot
// decoding no matter where the stream fragments.
//
// A TCP read can end at ANY byte offset, so for every v4 message kind the
// encoded record is split at every byte boundary across two reads — and
// across every pair of boundaries for three reads — and must decode to
// exactly the one-shot result. The same holds through the zero-copy
// write_window()/commit() intake the socket transport uses, and with the
// 12-byte envelope prefix handed back per record.
#include "wire/stream_decoder.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "wire/codec.h"
#include "wire/message.h"

namespace multipub::wire {
namespace {

constexpr MessageType kAllTypes[] = {
    MessageType::kSubscribe,       MessageType::kUnsubscribe,
    MessageType::kPublish,         MessageType::kForward,
    MessageType::kDeliver,         MessageType::kConfigUpdate,
    MessageType::kPing,            MessageType::kPong,
    MessageType::kLatencyReport,   MessageType::kNodeHello,
    MessageType::kNodeWelcome,     MessageType::kPeerInfo,
    MessageType::kHeartbeat,       MessageType::kPhaseStart,
    MessageType::kPhaseDone,       MessageType::kReportPublisher,
    MessageType::kReportSubscriber, MessageType::kNodeBye,
    MessageType::kReportEnd,       MessageType::kReplayRequest,
    MessageType::kReplayBatch,     MessageType::kStateSnapshot,
    MessageType::kStateDelta,
};

/// One deterministic representative per kind, all fields populated so a
/// mid-field split has real bytes on both sides.
Message sample(MessageType type, int salt) {
  Message msg;
  msg.type = type;
  msg.topic = TopicId{salt % 5};
  msg.publisher = ClientId{salt % 13};
  msg.subscriber = ClientId{-1 + salt % 4};
  msg.seq = 0x0123456789ABCDEFull ^ static_cast<std::uint64_t>(salt);
  msg.published_at = 1.5 * static_cast<double>(salt);
  msg.payload_bytes = static_cast<Bytes>(salt + 1) << 9;
  msg.config_regions = geo::RegionSet(0xA5A5A5A5u ^ salt);
  msg.config_mode = salt % 2 == 0 ? WireMode::kDirect : WireMode::kRouted;
  msg.key = ~static_cast<std::uint64_t>(salt * 7919);
  msg.filter = {static_cast<std::uint64_t>(salt),
                ~std::uint64_t{0} - static_cast<std::uint64_t>(salt)};
  msg.weight = 1 + static_cast<std::uint32_t>(salt) * 1013u;
  msg.delivery_seq = static_cast<std::uint64_t>(salt) << 32 | 0xFEEDu;
  return msg;
}

std::span<const std::byte> as_span(const EncodedMessage& frame) {
  return {frame.data(), frame.size()};
}

TEST(StreamDecoder, EveryKindSplitAtEveryBoundaryAcrossTwoReads) {
  int salt = 0;
  for (MessageType type : kAllTypes) {
    const Message msg = sample(type, salt++);
    const EncodedMessage frame = encode(msg);
    for (std::size_t cut = 0; cut <= frame.size(); ++cut) {
      StreamDecoder decoder;
      decoder.feed(as_span(frame).first(cut));
      if (cut < frame.size()) {
        EXPECT_FALSE(decoder.next().has_value())
            << to_string(type) << " yielded a record from " << cut
            << " of " << frame.size() << " bytes";
      }
      decoder.feed(as_span(frame).subspan(cut));
      const auto decoded = decoder.next();
      ASSERT_TRUE(decoded.has_value())
          << to_string(type) << " split at " << cut;
      EXPECT_EQ(*decoded, msg) << to_string(type) << " split at " << cut;
      EXPECT_EQ(decoder.buffered(), 0u);
      EXPECT_FALSE(decoder.next().has_value());
    }
  }
}

TEST(StreamDecoder, EveryKindSplitAtEveryBoundaryPairAcrossThreeReads) {
  int salt = 100;
  for (MessageType type : kAllTypes) {
    const Message msg = sample(type, salt++);
    const EncodedMessage frame = encode(msg);
    for (std::size_t first = 0; first <= frame.size(); ++first) {
      for (std::size_t second = first; second <= frame.size(); ++second) {
        StreamDecoder decoder;
        decoder.feed(as_span(frame).first(first));
        decoder.feed(as_span(frame).subspan(first, second - first));
        decoder.feed(as_span(frame).subspan(second));
        const auto decoded = decoder.next();
        ASSERT_TRUE(decoded.has_value())
            << to_string(type) << " split at " << first << "/" << second;
        ASSERT_EQ(*decoded, msg)
            << to_string(type) << " split at " << first << "/" << second;
      }
    }
  }
}

TEST(StreamDecoder, WriteWindowIntakeIsEquivalentToFeed) {
  const Message msg = sample(MessageType::kDeliver, 42);
  const EncodedMessage frame = encode(msg);
  // Worst case: one commit per byte, forcing every possible resume point
  // through the zero-copy path.
  StreamDecoder decoder;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::byte* window = decoder.write_window(1);
    window[0] = frame[i];
    decoder.commit(1);
  }
  const auto decoded = decoder.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(StreamDecoder, HeaderBytesRideAlongEachRecord) {
  constexpr std::size_t kHeader = 12;
  StreamDecoder decoder(kHeader);
  EXPECT_EQ(decoder.record_bytes(), kHeader + kEncodedSize);

  std::vector<Message> sent;
  for (int i = 0; i < 3; ++i) {
    const Message msg = sample(MessageType::kPublish, 200 + i);
    sent.push_back(msg);
    std::byte header[kHeader];
    for (std::size_t b = 0; b < kHeader; ++b) {
      header[b] = static_cast<std::byte>(i * 16 + static_cast<int>(b));
    }
    decoder.feed({header, kHeader});
    decoder.feed(as_span(encode(msg)));
  }
  for (int i = 0; i < 3; ++i) {
    std::span<const std::byte> header;
    const auto decoded = decoder.next(&header);
    ASSERT_TRUE(decoded.has_value()) << "record " << i;
    EXPECT_EQ(*decoded, sent[static_cast<std::size_t>(i)]);
    ASSERT_EQ(header.size(), kHeader);
    for (std::size_t b = 0; b < kHeader; ++b) {
      EXPECT_EQ(static_cast<int>(header[b]), i * 16 + static_cast<int>(b));
    }
  }
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(StreamDecoder, SustainedStreamStaysBoundedAndInOrder) {
  StreamDecoder decoder;
  std::uint64_t next_seq = 0;
  std::uint64_t expect_seq = 0;
  // Push far past the compaction threshold in awkward 100-byte slabs so
  // records keep straddling intake boundaries.
  std::vector<std::byte> pending;
  for (int round = 0; round < 5000; ++round) {
    Message msg = sample(MessageType::kForward, 3);
    msg.seq = next_seq++;
    const EncodedMessage frame = encode(msg);
    pending.insert(pending.end(), frame.begin(), frame.end());
    while (pending.size() >= 100) {
      decoder.feed({pending.data(), 100});
      pending.erase(pending.begin(), pending.begin() + 100);
      while (const auto decoded = decoder.next()) {
        EXPECT_EQ(decoded->seq, expect_seq++);
      }
    }
    ASSERT_LT(decoder.buffered(), decoder.record_bytes());
  }
  decoder.feed({pending.data(), pending.size()});
  while (const auto decoded = decoder.next()) {
    EXPECT_EQ(decoded->seq, expect_seq++);
  }
  EXPECT_EQ(expect_seq, next_seq);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(StreamDecoder, CorruptRecordPoisonsTheStreamUntilReset) {
  StreamDecoder decoder;
  std::vector<std::byte> garbage(kEncodedSize, std::byte{0x5C});
  decoder.feed({garbage.data(), garbage.size()});
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.corrupt());

  // A healthy record after the corruption must NOT decode: framing is lost.
  decoder.feed(as_span(encode(sample(MessageType::kPublish, 7))));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.corrupt());

  // reset() models the reconnect: clean slate.
  decoder.reset();
  EXPECT_FALSE(decoder.corrupt());
  EXPECT_EQ(decoder.buffered(), 0u);
  const Message msg = sample(MessageType::kPublish, 8);
  decoder.feed(as_span(encode(msg)));
  const auto decoded = decoder.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(StreamDecoder, ResetDropsAPartialRecord) {
  StreamDecoder decoder;
  const EncodedMessage frame = encode(sample(MessageType::kPing, 9));
  decoder.feed(as_span(frame).first(kEncodedSize / 2));
  EXPECT_GT(decoder.buffered(), 0u);
  decoder.reset();
  EXPECT_EQ(decoder.buffered(), 0u);

  // The next full record decodes from a clean frame boundary.
  const Message msg = sample(MessageType::kPong, 10);
  decoder.feed(as_span(encode(msg)));
  const auto decoded = decoder.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

}  // namespace
}  // namespace multipub::wire
