// Codec robustness: decode() must never crash, loop or accept garbage as a
// valid frame silently — whatever bytes arrive from the network.
#include <gtest/gtest.h>

#include <random>

#include "wire/codec.h"

namespace multipub::wire {
namespace {

class CodecFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CodecFuzz, RandomBytesNeverCrash) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::uniform_int_distribution<std::size_t> size_dist(0, 2 * kEncodedSize);

  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::byte> junk(size_dist(rng));
    for (auto& b : junk) b = static_cast<std::byte>(byte_dist(rng));
    const auto decoded = decode(junk);
    if (junk.size() != kEncodedSize) {
      EXPECT_FALSE(decoded.has_value());
      continue;
    }
    // Even size-correct random frames must carry the magic to pass.
    if (decoded.has_value()) {
      EXPECT_EQ(junk[0], static_cast<std::byte>(kMagic));
      EXPECT_EQ(junk[1], static_cast<std::byte>(kVersion));
    }
  }
}

TEST_P(CodecFuzz, BitFlippedFramesEitherRejectOrStayWellFormed) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  std::uniform_int_distribution<std::size_t> pos_dist(0, kEncodedSize - 1);
  std::uniform_int_distribution<int> bit_dist(0, 7);

  Message msg;
  msg.type = MessageType::kPublish;
  msg.topic = TopicId{1};
  msg.publisher = ClientId{2};
  msg.seq = 33;
  msg.published_at = 99.5;
  msg.payload_bytes = 512;

  for (int trial = 0; trial < 2000; ++trial) {
    auto frame = encode(msg);
    const std::size_t pos = pos_dist(rng);
    frame[pos] ^= static_cast<std::byte>(1 << bit_dist(rng));
    const auto decoded = decode(frame);
    if (!decoded.has_value()) continue;  // rejected: fine
    // Accepted: the decoded message must re-encode to the same frame
    // (decode is the inverse of encode on its accepted domain).
    EXPECT_EQ(encode(*decoded), frame);
  }
}

TEST_P(CodecFuzz, RandomMessagesRoundTrip) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  std::uniform_int_distribution<int> type_dist(1, 9);
  std::uniform_int_distribution<std::int32_t> id_dist(-1, 1 << 20);
  std::uniform_int_distribution<std::uint64_t> u64_dist;
  std::uniform_real_distribution<double> time_dist(0.0, 1e9);

  for (int trial = 0; trial < 2000; ++trial) {
    Message msg;
    msg.type = static_cast<MessageType>(type_dist(rng));
    msg.topic = TopicId{id_dist(rng)};
    msg.publisher = ClientId{id_dist(rng)};
    msg.subscriber = ClientId{id_dist(rng)};
    msg.seq = u64_dist(rng);
    msg.published_at = time_dist(rng);
    msg.payload_bytes = u64_dist(rng);
    msg.config_regions = geo::RegionSet(u64_dist(rng));
    msg.config_mode = static_cast<WireMode>(trial % 2);
    msg.key = u64_dist(rng);
    msg.filter = {u64_dist(rng), u64_dist(rng)};
    const auto decoded = decode(encode(msg));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, msg);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Range(0, 5));

}  // namespace
}  // namespace multipub::wire
