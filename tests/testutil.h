// Shared test fixtures: tiny hand-checkable worlds.
//
// Most unit tests want a latency world small enough that expected delivery
// times and costs can be computed with pencil and paper. TinyWorld provides
// 3 regions and 4 clients with round, distinct numbers.
#pragma once

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "core/topic_state.h"
#include "geo/latency.h"
#include "geo/region.h"
#include "sim/fault_schedule.h"

namespace multipub::testutil {

/// Three regions:
///   A (id 0): alpha $0.02/GB, beta $0.09/GB   (cheap, "us-east")
///   B (id 1): alpha $0.09/GB, beta $0.14/GB   (expensive, "tokyo")
///   C (id 2): alpha $0.16/GB, beta $0.25/GB   (most expensive, "sao-paulo")
/// Backbone one-way latencies: A-B 80, A-C 60, B-C 130.
///
/// Four clients (rows of L, latencies to A, B, C):
///   client 0 ("near A"):  10, 100,  80
///   client 1 ("near A2"): 20, 110,  90
///   client 2 ("near B"): 105,  15, 150
///   client 3 ("near C"):  85, 160,  12
struct TinyWorld {
  geo::RegionCatalog catalog;
  geo::InterRegionLatency backbone;
  geo::ClientLatencyMap clients;

  static constexpr RegionId kA{0};
  static constexpr RegionId kB{1};
  static constexpr RegionId kC{2};

  static constexpr ClientId kNearA{0};
  static constexpr ClientId kNearA2{1};
  static constexpr ClientId kNearB{2};
  static constexpr ClientId kNearC{3};

  TinyWorld() {
    catalog = geo::RegionCatalog({
        {RegionId{}, "region-a", "A", 0.02, 0.09},
        {RegionId{}, "region-b", "B", 0.09, 0.14},
        {RegionId{}, "region-c", "C", 0.16, 0.25},
    });
    backbone = geo::InterRegionLatency(3);
    backbone.set(kA, kB, 80.0);
    backbone.set(kA, kC, 60.0);
    backbone.set(kB, kC, 130.0);

    clients = geo::ClientLatencyMap(3);
    add_client({10, 100, 80});
    add_client({20, 110, 90});
    add_client({105, 15, 150});
    add_client({85, 160, 12});
  }

  ClientId add_client(std::vector<Millis> row) {
    return clients.add_client(row);
  }
};

/// A topic over the TinyWorld: publisher near A sending `msg_count`
/// messages of `msg_bytes`, subscribers near A2, B and C.
[[nodiscard]] inline core::TopicState tiny_topic(
    std::uint64_t msg_count = 10, Bytes msg_bytes = 1000,
    double ratio = 75.0, Millis max_t = kUnreachable) {
  core::TopicState topic;
  topic.topic = TopicId{0};
  topic.constraint = {ratio, max_t};
  topic.publishers = {{TinyWorld::kNearA, msg_count, msg_count * msg_bytes}};
  topic.subscribers = core::unit_subscribers(
      {TinyWorld::kNearA2, TinyWorld::kNearB, TinyWorld::kNearC});
  return topic;
}

/// Reconstructs a fault schedule from the literal the chaos harness prints
/// in its oracle reports ("fault ..." lines). Regression tests paste that
/// string verbatim; aborts the test on parse errors so a stale literal is
/// loud, not silently empty.
[[nodiscard]] inline sim::FaultSchedule chaos_schedule(std::string_view text) {
  std::string error;
  auto schedule = sim::parse_fault_schedule(text, &error);
  if (!schedule) {
    ADD_FAILURE() << "bad chaos schedule literal: " << error;
    return {};
  }
  return *schedule;
}

}  // namespace multipub::testutil
