// Chaos harness: oracle unit tests (one positive + one negative per
// oracle), end-to-end campaigns (bit-reproducibility, healthy runs under
// faults, deliberately-broken invariants caught and shrunk to minimal
// schedules), and a bounded soak.
#include "sim/chaos.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "sim/fault_schedule.h"
#include "sim/scenario.h"
#include "testutil.h"

namespace multipub::sim {
namespace {

bool has_oracle(const std::vector<OracleViolation>& violations,
                const std::string& oracle) {
  return std::any_of(
      violations.begin(), violations.end(),
      [&](const OracleViolation& v) { return v.oracle == oracle; });
}

/// A healthy observation every oracle accepts; tests flip one field each.
RoundObservation healthy_observation() {
  RoundObservation obs;
  obs.round = 5;
  obs.clean_streak = 3;
  obs.pending_events = 0;
  obs.sent = 100;
  obs.delivered = 90;
  obs.dropped = 12;
  obs.dropped_sender_down = 2;  // 100 == 90 + 12 - 2
  obs.ledger_total = 1.25;
  obs.topic_total = 1.25;
  obs.universe = geo::RegionSet::universe(4);
  obs.have_deployed = true;
  obs.deployed = {geo::RegionSet(0b0011), core::DeliveryMode::kDirect};
  return obs;
}

TEST(InvariantOracles, HealthyObservationPassesAll) {
  EXPECT_TRUE(check_invariants(healthy_observation()).empty());
}

TEST(InvariantOracles, CostConservation) {
  auto obs = healthy_observation();
  obs.topic_total = 1.25 + 1e-12;  // summation-order noise is fine
  EXPECT_FALSE(has_oracle(check_invariants(obs), "cost-conservation"));

  obs.topic_total = 1.30;  // a whole missing billing is not
  EXPECT_TRUE(has_oracle(check_invariants(obs), "cost-conservation"));
}

TEST(InvariantOracles, CounterConservation) {
  auto obs = healthy_observation();
  obs.pending_events = 3;
  EXPECT_TRUE(has_oracle(check_invariants(obs), "counter-conservation"));

  obs = healthy_observation();
  obs.delivered = 91;  // one message both delivered and dropped
  EXPECT_TRUE(has_oracle(check_invariants(obs), "counter-conservation"));
  obs.dropped = 13;
  obs.sent = 102;
  EXPECT_FALSE(has_oracle(check_invariants(obs), "counter-conservation"));
}

TEST(InvariantOracles, DeadRegionSilence) {
  auto obs = healthy_observation();
  obs.down_set = geo::RegionSet::single(RegionId{2});
  obs.deployed = {geo::RegionSet(0b0011), core::DeliveryMode::kDirect};
  obs.down_regions.push_back({RegionId{2}, 0, 0});
  EXPECT_TRUE(check_invariants(obs).empty());

  obs.down_regions[0].broker_delta = 7;  // a dead broker forwarded traffic
  EXPECT_TRUE(has_oracle(check_invariants(obs), "dead-region-silence"));

  obs.down_regions[0].broker_delta = 0;
  obs.down_regions[0].egress_delta = 1024;  // a dead region billed egress
  EXPECT_TRUE(has_oracle(check_invariants(obs), "dead-region-silence"));
}

TEST(InvariantOracles, DeadRegionExclusion) {
  auto obs = healthy_observation();
  obs.down_set = geo::RegionSet::single(RegionId{3});
  EXPECT_FALSE(has_oracle(check_invariants(obs), "dead-region-exclusion"));

  obs.down_set = geo::RegionSet::single(RegionId{1});  // inside deployed
  EXPECT_TRUE(has_oracle(check_invariants(obs), "dead-region-exclusion"));

  // Everything down: the controller deliberately keeps the last candidate
  // set, so the oracle stands down.
  obs.down_set = geo::RegionSet::universe(4);
  EXPECT_FALSE(has_oracle(check_invariants(obs), "dead-region-exclusion"));
}

TEST(InvariantOracles, ControllerConvergence) {
  auto obs = healthy_observation();
  obs.check_convergence = true;
  obs.analytic = obs.deployed;
  EXPECT_TRUE(check_invariants(obs).empty());

  obs.analytic = {geo::RegionSet(0b0100), core::DeliveryMode::kRouted};
  EXPECT_TRUE(has_oracle(check_invariants(obs), "controller-convergence"));
}

TEST(InvariantOracles, ConstraintConformance) {
  auto obs = healthy_observation();
  obs.check_conformance = true;
  obs.max_t = 150.0;
  obs.measured_percentile = 149.0;
  EXPECT_TRUE(check_invariants(obs).empty());

  obs.measured_percentile = 151.0;
  EXPECT_TRUE(has_oracle(check_invariants(obs), "constraint-conformance"));
}

TEST(InvariantOracles, NoDuplicate) {
  auto obs = healthy_observation();
  obs.reliable = true;
  obs.recorded_duplicates = 0;
  EXPECT_TRUE(check_invariants(obs).empty());

  obs.recorded_duplicates = 2;
  EXPECT_TRUE(has_oracle(check_invariants(obs), "no-duplicate"));

  // The oracle is armed by the reliable mode, not by the books alone.
  obs.reliable = false;
  EXPECT_FALSE(has_oracle(check_invariants(obs), "no-duplicate"));
}

TEST(InvariantOracles, ZeroMessageLoss) {
  auto obs = healthy_observation();
  obs.reliable = true;
  obs.check_zero_loss = true;
  obs.have_audience = true;
  obs.published = 100;
  obs.publish_drops = 3;  // never reached a broker
  obs.crash_lost = 2;     // died inside a crashed broker
  obs.min_unique = 95;    // exactly the repairable floor
  EXPECT_TRUE(check_invariants(obs).empty());

  // >= not ==: a subscriber may hold a crash-lost publication it received
  // before the crash.
  obs.min_unique = 97;
  EXPECT_TRUE(check_invariants(obs).empty());

  obs.min_unique = 94;  // one repairable publication genuinely missing
  EXPECT_TRUE(has_oracle(check_invariants(obs), "zero-message-loss"));

  // Stands down off clean rounds and without a match-all audience.
  obs.check_zero_loss = false;
  EXPECT_TRUE(check_invariants(obs).empty());
  obs.check_zero_loss = true;
  obs.have_audience = false;
  EXPECT_TRUE(check_invariants(obs).empty());
}

TEST(InvariantOracles, BoundedReplicationLag) {
  auto obs = healthy_observation();
  obs.reliable = true;
  obs.check_replication = true;
  obs.replication.push_back({RegionId{0}, 7, 7});
  obs.replication.push_back({RegionId{2}, 0, 0});  // no mutations yet
  EXPECT_TRUE(check_invariants(obs).empty());

  obs.replication[0].applied_seq = 6;  // standby trails its primary
  EXPECT_TRUE(has_oracle(check_invariants(obs), "bounded-replication-lag"));

  obs.check_replication = false;  // only checked after a clean sync pass
  EXPECT_TRUE(check_invariants(obs).empty());
}

/// End-to-end campaigns over the failure-test workload: clients split
/// across two continents, a bound tight enough that outages force real
/// reconfigurations. Parameterized over the data-plane tuning — shard
/// count, shard placement and window policy (DESIGN.md §14) — every
/// campaign, including the negative-path ones with their shrunk repro
/// schedules, must behave identically whether the plane runs
/// single-threaded or sharded across workers under any tuning.
using ChaosDataPlaneTuning =
    std::tuple<std::uint32_t, net::ShardPlacement, net::WindowPolicy>;

class ChaosCampaignTest
    : public ::testing::TestWithParam<ChaosDataPlaneTuning> {
 protected:
  ChaosCampaignTest() : rng_(101) {
    WorkloadSpec workload;
    workload.interval_seconds = 5.0;
    workload.ratio = 95.0;
    workload.max_t = 150.0;
    scenario_ = make_scenario({{RegionId{0}, 2, 4}, {RegionId{5}, 2, 4}},
                              workload, rng_);
    options_.rounds = 10;
    options_.interval_seconds = 5.0;
    std::tie(options_.shards, options_.placement, options_.window_policy) =
        GetParam();
  }

  /// Outage + partition + drop + delay, faults clear by round 6 so the
  /// convergence oracles arm for the tail.
  FaultSchedule mixed_schedule() {
    return testutil::chaos_schedule(
        "fault outage ap-northeast-1 2 2\n"
        "fault partition us-east-1 ap-northeast-1 1 1\n"
        "fault delay region:* region:* 4 1 2.0 20\n"
        "fault drop ap-northeast-1 * 5 1 0.25\n");
  }

  Rng rng_;
  Scenario scenario_;
  ChaosOptions options_;
};

TEST_P(ChaosCampaignTest, HealthySystemSurvivesMixedFaults) {
  ChaosRunner runner(scenario_, options_);
  const ChaosReport report = runner.run_schedule(mixed_schedule(), 42);
  EXPECT_TRUE(report.passed()) << report.render();
  EXPECT_GT(report.deliveries, 0u);
}

TEST_P(ChaosCampaignTest, SameSeedProducesBitIdenticalReports) {
  ChaosRunner runner(scenario_, options_);
  const ChaosReport a = runner.run(4242);
  const ChaosReport b = runner.run(4242);
  EXPECT_EQ(a.render(), b.render());
  EXPECT_EQ(a.schedule, b.schedule);

  const ChaosReport c = runner.run(4243);
  EXPECT_NE(a.render(), c.render());  // the seed actually matters
}

TEST_P(ChaosCampaignTest, GeneratedSchedulesAreValidAndRoundTrip) {
  Rng rng(9);
  const FaultSchedule schedule = generate_schedule(scenario_, options_, rng);
  EXPECT_EQ(schedule.size(),
            static_cast<std::size_t>(options_.fault_events));
  for (const auto& event : schedule) {
    EXPECT_GE(event.start_round, 0);
    // Clean tail: every fault clears k+1 rounds before the end.
    EXPECT_LE(event.start_round + event.rounds,
              options_.rounds - options_.convergence_rounds - 1);
  }
  std::string error;
  const auto reparsed =
      parse_fault_schedule(format_fault_schedule(schedule), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(schedule, *reparsed);
}

TEST_P(ChaosCampaignTest, BrokenOutageExclusionIsCaughtAndShrunk) {
  options_.break_outage_exclusion = true;
  ChaosRunner runner(scenario_, options_);
  const ChaosReport report = runner.run_schedule(mixed_schedule(), 42);

  ASSERT_FALSE(report.passed());
  EXPECT_EQ(report.minimal_oracle, "dead-region-exclusion");
  // The acceptance bar: a minimal schedule of at most 3 fault events (here
  // it should be exactly the outage).
  EXPECT_LE(report.minimal_schedule.size(), 3u);
  ASSERT_EQ(report.minimal_schedule.size(), 1u);
  EXPECT_EQ(report.minimal_schedule[0].kind, FaultEvent::Kind::kOutage);

  // The printed repro really is pasteable: round-trip it through the
  // testutil helper and it reproduces the violation from scratch.
  const FaultSchedule repro = testutil::chaos_schedule(
      format_fault_schedule(report.minimal_schedule));
  ChaosOptions probe_options = options_;
  probe_options.rounds = report.minimal_rounds;
  probe_options.shrink_on_failure = false;
  ChaosRunner probe(scenario_, probe_options);
  const ChaosReport confirmed = probe.run_schedule(repro, report.seed);
  ASSERT_FALSE(confirmed.passed());
  EXPECT_EQ(confirmed.violations.front().oracle, "dead-region-exclusion");
}

TEST_P(ChaosCampaignTest, FrozenControlPlaneFailsConvergence) {
  options_.freeze_control_plane = true;
  ChaosRunner runner(scenario_, options_);
  const ChaosReport report = runner.run_schedule({}, 42);

  ASSERT_FALSE(report.passed());
  EXPECT_EQ(report.minimal_oracle, "controller-convergence");
  // The defect is fault-independent, so the shrinker ends at zero events.
  EXPECT_TRUE(report.minimal_schedule.empty());
}

TEST_P(ChaosCampaignTest, ReportRenderIsDeterministicAndComplete) {
  options_.break_outage_exclusion = true;
  ChaosRunner runner(scenario_, options_);
  const ChaosReport report = runner.run_schedule(mixed_schedule(), 42);
  const std::string text = report.render();
  EXPECT_NE(text.find("seed=42"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  EXPECT_NE(text.find("minimal repro"), std::string::npos);
  EXPECT_NE(text.find("fault outage ap-northeast-1"), std::string::npos);
}

TEST_P(ChaosCampaignTest, BoundedSoakAcrossSeedsAndPaths) {
  // A small randomized campaign per (seed, data-plane path): generated
  // schedules, all oracles armed. Kept bounded — this is the tier-1 smoke;
  // the CI soak target runs longer campaigns. The seed scheduling path only
  // exists single-threaded, so the sharded campaigns pin fast_path on.
  options_.rounds = 8;
  for (const bool fast_path : {true, false}) {
    if (!fast_path && options_.shards > 1) continue;
    options_.fast_path = fast_path;
    ChaosRunner runner(scenario_, options_);
    for (const std::uint64_t seed : {11u, 12u, 13u}) {
      const ChaosReport report = runner.run(seed);
      EXPECT_TRUE(report.passed())
          << "fast_path=" << fast_path << "\n" << report.render();
    }
  }
}

std::string chaos_tuning_name(
    const ::testing::TestParamInfo<ChaosDataPlaneTuning>& info) {
  const auto [shards, placement, policy] = info.param;
  if (shards == 1) return "Shards1";
  std::string name = "Shards" + std::to_string(shards);
  name += placement == net::ShardPlacement::kRoundRobin ? "RoundRobin"
                                                        : "Topology";
  name += policy == net::WindowPolicy::kFixed ? "Fixed" : "Adaptive";
  return name;
}

// The single-threaded baseline once (tuning is irrelevant at K = 1), then
// the full {placement} x {policy} grid at K = 4.
INSTANTIATE_TEST_SUITE_P(
    DataPlaneShards, ChaosCampaignTest,
    ::testing::Values(
        std::make_tuple(1u, net::ShardPlacement::kTopology,
                        net::WindowPolicy::kAdaptive),
        std::make_tuple(4u, net::ShardPlacement::kRoundRobin,
                        net::WindowPolicy::kFixed),
        std::make_tuple(4u, net::ShardPlacement::kRoundRobin,
                        net::WindowPolicy::kAdaptive),
        std::make_tuple(4u, net::ShardPlacement::kTopology,
                        net::WindowPolicy::kFixed),
        std::make_tuple(4u, net::ShardPlacement::kTopology,
                        net::WindowPolicy::kAdaptive)),
    chaos_tuning_name);

/// Reliable-delivery campaigns (DESIGN.md §15): the same failure workload
/// with the sequenced-replay + Clone-replication layer armed, which also
/// arms the three reliability oracles. One positive campaign plus one
/// negative campaign per oracle, each negative hook shrunk to a minimal
/// pasteable schedule.
class ChaosReliableTest : public ::testing::Test {
 protected:
  ChaosReliableTest() : rng_(101) {
    WorkloadSpec workload;
    workload.interval_seconds = 5.0;
    workload.ratio = 95.0;
    workload.max_t = 150.0;
    scenario_ = make_scenario({{RegionId{0}, 2, 4}, {RegionId{5}, 2, 4}},
                              workload, rng_);
    options_.rounds = 10;
    options_.interval_seconds = 5.0;
    options_.reliable = true;
  }

  FaultSchedule mixed_schedule() {
    return testutil::chaos_schedule(
        "fault outage ap-northeast-1 2 2\n"
        "fault partition us-east-1 ap-northeast-1 1 1\n"
        "fault delay region:* region:* 4 1 2.0 20\n"
        "fault drop ap-northeast-1 * 5 1 0.25\n");
  }

  Rng rng_;
  Scenario scenario_;
  ChaosOptions options_;
};

TEST_F(ChaosReliableTest, AllNineOraclesHoldUnderMixedFaults) {
  ChaosRunner runner(scenario_, options_);
  const ChaosReport report = runner.run_schedule(mixed_schedule(), 42);
  EXPECT_TRUE(report.passed()) << report.render();
  EXPECT_GT(report.deliveries, 0u);
}

TEST_F(ChaosReliableTest, CohortPlaneHoldsAllNineOraclesToo) {
  options_.cohorts = true;
  ChaosRunner runner(scenario_, options_);
  const ChaosReport report = runner.run_schedule(mixed_schedule(), 42);
  EXPECT_TRUE(report.passed()) << report.render();
}

TEST_F(ChaosReliableTest, SameSeedIsBitReproducible) {
  ChaosRunner runner(scenario_, options_);
  const ChaosReport a = runner.run_schedule(mixed_schedule(), 42);
  const ChaosReport b = runner.run_schedule(mixed_schedule(), 42);
  EXPECT_EQ(a.render(), b.render());
}

TEST_F(ChaosReliableTest, BrokenReplayIsCaughtAndShrunkToZeroLossRepro) {
  // Brokers refusing to serve kReplayRequest leave every dropped delivery
  // unrepaired: the zero-message-loss oracle must fire on the first clean
  // round, and the shrinker must reduce the mixed schedule to a tiny
  // pasteable repro.
  options_.break_replay = true;
  ChaosRunner runner(scenario_, options_);
  const ChaosReport report = runner.run_schedule(mixed_schedule(), 42);

  ASSERT_FALSE(report.passed());
  EXPECT_EQ(report.minimal_oracle, "zero-message-loss");
  EXPECT_LE(report.minimal_schedule.size(), 2u);

  // The printed repro really is pasteable: round-trip it and it reproduces
  // the violation from scratch.
  const FaultSchedule repro = testutil::chaos_schedule(
      format_fault_schedule(report.minimal_schedule));
  ChaosOptions probe_options = options_;
  probe_options.rounds = report.minimal_rounds;
  probe_options.shrink_on_failure = false;
  ChaosRunner probe(scenario_, probe_options);
  const ChaosReport confirmed = probe.run_schedule(repro, report.seed);
  ASSERT_FALSE(confirmed.passed());
  EXPECT_EQ(confirmed.violations.front().oracle, "zero-message-loss");
}

TEST_F(ChaosReliableTest, BrokenDedupFailsWithNoFaultsAtAll) {
  // Handover overlap and post-reattach replay re-send publications even in
  // a fault-free campaign, so a disabled dedup filter leaks duplicates
  // immediately: the shrinker ends at the empty schedule.
  options_.break_dedup = true;
  ChaosRunner runner(scenario_, options_);
  const ChaosReport report = runner.run_schedule(mixed_schedule(), 42);

  ASSERT_FALSE(report.passed());
  EXPECT_EQ(report.minimal_oracle, "no-duplicate");
  EXPECT_TRUE(report.minimal_schedule.empty());
}

TEST_F(ChaosReliableTest, BrokenStateSyncFailsWithNoFaultsAtAll) {
  // Without the kStateDelta stream the standby trails its primary from the
  // very first table mutation — fault-independent, so the shrinker ends at
  // the empty schedule.
  options_.break_state_sync = true;
  ChaosRunner runner(scenario_, options_);
  const ChaosReport report = runner.run_schedule(mixed_schedule(), 42);

  ASSERT_FALSE(report.passed());
  EXPECT_EQ(report.minimal_oracle, "bounded-replication-lag");
  EXPECT_TRUE(report.minimal_schedule.empty());
}

TEST_F(ChaosReliableTest, ReliableOffLeavesTheDefaultPlaneBitIdentical) {
  // The default-off contract: a reliable-capable binary with the flag off
  // renders byte-identically to the seed harness — reliable machinery must
  // not leak into the default plane.
  options_.reliable = false;
  ChaosRunner off(scenario_, options_);
  const ChaosReport a = off.run_schedule(mixed_schedule(), 42);
  ASSERT_TRUE(a.passed()) << a.render();

  // ...and the reliable books render only under the flag.
  options_.reliable = true;
  ChaosRunner on(scenario_, options_);
  const ChaosReport b = on.run_schedule(mixed_schedule(), 42);
  ASSERT_TRUE(b.passed()) << b.render();
  EXPECT_NE(a.render(), b.render());  // replay traffic is real and billed
}

/// Cohort-compressed campaigns (DESIGN.md §12): the failure workload with
/// every subscriber position replicated three-fold — real weight-3 cohorts,
/// not degenerate weight-1 ones — parameterized over the subscriber plane.
/// Every oracle must hold with weighted cohorts exactly as it does with
/// per-client endpoints.
class ChaosCohortTest : public ::testing::TestWithParam<bool> {
 protected:
  ChaosCohortTest() : rng_(303) {
    WorkloadSpec workload;
    workload.interval_seconds = 5.0;
    workload.ratio = 95.0;
    workload.max_t = 150.0;
    workload.subscriber_replication = 3;
    scenario_ = make_scenario({{RegionId{0}, 2, 2}, {RegionId{5}, 2, 2}},
                              workload, rng_);
    options_.rounds = 10;
    options_.interval_seconds = 5.0;
    options_.cohorts = GetParam();
  }

  Rng rng_;
  Scenario scenario_;
  ChaosOptions options_;
};

TEST_P(ChaosCohortTest, AllOraclesHoldUnderMixedFaults) {
  // Includes a probabilistic drop rule: the cohort plane replays it per
  // member (fault-split weight-1 copies), and all six oracles must hold.
  const FaultSchedule schedule = testutil::chaos_schedule(
      "fault outage ap-northeast-1 2 2\n"
      "fault partition us-east-1 ap-northeast-1 1 1\n"
      "fault delay region:* region:* 4 1 2.0 20\n"
      "fault drop ap-northeast-1 * 5 1 0.25\n");
  ChaosRunner runner(scenario_, options_);
  const ChaosReport report = runner.run_schedule(schedule, 42);
  EXPECT_TRUE(report.passed()) << report.render();
  EXPECT_GT(report.deliveries, 0u);
}

TEST_P(ChaosCohortTest, SameSeedIsBitReproducible) {
  ChaosRunner runner(scenario_, options_);
  const ChaosReport a = runner.run(777);
  const ChaosReport b = runner.run(777);
  EXPECT_TRUE(a.passed()) << a.render();
  EXPECT_EQ(a.render(), b.render());
}

INSTANTIATE_TEST_SUITE_P(SubscriberPlane, ChaosCohortTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Cohorts" : "PerClient";
                         });

TEST(ChaosCohortEquivalence, DropFreeReportsAreByteIdenticalAcrossPlanes) {
  // For schedules free of probabilistic drop rules (outages, partitions and
  // delays never match client-bound links) the FULL rendered report must be
  // byte-identical between the per-client and cohort planes, for every
  // seed. Drop rules are excluded by design: a partially dropped
  // kConfigUpdate re-homes the whole flock (see ChaosOptions::cohorts).
  Rng rng(303);
  WorkloadSpec workload;
  workload.interval_seconds = 5.0;
  workload.ratio = 95.0;
  workload.max_t = 150.0;
  workload.subscriber_replication = 3;
  const Scenario scenario =
      make_scenario({{RegionId{0}, 2, 2}, {RegionId{5}, 2, 2}}, workload, rng);
  const FaultSchedule schedule = testutil::chaos_schedule(
      "fault outage ap-northeast-1 2 2\n"
      "fault partition us-east-1 ap-northeast-1 1 1\n"
      "fault delay region:* region:* 4 1 2.0 20\n");

  ChaosOptions options;
  options.rounds = 10;
  options.interval_seconds = 5.0;
  for (const std::uint64_t seed : {42u, 1234u}) {
    options.cohorts = false;
    const ChaosReport per_client =
        ChaosRunner(scenario, options).run_schedule(schedule, seed);
    options.cohorts = true;
    const ChaosReport cohorts =
        ChaosRunner(scenario, options).run_schedule(schedule, seed);
    ASSERT_TRUE(per_client.passed()) << per_client.render();
    EXPECT_EQ(per_client.render(), cohorts.render()) << "seed " << seed;

    // ...and sharding the cohort plane changes nothing either.
    options.shards = 4;
    const ChaosReport sharded =
        ChaosRunner(scenario, options).run_schedule(schedule, seed);
    EXPECT_EQ(per_client.render(), sharded.render()) << "seed " << seed;
    options.shards = 1;
  }
}

TEST(ChaosShardEquivalence, ReportRenderIsByteIdenticalAcrossShardCounts) {
  // The strongest cross-K statement the harness can make: the FULL rendered
  // report — per-round observations, counters, costs, violations, schedule —
  // is byte-identical whether the plane ran on one shard or four. A report
  // that mentioned its shard count would rightly fail here.
  Rng rng(101);
  WorkloadSpec workload;
  workload.interval_seconds = 5.0;
  workload.ratio = 95.0;
  workload.max_t = 150.0;
  const Scenario scenario =
      make_scenario({{RegionId{0}, 2, 4}, {RegionId{5}, 2, 4}}, workload, rng);

  ChaosOptions options;
  options.rounds = 10;
  options.interval_seconds = 5.0;
  const FaultSchedule schedule = testutil::chaos_schedule(
      "fault outage ap-northeast-1 2 2\n"
      "fault partition us-east-1 ap-northeast-1 1 1\n"
      "fault delay region:* region:* 4 1 2.0 20\n"
      "fault drop ap-northeast-1 * 5 1 0.25\n");

  options.shards = 1;
  const ChaosReport one = ChaosRunner(scenario, options).run_schedule(
      schedule, 42);
  ASSERT_TRUE(one.passed()) << one.render();
  // ...under every (placement, window-policy) tuning of the sharded plane.
  options.shards = 4;
  for (const auto placement : {net::ShardPlacement::kRoundRobin,
                               net::ShardPlacement::kTopology}) {
    for (const auto policy :
         {net::WindowPolicy::kFixed, net::WindowPolicy::kAdaptive}) {
      options.placement = placement;
      options.window_policy = policy;
      const ChaosReport four = ChaosRunner(scenario, options).run_schedule(
          schedule, 42);
      EXPECT_EQ(one.render(), four.render())
          << net::shard_placement_name(placement) << " / "
          << (policy == net::WindowPolicy::kFixed ? "fixed" : "adaptive");
      EXPECT_EQ(one.deliveries, four.deliveries);
    }
  }
}

}  // namespace
}  // namespace multipub::sim
