# Empty dependencies file for bench_ablation_live_vs_model.
# This may be replaced when dependencies are built.
