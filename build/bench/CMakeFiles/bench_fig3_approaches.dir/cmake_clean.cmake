file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_approaches.dir/bench_fig3_approaches.cc.o"
  "CMakeFiles/bench_fig3_approaches.dir/bench_fig3_approaches.cc.o.d"
  "bench_fig3_approaches"
  "bench_fig3_approaches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_approaches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
