file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pruning.dir/bench_ablation_pruning.cc.o"
  "CMakeFiles/bench_ablation_pruning.dir/bench_ablation_pruning.cc.o.d"
  "bench_ablation_pruning"
  "bench_ablation_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
