# Empty dependencies file for bench_fig4_direct_vs_routed.
# This may be replaced when dependencies are built.
