file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_direct_vs_routed.dir/bench_fig4_direct_vs_routed.cc.o"
  "CMakeFiles/bench_fig4_direct_vs_routed.dir/bench_fig4_direct_vs_routed.cc.o.d"
  "bench_fig4_direct_vs_routed"
  "bench_fig4_direct_vs_routed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_direct_vs_routed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
