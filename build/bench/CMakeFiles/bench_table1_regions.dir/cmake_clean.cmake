file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_regions.dir/bench_table1_regions.cc.o"
  "CMakeFiles/bench_table1_regions.dir/bench_table1_regions.cc.o.d"
  "bench_table1_regions"
  "bench_table1_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
