# Empty dependencies file for bench_fig5_localized.
# This may be replaced when dependencies are built.
