file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_localized.dir/bench_fig5_localized.cc.o"
  "CMakeFiles/bench_fig5_localized.dir/bench_fig5_localized.cc.o.d"
  "bench_fig5_localized"
  "bench_fig5_localized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_localized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
