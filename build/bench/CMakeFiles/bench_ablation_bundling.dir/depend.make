# Empty dependencies file for bench_ablation_bundling.
# This may be replaced when dependencies are built.
