file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bundling.dir/bench_ablation_bundling.cc.o"
  "CMakeFiles/bench_ablation_bundling.dir/bench_ablation_bundling.cc.o.d"
  "bench_ablation_bundling"
  "bench_ablation_bundling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bundling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
