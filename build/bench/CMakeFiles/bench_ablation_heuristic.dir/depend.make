# Empty dependencies file for bench_ablation_heuristic.
# This may be replaced when dependencies are built.
