# Empty compiler generated dependencies file for bench_ablation_percentile.
# This may be replaced when dependencies are built.
