file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_percentile.dir/bench_ablation_percentile.cc.o"
  "CMakeFiles/bench_ablation_percentile.dir/bench_ablation_percentile.cc.o.d"
  "bench_ablation_percentile"
  "bench_ablation_percentile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_percentile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
