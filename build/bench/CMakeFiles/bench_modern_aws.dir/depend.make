# Empty dependencies file for bench_modern_aws.
# This may be replaced when dependencies are built.
