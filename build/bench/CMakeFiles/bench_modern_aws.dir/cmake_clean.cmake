file(REMOVE_RECURSE
  "CMakeFiles/bench_modern_aws.dir/bench_modern_aws.cc.o"
  "CMakeFiles/bench_modern_aws.dir/bench_modern_aws.cc.o.d"
  "bench_modern_aws"
  "bench_modern_aws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_modern_aws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
