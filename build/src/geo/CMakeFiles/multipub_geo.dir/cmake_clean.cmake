file(REMOVE_RECURSE
  "CMakeFiles/multipub_geo.dir/king_synth.cc.o"
  "CMakeFiles/multipub_geo.dir/king_synth.cc.o.d"
  "CMakeFiles/multipub_geo.dir/latency.cc.o"
  "CMakeFiles/multipub_geo.dir/latency.cc.o.d"
  "CMakeFiles/multipub_geo.dir/latency_io.cc.o"
  "CMakeFiles/multipub_geo.dir/latency_io.cc.o.d"
  "CMakeFiles/multipub_geo.dir/modern.cc.o"
  "CMakeFiles/multipub_geo.dir/modern.cc.o.d"
  "CMakeFiles/multipub_geo.dir/region.cc.o"
  "CMakeFiles/multipub_geo.dir/region.cc.o.d"
  "CMakeFiles/multipub_geo.dir/region_set.cc.o"
  "CMakeFiles/multipub_geo.dir/region_set.cc.o.d"
  "CMakeFiles/multipub_geo.dir/synthetic.cc.o"
  "CMakeFiles/multipub_geo.dir/synthetic.cc.o.d"
  "libmultipub_geo.a"
  "libmultipub_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipub_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
