file(REMOVE_RECURSE
  "libmultipub_geo.a"
)
