
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/king_synth.cc" "src/geo/CMakeFiles/multipub_geo.dir/king_synth.cc.o" "gcc" "src/geo/CMakeFiles/multipub_geo.dir/king_synth.cc.o.d"
  "/root/repo/src/geo/latency.cc" "src/geo/CMakeFiles/multipub_geo.dir/latency.cc.o" "gcc" "src/geo/CMakeFiles/multipub_geo.dir/latency.cc.o.d"
  "/root/repo/src/geo/latency_io.cc" "src/geo/CMakeFiles/multipub_geo.dir/latency_io.cc.o" "gcc" "src/geo/CMakeFiles/multipub_geo.dir/latency_io.cc.o.d"
  "/root/repo/src/geo/modern.cc" "src/geo/CMakeFiles/multipub_geo.dir/modern.cc.o" "gcc" "src/geo/CMakeFiles/multipub_geo.dir/modern.cc.o.d"
  "/root/repo/src/geo/region.cc" "src/geo/CMakeFiles/multipub_geo.dir/region.cc.o" "gcc" "src/geo/CMakeFiles/multipub_geo.dir/region.cc.o.d"
  "/root/repo/src/geo/region_set.cc" "src/geo/CMakeFiles/multipub_geo.dir/region_set.cc.o" "gcc" "src/geo/CMakeFiles/multipub_geo.dir/region_set.cc.o.d"
  "/root/repo/src/geo/synthetic.cc" "src/geo/CMakeFiles/multipub_geo.dir/synthetic.cc.o" "gcc" "src/geo/CMakeFiles/multipub_geo.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/multipub_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
