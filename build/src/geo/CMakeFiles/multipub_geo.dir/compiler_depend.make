# Empty compiler generated dependencies file for multipub_geo.
# This may be replaced when dependencies are built.
