# Empty compiler generated dependencies file for multipub_net.
# This may be replaced when dependencies are built.
