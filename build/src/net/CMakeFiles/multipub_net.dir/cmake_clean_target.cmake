file(REMOVE_RECURSE
  "libmultipub_net.a"
)
