file(REMOVE_RECURSE
  "CMakeFiles/multipub_net.dir/simulator.cc.o"
  "CMakeFiles/multipub_net.dir/simulator.cc.o.d"
  "CMakeFiles/multipub_net.dir/tcp.cc.o"
  "CMakeFiles/multipub_net.dir/tcp.cc.o.d"
  "CMakeFiles/multipub_net.dir/transport.cc.o"
  "CMakeFiles/multipub_net.dir/transport.cc.o.d"
  "libmultipub_net.a"
  "libmultipub_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipub_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
