
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/simulator.cc" "src/net/CMakeFiles/multipub_net.dir/simulator.cc.o" "gcc" "src/net/CMakeFiles/multipub_net.dir/simulator.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/net/CMakeFiles/multipub_net.dir/tcp.cc.o" "gcc" "src/net/CMakeFiles/multipub_net.dir/tcp.cc.o.d"
  "/root/repo/src/net/transport.cc" "src/net/CMakeFiles/multipub_net.dir/transport.cc.o" "gcc" "src/net/CMakeFiles/multipub_net.dir/transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/multipub_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/multipub_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/multipub_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
