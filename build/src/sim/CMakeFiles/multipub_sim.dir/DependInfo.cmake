
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/baselines.cc" "src/sim/CMakeFiles/multipub_sim.dir/baselines.cc.o" "gcc" "src/sim/CMakeFiles/multipub_sim.dir/baselines.cc.o.d"
  "/root/repo/src/sim/control_loop.cc" "src/sim/CMakeFiles/multipub_sim.dir/control_loop.cc.o" "gcc" "src/sim/CMakeFiles/multipub_sim.dir/control_loop.cc.o.d"
  "/root/repo/src/sim/live_runner.cc" "src/sim/CMakeFiles/multipub_sim.dir/live_runner.cc.o" "gcc" "src/sim/CMakeFiles/multipub_sim.dir/live_runner.cc.o.d"
  "/root/repo/src/sim/metrics_snapshot.cc" "src/sim/CMakeFiles/multipub_sim.dir/metrics_snapshot.cc.o" "gcc" "src/sim/CMakeFiles/multipub_sim.dir/metrics_snapshot.cc.o.d"
  "/root/repo/src/sim/multi_runner.cc" "src/sim/CMakeFiles/multipub_sim.dir/multi_runner.cc.o" "gcc" "src/sim/CMakeFiles/multipub_sim.dir/multi_runner.cc.o.d"
  "/root/repo/src/sim/scenario.cc" "src/sim/CMakeFiles/multipub_sim.dir/scenario.cc.o" "gcc" "src/sim/CMakeFiles/multipub_sim.dir/scenario.cc.o.d"
  "/root/repo/src/sim/scenario_file.cc" "src/sim/CMakeFiles/multipub_sim.dir/scenario_file.cc.o" "gcc" "src/sim/CMakeFiles/multipub_sim.dir/scenario_file.cc.o.d"
  "/root/repo/src/sim/sweep.cc" "src/sim/CMakeFiles/multipub_sim.dir/sweep.cc.o" "gcc" "src/sim/CMakeFiles/multipub_sim.dir/sweep.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/multipub_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/multipub_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/multipub_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/multipub_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/multipub_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/multipub_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/multipub_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/multipub_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/multipub_client.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
