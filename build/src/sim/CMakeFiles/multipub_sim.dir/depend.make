# Empty dependencies file for multipub_sim.
# This may be replaced when dependencies are built.
