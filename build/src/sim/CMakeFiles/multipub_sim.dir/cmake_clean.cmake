file(REMOVE_RECURSE
  "CMakeFiles/multipub_sim.dir/baselines.cc.o"
  "CMakeFiles/multipub_sim.dir/baselines.cc.o.d"
  "CMakeFiles/multipub_sim.dir/control_loop.cc.o"
  "CMakeFiles/multipub_sim.dir/control_loop.cc.o.d"
  "CMakeFiles/multipub_sim.dir/live_runner.cc.o"
  "CMakeFiles/multipub_sim.dir/live_runner.cc.o.d"
  "CMakeFiles/multipub_sim.dir/metrics_snapshot.cc.o"
  "CMakeFiles/multipub_sim.dir/metrics_snapshot.cc.o.d"
  "CMakeFiles/multipub_sim.dir/multi_runner.cc.o"
  "CMakeFiles/multipub_sim.dir/multi_runner.cc.o.d"
  "CMakeFiles/multipub_sim.dir/scenario.cc.o"
  "CMakeFiles/multipub_sim.dir/scenario.cc.o.d"
  "CMakeFiles/multipub_sim.dir/scenario_file.cc.o"
  "CMakeFiles/multipub_sim.dir/scenario_file.cc.o.d"
  "CMakeFiles/multipub_sim.dir/sweep.cc.o"
  "CMakeFiles/multipub_sim.dir/sweep.cc.o.d"
  "CMakeFiles/multipub_sim.dir/trace.cc.o"
  "CMakeFiles/multipub_sim.dir/trace.cc.o.d"
  "libmultipub_sim.a"
  "libmultipub_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipub_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
