file(REMOVE_RECURSE
  "libmultipub_sim.a"
)
