file(REMOVE_RECURSE
  "CMakeFiles/multipub_core.dir/bundling.cc.o"
  "CMakeFiles/multipub_core.dir/bundling.cc.o.d"
  "CMakeFiles/multipub_core.dir/config.cc.o"
  "CMakeFiles/multipub_core.dir/config.cc.o.d"
  "CMakeFiles/multipub_core.dir/cost_model.cc.o"
  "CMakeFiles/multipub_core.dir/cost_model.cc.o.d"
  "CMakeFiles/multipub_core.dir/delivery_model.cc.o"
  "CMakeFiles/multipub_core.dir/delivery_model.cc.o.d"
  "CMakeFiles/multipub_core.dir/heuristic.cc.o"
  "CMakeFiles/multipub_core.dir/heuristic.cc.o.d"
  "CMakeFiles/multipub_core.dir/latency_estimator.cc.o"
  "CMakeFiles/multipub_core.dir/latency_estimator.cc.o.d"
  "CMakeFiles/multipub_core.dir/mitigation.cc.o"
  "CMakeFiles/multipub_core.dir/mitigation.cc.o.d"
  "CMakeFiles/multipub_core.dir/optimizer.cc.o"
  "CMakeFiles/multipub_core.dir/optimizer.cc.o.d"
  "CMakeFiles/multipub_core.dir/parallel.cc.o"
  "CMakeFiles/multipub_core.dir/parallel.cc.o.d"
  "CMakeFiles/multipub_core.dir/pruning.cc.o"
  "CMakeFiles/multipub_core.dir/pruning.cc.o.d"
  "CMakeFiles/multipub_core.dir/topic_state.cc.o"
  "CMakeFiles/multipub_core.dir/topic_state.cc.o.d"
  "libmultipub_core.a"
  "libmultipub_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipub_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
