# Empty dependencies file for multipub_core.
# This may be replaced when dependencies are built.
