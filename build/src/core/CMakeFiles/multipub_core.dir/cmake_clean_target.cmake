file(REMOVE_RECURSE
  "libmultipub_core.a"
)
