
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bundling.cc" "src/core/CMakeFiles/multipub_core.dir/bundling.cc.o" "gcc" "src/core/CMakeFiles/multipub_core.dir/bundling.cc.o.d"
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/multipub_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/multipub_core.dir/config.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/multipub_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/multipub_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/delivery_model.cc" "src/core/CMakeFiles/multipub_core.dir/delivery_model.cc.o" "gcc" "src/core/CMakeFiles/multipub_core.dir/delivery_model.cc.o.d"
  "/root/repo/src/core/heuristic.cc" "src/core/CMakeFiles/multipub_core.dir/heuristic.cc.o" "gcc" "src/core/CMakeFiles/multipub_core.dir/heuristic.cc.o.d"
  "/root/repo/src/core/latency_estimator.cc" "src/core/CMakeFiles/multipub_core.dir/latency_estimator.cc.o" "gcc" "src/core/CMakeFiles/multipub_core.dir/latency_estimator.cc.o.d"
  "/root/repo/src/core/mitigation.cc" "src/core/CMakeFiles/multipub_core.dir/mitigation.cc.o" "gcc" "src/core/CMakeFiles/multipub_core.dir/mitigation.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/core/CMakeFiles/multipub_core.dir/optimizer.cc.o" "gcc" "src/core/CMakeFiles/multipub_core.dir/optimizer.cc.o.d"
  "/root/repo/src/core/parallel.cc" "src/core/CMakeFiles/multipub_core.dir/parallel.cc.o" "gcc" "src/core/CMakeFiles/multipub_core.dir/parallel.cc.o.d"
  "/root/repo/src/core/pruning.cc" "src/core/CMakeFiles/multipub_core.dir/pruning.cc.o" "gcc" "src/core/CMakeFiles/multipub_core.dir/pruning.cc.o.d"
  "/root/repo/src/core/topic_state.cc" "src/core/CMakeFiles/multipub_core.dir/topic_state.cc.o" "gcc" "src/core/CMakeFiles/multipub_core.dir/topic_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/multipub_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/multipub_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
