file(REMOVE_RECURSE
  "libmultipub_common.a"
)
