file(REMOVE_RECURSE
  "CMakeFiles/multipub_common.dir/logging.cc.o"
  "CMakeFiles/multipub_common.dir/logging.cc.o.d"
  "CMakeFiles/multipub_common.dir/metrics.cc.o"
  "CMakeFiles/multipub_common.dir/metrics.cc.o.d"
  "CMakeFiles/multipub_common.dir/rng.cc.o"
  "CMakeFiles/multipub_common.dir/rng.cc.o.d"
  "CMakeFiles/multipub_common.dir/stats.cc.o"
  "CMakeFiles/multipub_common.dir/stats.cc.o.d"
  "libmultipub_common.a"
  "libmultipub_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipub_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
