# Empty compiler generated dependencies file for multipub_common.
# This may be replaced when dependencies are built.
