# Empty dependencies file for multipub_client.
# This may be replaced when dependencies are built.
