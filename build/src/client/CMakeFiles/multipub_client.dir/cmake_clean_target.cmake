file(REMOVE_RECURSE
  "libmultipub_client.a"
)
