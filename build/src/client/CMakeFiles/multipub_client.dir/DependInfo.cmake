
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/client/probing.cc" "src/client/CMakeFiles/multipub_client.dir/probing.cc.o" "gcc" "src/client/CMakeFiles/multipub_client.dir/probing.cc.o.d"
  "/root/repo/src/client/publisher.cc" "src/client/CMakeFiles/multipub_client.dir/publisher.cc.o" "gcc" "src/client/CMakeFiles/multipub_client.dir/publisher.cc.o.d"
  "/root/repo/src/client/subscriber.cc" "src/client/CMakeFiles/multipub_client.dir/subscriber.cc.o" "gcc" "src/client/CMakeFiles/multipub_client.dir/subscriber.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/multipub_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/multipub_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/multipub_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/multipub_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/multipub_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
