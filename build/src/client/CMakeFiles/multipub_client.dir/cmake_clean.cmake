file(REMOVE_RECURSE
  "CMakeFiles/multipub_client.dir/probing.cc.o"
  "CMakeFiles/multipub_client.dir/probing.cc.o.d"
  "CMakeFiles/multipub_client.dir/publisher.cc.o"
  "CMakeFiles/multipub_client.dir/publisher.cc.o.d"
  "CMakeFiles/multipub_client.dir/subscriber.cc.o"
  "CMakeFiles/multipub_client.dir/subscriber.cc.o.d"
  "libmultipub_client.a"
  "libmultipub_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipub_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
