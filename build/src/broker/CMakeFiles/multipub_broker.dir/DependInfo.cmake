
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/broker/broker.cc" "src/broker/CMakeFiles/multipub_broker.dir/broker.cc.o" "gcc" "src/broker/CMakeFiles/multipub_broker.dir/broker.cc.o.d"
  "/root/repo/src/broker/controller.cc" "src/broker/CMakeFiles/multipub_broker.dir/controller.cc.o" "gcc" "src/broker/CMakeFiles/multipub_broker.dir/controller.cc.o.d"
  "/root/repo/src/broker/region_manager.cc" "src/broker/CMakeFiles/multipub_broker.dir/region_manager.cc.o" "gcc" "src/broker/CMakeFiles/multipub_broker.dir/region_manager.cc.o.d"
  "/root/repo/src/broker/scaling.cc" "src/broker/CMakeFiles/multipub_broker.dir/scaling.cc.o" "gcc" "src/broker/CMakeFiles/multipub_broker.dir/scaling.cc.o.d"
  "/root/repo/src/broker/subscription_table.cc" "src/broker/CMakeFiles/multipub_broker.dir/subscription_table.cc.o" "gcc" "src/broker/CMakeFiles/multipub_broker.dir/subscription_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/multipub_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/multipub_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/multipub_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/multipub_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/multipub_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
