file(REMOVE_RECURSE
  "CMakeFiles/multipub_broker.dir/broker.cc.o"
  "CMakeFiles/multipub_broker.dir/broker.cc.o.d"
  "CMakeFiles/multipub_broker.dir/controller.cc.o"
  "CMakeFiles/multipub_broker.dir/controller.cc.o.d"
  "CMakeFiles/multipub_broker.dir/region_manager.cc.o"
  "CMakeFiles/multipub_broker.dir/region_manager.cc.o.d"
  "CMakeFiles/multipub_broker.dir/scaling.cc.o"
  "CMakeFiles/multipub_broker.dir/scaling.cc.o.d"
  "CMakeFiles/multipub_broker.dir/subscription_table.cc.o"
  "CMakeFiles/multipub_broker.dir/subscription_table.cc.o.d"
  "libmultipub_broker.a"
  "libmultipub_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipub_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
