# Empty compiler generated dependencies file for multipub_broker.
# This may be replaced when dependencies are built.
