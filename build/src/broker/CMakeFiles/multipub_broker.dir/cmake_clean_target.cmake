file(REMOVE_RECURSE
  "libmultipub_broker.a"
)
