
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wire/codec.cc" "src/wire/CMakeFiles/multipub_wire.dir/codec.cc.o" "gcc" "src/wire/CMakeFiles/multipub_wire.dir/codec.cc.o.d"
  "/root/repo/src/wire/message.cc" "src/wire/CMakeFiles/multipub_wire.dir/message.cc.o" "gcc" "src/wire/CMakeFiles/multipub_wire.dir/message.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/multipub_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/multipub_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
