file(REMOVE_RECURSE
  "libmultipub_wire.a"
)
