file(REMOVE_RECURSE
  "CMakeFiles/multipub_wire.dir/codec.cc.o"
  "CMakeFiles/multipub_wire.dir/codec.cc.o.d"
  "CMakeFiles/multipub_wire.dir/message.cc.o"
  "CMakeFiles/multipub_wire.dir/message.cc.o.d"
  "libmultipub_wire.a"
  "libmultipub_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipub_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
