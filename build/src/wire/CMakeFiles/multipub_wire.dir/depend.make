# Empty dependencies file for multipub_wire.
# This may be replaced when dependencies are built.
