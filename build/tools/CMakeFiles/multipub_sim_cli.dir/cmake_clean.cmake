file(REMOVE_RECURSE
  "CMakeFiles/multipub_sim_cli.dir/multipub_sim.cc.o"
  "CMakeFiles/multipub_sim_cli.dir/multipub_sim.cc.o.d"
  "multipub-sim"
  "multipub-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipub_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
