# Empty compiler generated dependencies file for multipub_sim_cli.
# This may be replaced when dependencies are built.
