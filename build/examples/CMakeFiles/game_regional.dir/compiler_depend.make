# Empty compiler generated dependencies file for game_regional.
# This may be replaced when dependencies are built.
