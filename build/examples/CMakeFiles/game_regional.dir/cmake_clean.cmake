file(REMOVE_RECURSE
  "CMakeFiles/game_regional.dir/game_regional.cpp.o"
  "CMakeFiles/game_regional.dir/game_regional.cpp.o.d"
  "game_regional"
  "game_regional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_regional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
