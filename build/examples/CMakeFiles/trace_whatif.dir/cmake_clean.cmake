file(REMOVE_RECURSE
  "CMakeFiles/trace_whatif.dir/trace_whatif.cpp.o"
  "CMakeFiles/trace_whatif.dir/trace_whatif.cpp.o.d"
  "trace_whatif"
  "trace_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
