# Empty dependencies file for trace_whatif.
# This may be replaced when dependencies are built.
