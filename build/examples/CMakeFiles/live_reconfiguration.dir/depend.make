# Empty dependencies file for live_reconfiguration.
# This may be replaced when dependencies are built.
