file(REMOVE_RECURSE
  "CMakeFiles/live_reconfiguration.dir/live_reconfiguration.cpp.o"
  "CMakeFiles/live_reconfiguration.dir/live_reconfiguration.cpp.o.d"
  "live_reconfiguration"
  "live_reconfiguration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_reconfiguration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
