
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/tcp_bridge.cpp" "examples/CMakeFiles/tcp_bridge.dir/tcp_bridge.cpp.o" "gcc" "examples/CMakeFiles/tcp_bridge.dir/tcp_bridge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/multipub_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/multipub_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/multipub_client.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/multipub_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/multipub_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/multipub_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/multipub_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/multipub_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
