file(REMOVE_RECURSE
  "CMakeFiles/tcp_bridge.dir/tcp_bridge.cpp.o"
  "CMakeFiles/tcp_bridge.dir/tcp_bridge.cpp.o.d"
  "tcp_bridge"
  "tcp_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
