# Empty compiler generated dependencies file for tcp_bridge.
# This may be replaced when dependencies are built.
