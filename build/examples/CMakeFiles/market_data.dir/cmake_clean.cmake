file(REMOVE_RECURSE
  "CMakeFiles/market_data.dir/market_data.cpp.o"
  "CMakeFiles/market_data.dir/market_data.cpp.o.d"
  "market_data"
  "market_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
