# Empty compiler generated dependencies file for market_data.
# This may be replaced when dependencies are built.
