file(REMOVE_RECURSE
  "CMakeFiles/push_notifications.dir/push_notifications.cpp.o"
  "CMakeFiles/push_notifications.dir/push_notifications.cpp.o.d"
  "push_notifications"
  "push_notifications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/push_notifications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
