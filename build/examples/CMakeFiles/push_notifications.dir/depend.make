# Empty dependencies file for push_notifications.
# This may be replaced when dependencies are built.
