# Empty compiler generated dependencies file for broker_test.
# This may be replaced when dependencies are built.
