file(REMOVE_RECURSE
  "CMakeFiles/broker_test.dir/broker/broker_test.cc.o"
  "CMakeFiles/broker_test.dir/broker/broker_test.cc.o.d"
  "CMakeFiles/broker_test.dir/broker/controller_test.cc.o"
  "CMakeFiles/broker_test.dir/broker/controller_test.cc.o.d"
  "CMakeFiles/broker_test.dir/broker/region_manager_test.cc.o"
  "CMakeFiles/broker_test.dir/broker/region_manager_test.cc.o.d"
  "CMakeFiles/broker_test.dir/broker/scaling_test.cc.o"
  "CMakeFiles/broker_test.dir/broker/scaling_test.cc.o.d"
  "CMakeFiles/broker_test.dir/broker/subscription_table_test.cc.o"
  "CMakeFiles/broker_test.dir/broker/subscription_table_test.cc.o.d"
  "broker_test"
  "broker_test.pdb"
  "broker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
