file(REMOVE_RECURSE
  "CMakeFiles/integration_test.dir/integration/churn_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/churn_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/content_filter_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/content_filter_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/experiment_shape_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/experiment_shape_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/failure_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/failure_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/handover_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/handover_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/latency_monitoring_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/latency_monitoring_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/live_vs_model_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/live_vs_model_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/reconfiguration_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/reconfiguration_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/soak_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/soak_test.cc.o.d"
  "integration_test"
  "integration_test.pdb"
  "integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
