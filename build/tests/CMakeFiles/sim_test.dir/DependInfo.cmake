
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/baselines_test.cc" "tests/CMakeFiles/sim_test.dir/sim/baselines_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/baselines_test.cc.o.d"
  "/root/repo/tests/sim/control_loop_test.cc" "tests/CMakeFiles/sim_test.dir/sim/control_loop_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/control_loop_test.cc.o.d"
  "/root/repo/tests/sim/metrics_snapshot_test.cc" "tests/CMakeFiles/sim_test.dir/sim/metrics_snapshot_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/metrics_snapshot_test.cc.o.d"
  "/root/repo/tests/sim/multi_runner_test.cc" "tests/CMakeFiles/sim_test.dir/sim/multi_runner_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/multi_runner_test.cc.o.d"
  "/root/repo/tests/sim/poisson_test.cc" "tests/CMakeFiles/sim_test.dir/sim/poisson_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/poisson_test.cc.o.d"
  "/root/repo/tests/sim/scenario_file_test.cc" "tests/CMakeFiles/sim_test.dir/sim/scenario_file_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/scenario_file_test.cc.o.d"
  "/root/repo/tests/sim/scenario_test.cc" "tests/CMakeFiles/sim_test.dir/sim/scenario_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/scenario_test.cc.o.d"
  "/root/repo/tests/sim/sweep_test.cc" "tests/CMakeFiles/sim_test.dir/sim/sweep_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/sweep_test.cc.o.d"
  "/root/repo/tests/sim/trace_test.cc" "tests/CMakeFiles/sim_test.dir/sim/trace_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/trace_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/multipub_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/multipub_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/multipub_client.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/multipub_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/multipub_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/multipub_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/multipub_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/multipub_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
