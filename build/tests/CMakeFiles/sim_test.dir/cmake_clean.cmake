file(REMOVE_RECURSE
  "CMakeFiles/sim_test.dir/sim/baselines_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/baselines_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/control_loop_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/control_loop_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/metrics_snapshot_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/metrics_snapshot_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/multi_runner_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/multi_runner_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/poisson_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/poisson_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/scenario_file_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/scenario_file_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/scenario_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/scenario_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/sweep_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/sweep_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/trace_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/trace_test.cc.o.d"
  "sim_test"
  "sim_test.pdb"
  "sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
