file(REMOVE_RECURSE
  "CMakeFiles/client_test.dir/client/client_test.cc.o"
  "CMakeFiles/client_test.dir/client/client_test.cc.o.d"
  "client_test"
  "client_test.pdb"
  "client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
