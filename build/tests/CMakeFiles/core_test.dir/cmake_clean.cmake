file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/bundling_test.cc.o"
  "CMakeFiles/core_test.dir/core/bundling_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/config_test.cc.o"
  "CMakeFiles/core_test.dir/core/config_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/cost_model_test.cc.o"
  "CMakeFiles/core_test.dir/core/cost_model_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/delivery_model_test.cc.o"
  "CMakeFiles/core_test.dir/core/delivery_model_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/ec2_property_test.cc.o"
  "CMakeFiles/core_test.dir/core/ec2_property_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/heuristic_test.cc.o"
  "CMakeFiles/core_test.dir/core/heuristic_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/latency_estimator_test.cc.o"
  "CMakeFiles/core_test.dir/core/latency_estimator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/mitigation_test.cc.o"
  "CMakeFiles/core_test.dir/core/mitigation_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/optimizer_test.cc.o"
  "CMakeFiles/core_test.dir/core/optimizer_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/parallel_test.cc.o"
  "CMakeFiles/core_test.dir/core/parallel_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/pruning_test.cc.o"
  "CMakeFiles/core_test.dir/core/pruning_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/topic_state_test.cc.o"
  "CMakeFiles/core_test.dir/core/topic_state_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
