
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/bundling_test.cc" "tests/CMakeFiles/core_test.dir/core/bundling_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/bundling_test.cc.o.d"
  "/root/repo/tests/core/config_test.cc" "tests/CMakeFiles/core_test.dir/core/config_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/config_test.cc.o.d"
  "/root/repo/tests/core/cost_model_test.cc" "tests/CMakeFiles/core_test.dir/core/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/cost_model_test.cc.o.d"
  "/root/repo/tests/core/delivery_model_test.cc" "tests/CMakeFiles/core_test.dir/core/delivery_model_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/delivery_model_test.cc.o.d"
  "/root/repo/tests/core/ec2_property_test.cc" "tests/CMakeFiles/core_test.dir/core/ec2_property_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/ec2_property_test.cc.o.d"
  "/root/repo/tests/core/heuristic_test.cc" "tests/CMakeFiles/core_test.dir/core/heuristic_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/heuristic_test.cc.o.d"
  "/root/repo/tests/core/latency_estimator_test.cc" "tests/CMakeFiles/core_test.dir/core/latency_estimator_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/latency_estimator_test.cc.o.d"
  "/root/repo/tests/core/mitigation_test.cc" "tests/CMakeFiles/core_test.dir/core/mitigation_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/mitigation_test.cc.o.d"
  "/root/repo/tests/core/optimizer_test.cc" "tests/CMakeFiles/core_test.dir/core/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/optimizer_test.cc.o.d"
  "/root/repo/tests/core/parallel_test.cc" "tests/CMakeFiles/core_test.dir/core/parallel_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/parallel_test.cc.o.d"
  "/root/repo/tests/core/pruning_test.cc" "tests/CMakeFiles/core_test.dir/core/pruning_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/pruning_test.cc.o.d"
  "/root/repo/tests/core/topic_state_test.cc" "tests/CMakeFiles/core_test.dir/core/topic_state_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/topic_state_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/multipub_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/multipub_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/multipub_client.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/multipub_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/multipub_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/multipub_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/multipub_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/multipub_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
