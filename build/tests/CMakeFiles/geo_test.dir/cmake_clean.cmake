file(REMOVE_RECURSE
  "CMakeFiles/geo_test.dir/geo/king_synth_test.cc.o"
  "CMakeFiles/geo_test.dir/geo/king_synth_test.cc.o.d"
  "CMakeFiles/geo_test.dir/geo/latency_io_test.cc.o"
  "CMakeFiles/geo_test.dir/geo/latency_io_test.cc.o.d"
  "CMakeFiles/geo_test.dir/geo/latency_test.cc.o"
  "CMakeFiles/geo_test.dir/geo/latency_test.cc.o.d"
  "CMakeFiles/geo_test.dir/geo/modern_test.cc.o"
  "CMakeFiles/geo_test.dir/geo/modern_test.cc.o.d"
  "CMakeFiles/geo_test.dir/geo/region_set_test.cc.o"
  "CMakeFiles/geo_test.dir/geo/region_set_test.cc.o.d"
  "CMakeFiles/geo_test.dir/geo/region_test.cc.o"
  "CMakeFiles/geo_test.dir/geo/region_test.cc.o.d"
  "CMakeFiles/geo_test.dir/geo/synthetic_test.cc.o"
  "CMakeFiles/geo_test.dir/geo/synthetic_test.cc.o.d"
  "geo_test"
  "geo_test.pdb"
  "geo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
