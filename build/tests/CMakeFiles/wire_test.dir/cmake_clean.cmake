file(REMOVE_RECURSE
  "CMakeFiles/wire_test.dir/wire/codec_test.cc.o"
  "CMakeFiles/wire_test.dir/wire/codec_test.cc.o.d"
  "CMakeFiles/wire_test.dir/wire/fuzz_test.cc.o"
  "CMakeFiles/wire_test.dir/wire/fuzz_test.cc.o.d"
  "wire_test"
  "wire_test.pdb"
  "wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
