# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/broker_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
