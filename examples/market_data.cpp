// Content-filtered market data (the paper's §VII extension in action).
//
// One "ticks" topic carries price updates for 100 instruments (content key =
// instrument id). Regional desks subscribe with key filters for the slice
// they trade, so each desk receives — and the operator pays egress for —
// only its share. The example runs the live middleware and prints per-desk
// delivery counts plus what the same workload would bill without filtering.
//
//   ./market_data
#include <cstdio>

#include "sim/live_runner.h"

using namespace multipub;

int main() {
  Rng rng(42);
  sim::WorkloadSpec workload;
  workload.interval_seconds = 30.0;
  workload.ratio = 95.0;
  // Feed publisher near N. Virginia; desks near Virginia, Frankfurt, Tokyo.
  const sim::Scenario scenario = sim::make_scenario(
      {{RegionId{0}, 1, 1}, {RegionId{4}, 0, 1}, {RegionId{5}, 0, 1}},
      workload, rng);

  sim::LiveSystem live(scenario);
  const core::TopicConfig config{
      geo::RegionSet(0b0000110001),  // R1, R5, R6
      core::DeliveryMode::kRouted};
  live.deploy(config);

  // Desk filters: US equities 0-39, EU equities 40-69, APAC 70-99.
  const TopicId ticks = scenario.topic.topic;
  live.subscribers()[0]->subscribe(ticks, config, wire::KeyFilter{0, 39});
  live.subscribers()[1]->subscribe(ticks, config, wire::KeyFilter{40, 69});
  live.subscribers()[2]->subscribe(ticks, config, wire::KeyFilter{70, 99});
  live.simulator().run();

  // The feed publishes one 256-byte tick per instrument per second.
  auto& feed = *live.publishers()[0];
  const double seconds = 30.0;
  for (int s = 0; s < static_cast<int>(seconds); ++s) {
    for (std::uint64_t instrument = 0; instrument < 100; ++instrument) {
      live.simulator().schedule_after(
          1000.0 * s + 10.0 * static_cast<double>(instrument),
          [&feed, ticks, instrument] { feed.publish(ticks, 256, instrument); });
    }
  }
  live.simulator().run();

  const char* desks[] = {"US desk (keys 0-39)", "EU desk (keys 40-69)",
                         "APAC desk (keys 70-99)"};
  std::printf("30 s of ticks: 100 instruments @ 1 Hz = 3000 publications\n\n");
  std::printf("%-24s %12s %14s\n", "desk", "deliveries", "share");
  std::uint64_t total = 0;
  for (int i = 0; i < 3; ++i) {
    const auto n = live.subscribers()[static_cast<std::size_t>(i)]
                       ->deliveries().size();
    total += n;
    std::printf("%-24s %12zu %13.0f%%\n", desks[i], n, 100.0 * n / 3000.0);
  }

  const Dollars billed =
      live.transport().ledger().total_cost(scenario.catalog);
  std::printf("\ndelivered %llu of 9000 potential (unfiltered) deliveries\n",
              static_cast<unsigned long long>(total));
  std::printf("billed egress this interval: $%.6f\n", billed);
  std::printf("unfiltered egress would be roughly 3x the subscriber share\n");
  return 0;
}
