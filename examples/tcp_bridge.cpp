// TCP bridge: the wire protocol over real sockets.
//
// Runs a miniature two-node deployment on localhost: a "region server"
// endpoint listens, a "client" endpoint connects, subscribes with a content
// filter, publishes a burst of ticks, and receives matching deliveries —
// every frame crossing an actual TCP connection through the 72-byte codec.
// This is the deployment-shaped path of the same protocol the simulation
// drives in-process.
//
//   ./tcp_bridge
#include <cstdio>

#include "broker/subscription_table.h"
#include "net/tcp.h"

using namespace multipub;

int main() {
  // --- Region server: a tiny broker over TCP ---
  broker::SubscriptionTable subscriptions;
  net::TcpEndpoint* server_ptr = nullptr;
  int reply_peer = 0;  // the accepted connection (first peer)

  net::TcpEndpoint server([&](const wire::Message& msg) {
    switch (msg.type) {
      case wire::MessageType::kSubscribe:
        subscriptions.subscribe(msg.topic, msg.subscriber, msg.filter);
        std::printf("[server] SUBSCRIBE client %d topic %d filter [%llu,%llu]\n",
                    msg.subscriber.value(), msg.topic.value(),
                    static_cast<unsigned long long>(msg.filter.lo),
                    static_cast<unsigned long long>(msg.filter.hi));
        break;
      case wire::MessageType::kPublish: {
        for (const auto& sub : subscriptions.subscriptions(msg.topic)) {
          if (!sub.filter.matches(msg.key)) continue;
          wire::Message deliver = msg;
          deliver.type = wire::MessageType::kDeliver;
          deliver.subscriber = sub.subscriber;
          server_ptr->send(reply_peer, deliver);
        }
        break;
      }
      default:
        break;
    }
  });
  server_ptr = &server;
  if (!server.listen(0)) {
    std::fprintf(stderr, "cannot listen\n");
    return 1;
  }
  std::printf("[server] listening on 127.0.0.1:%u\n", server.port());

  // --- Client: subscribes (keys 0..4), publishes keys 0..9 ---
  int delivered = 0;
  net::TcpEndpoint client([&](const wire::Message& msg) {
    if (msg.type == wire::MessageType::kDeliver) {
      ++delivered;
      std::printf("[client] DELIVER seq=%llu key=%llu (%llu bytes)\n",
                  static_cast<unsigned long long>(msg.seq),
                  static_cast<unsigned long long>(msg.key),
                  static_cast<unsigned long long>(msg.payload_bytes));
    }
  });
  const int peer = client.connect_to(server.port());
  if (peer < 0) {
    std::fprintf(stderr, "cannot connect\n");
    return 1;
  }

  wire::Message subscribe;
  subscribe.type = wire::MessageType::kSubscribe;
  subscribe.topic = TopicId{7};
  subscribe.subscriber = ClientId{1};
  subscribe.filter = {0, 4};
  client.send(peer, subscribe);

  for (std::uint64_t k = 0; k < 10; ++k) {
    wire::Message publish;
    publish.type = wire::MessageType::kPublish;
    publish.topic = TopicId{7};
    publish.publisher = ClientId{1};
    publish.seq = k;
    publish.key = k;
    publish.payload_bytes = 512;
    client.send(peer, publish);
  }

  // Pump both endpoints until the five matching deliveries arrive.
  for (int spins = 0; spins < 500 && delivered < 5; ++spins) {
    server.poll(5);
    client.poll(5);
  }

  std::printf("\nreceived %d of 10 publications (filter [0,4]) — %s\n",
              delivered, delivered == 5 ? "OK" : "UNEXPECTED");
  return delivered == 5 ? 0 : 1;
}
