// Offline what-if analysis over a recorded trace.
//
// Operations question: "how much would tightening our SLA cost?" Run the
// live system once, record the controller's inputs, then replay the same
// trace under a range of constraints — no cluster time needed.
//
//   ./trace_whatif
#include <cstdio>

#include "sim/live_runner.h"
#include "sim/trace.h"

using namespace multipub;

int main() {
  Rng rng(314);
  sim::WorkloadSpec workload;
  workload.interval_seconds = 30.0;
  workload.ratio = 95.0;
  workload.max_t = 150.0;
  const sim::Scenario scenario = sim::make_scenario(
      {{RegionId{0}, 3, 6}, {RegionId{4}, 3, 6}, {RegionId{5}, 2, 6}},
      workload, rng);

  // --- Record one production-like interval ---
  sim::LiveSystem live(scenario);
  live.deploy({geo::RegionSet::universe(10), core::DeliveryMode::kRouted});
  (void)live.run_interval(30.0, 1024, 1.0, rng);

  sim::TraceRecorder recorder;
  for (const auto& region : scenario.catalog.all()) {
    recorder.record(region.id,
                    live.region_manager(region.id).collect_reports().reports);
  }
  recorder.end_interval();
  const std::string trace_text = recorder.serialize();
  std::printf("recorded trace: %zu bytes, %zu interval(s)\n\n",
              trace_text.size(), recorder.intervals().size());

  // --- Replay under different SLAs ---
  std::string error;
  const auto trace = sim::parse_trace(trace_text, &error);
  if (!trace) {
    std::fprintf(stderr, "trace parse failed: %s\n", error.c_str());
    return 1;
  }

  std::printf("what-if: same traffic, different SLA bounds (ratio 95%%)\n");
  std::printf("%8s %-26s %10s %12s %s\n", "max_T", "deployment", "p95 (ms)",
              "$/day", "met");
  for (Millis max_t : {90.0, 110.0, 130.0, 150.0, 200.0, 300.0, 500.0}) {
    broker::Controller controller(scenario.catalog, scenario.backbone,
                                  scenario.population.latencies);
    controller.set_constraint(scenario.topic.topic, {95.0, max_t});
    const auto rounds = sim::replay_trace(*trace, controller);
    if (rounds.empty() || rounds[0].empty()) continue;
    const auto& result = rounds[0][0].result;
    std::printf("%8.0f %-26s %10.1f %12.2f %s\n", max_t,
                result.config.to_string().c_str(), result.percentile,
                core::scale_to_day(result.cost, 30.0),
                result.constraint_met ? "yes" : "no");
  }
  std::printf("\nEach row is the deployment MultiPub would have chosen for\n"
              "the recorded traffic under that bound — the cost of latency.\n");
  return 0;
}
