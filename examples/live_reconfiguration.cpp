// Live middleware demo: transparent reconfiguration in action.
//
// Boots the full event-driven stack — brokers in all ten regions, region
// managers, the controller, 4 publishers and 10 subscribers — deliberately
// misconfigured (all regions, routed). Then it alternates traffic intervals
// with controller rounds and prints how the deployment converges, what the
// clients experience, and what each interval costs.
//
//   ./live_reconfiguration
#include <cstdio>

#include "sim/live_runner.h"

using namespace multipub;

int main() {
  Rng rng(99);
  sim::WorkloadSpec workload;
  workload.interval_seconds = 30.0;
  workload.ratio = 75.0;
  workload.max_t = 140.0;  // 75 % of deliveries within 140 ms
  const sim::Scenario scenario = sim::make_scenario(
      {{RegionId{0}, 2, 5}, {RegionId{5}, 2, 5}}, workload, rng);

  // Bootstrap deliberately terrible: a single server in Sao Paulo — the
  // most expensive region, far from every client.
  const core::TopicConfig bootstrap{geo::RegionSet::single(RegionId{9}),
                                    core::DeliveryMode::kDirect};
  sim::LiveSystem live(scenario);
  live.deploy(bootstrap);
  std::printf("bootstrap deployment: %s\n\n", bootstrap.to_string().c_str());

  std::printf("%8s %-24s %10s %12s %12s\n", "interval", "deployed config",
              "p75 (ms)", "$/interval", "reconfig?");
  for (int interval = 1; interval <= 4; ++interval) {
    const auto run = live.run_interval(30.0, 1024, 1.0, rng);
    const auto decisions = live.control_round();

    const char* changed = "-";
    std::string config_str = "(bootstrap)";
    if (!decisions.empty()) {
      changed = decisions[0].changed ? "yes" : "no";
      config_str = decisions[0].result.config.to_string();
    }
    std::printf("%8d %-24s %10.1f %12.4f %12s\n", interval,
                config_str.c_str(), run.percentile, run.interval_cost,
                changed);
  }

  std::uint64_t reconnects = 0;
  for (const auto& sub : live.subscribers()) {
    reconnects += sub->reconnect_count();
  }
  std::printf(
      "\nsubscriber reconnections performed transparently: %llu\n"
      "(clients moved to their new closest region on kConfigUpdate)\n",
      static_cast<unsigned long long>(reconnects));
  return 0;
}
