// Quickstart: the MultiPub public API in ~60 lines.
//
// Builds a small global workload on the EC2-2016 region set, asks the
// optimizer for the cheapest configuration meeting "75 % of deliveries
// within 150 ms", and prints the answer next to the two static baselines.
//
//   ./quickstart
#include <cstdio>

#include "sim/baselines.h"
#include "sim/scenario.h"

using namespace multipub;

int main() {
  // 1. A deterministic synthetic client population: 5 publishers and 5
  //    subscribers near each of N. Virginia, Frankfurt and Tokyo.
  Rng rng(2017);
  sim::WorkloadSpec workload;
  workload.publish_rate_hz = 1.0;   // each publisher: one 1-KB msg/s
  workload.message_bytes = 1024;
  workload.ratio = 75.0;            // constraint: 75 % of deliveries...
  workload.max_t = 150.0;           // ...within 150 ms
  const sim::Scenario scenario = sim::make_scenario(
      {
          {RegionId{0}, 5, 5},  // us-east-1
          {RegionId{4}, 5, 5},  // eu-central-1
          {RegionId{5}, 5, 5},  // ap-northeast-1
      },
      workload, rng);

  // 2. Optimize: enumerate every (region subset, delivery mode)
  //    configuration, keep those meeting the constraint, take the cheapest.
  const core::Optimizer optimizer = scenario.make_optimizer();
  const core::OptimizerResult best = optimizer.optimize(scenario.topic);

  std::printf("MultiPub decision for <ratio=75%%, max=150ms>\n");
  std::printf("  configuration : %s\n", best.config.to_string().c_str());
  std::printf("  p75 delivery  : %.1f ms (constraint %s)\n", best.percentile,
              best.constraint_met ? "met" : "NOT met");
  std::printf("  cost          : $%.2f/day\n",
              core::scale_to_day(best.cost, scenario.interval_seconds));
  std::printf("  searched      : %zu configurations\n\n",
              best.configs_evaluated);

  // 3. Compare with the static deployments of paper §II-B.
  const auto one = sim::one_region_baseline(optimizer, scenario.topic);
  const auto all = sim::all_regions_baseline(
      optimizer, scenario.topic, core::DeliveryMode::kRouted,
      scenario.catalog.size());
  std::printf("Baselines:\n");
  std::printf("  one region  %-22s p75 %6.1f ms   $%.2f/day\n",
              one.config.to_string().c_str(), one.percentile,
              core::scale_to_day(one.cost, scenario.interval_seconds));
  std::printf("  all regions %-22s p75 %6.1f ms   $%.2f/day\n",
              all.config.to_string().c_str(), all.percentile,
              core::scale_to_day(all.cost, scenario.interval_seconds));
  return 0;
}
