// Global push-notification service (the paper's introduction motivation).
//
// One alert topic with publishers (alert producers) in two operations
// centers and subscribers (devices) spread across every region. The service
// has a per-topic SLA; the example sweeps the SLA bound and prints the
// configuration frontier MultiPub selects — including where it flips
// between routed and direct delivery and how many regions it rents.
//
//   ./push_notifications
#include <cstdio>

#include "sim/baselines.h"
#include "sim/sweep.h"

using namespace multipub;

int main() {
  Rng rng(13);

  // Devices: 8 subscribers near every region. Producers: 4 publishers near
  // N. Virginia + 4 near Frankfurt, each sending one 2-KB alert per second.
  std::vector<sim::PlacementSpec> placements;
  for (int r = 0; r < 10; ++r) {
    placements.push_back({RegionId{r}, 0, 8});
  }
  placements.push_back({RegionId{0}, 4, 0});
  placements.push_back({RegionId{4}, 4, 0});

  sim::WorkloadSpec workload;
  workload.message_bytes = 2048;
  workload.ratio = 90.0;  // SLA: 90 % of alerts within the bound
  const sim::Scenario scenario = sim::make_scenario(placements, workload, rng);
  const core::Optimizer optimizer = scenario.make_optimizer();

  std::printf("Global alert topic: 8 devices/region, producers in US+EU\n");
  std::printf("SLA sweep (90%% of alerts within max_T):\n");
  std::printf("%8s %-28s %10s %12s %8s\n", "max_T", "configuration",
              "p90 (ms)", "$/day", "met");
  for (const auto& point :
       sim::sweep_max_t(scenario, {120.0, 360.0, 20.0})) {
    std::printf("%8.0f %d regions / %-18s %10.1f %12.2f %8s\n", point.max_t,
                point.n_regions, core::to_string(point.mode),
                point.achieved_percentile, point.cost_per_day,
                point.constraint_met ? "yes" : "no");
  }

  auto topic = scenario.topic;
  topic.constraint.max = kUnreachable;
  const auto one = sim::one_region_baseline(optimizer, topic);
  const auto all = sim::all_regions_baseline(
      optimizer, topic, core::DeliveryMode::kRouted, scenario.catalog.size());
  std::printf("\nStatic baselines: one region $%.2f/day, all regions $%.2f/day\n",
              core::scale_to_day(one.cost, scenario.interval_seconds),
              core::scale_to_day(all.cost, scenario.interval_seconds));
  return 0;
}
