// Regional online game (the paper's Experiment 3 motivation).
//
// Players of a Tokyo-local game shard publish position updates on a shared
// topic. Latency budgets differ per game genre (the paper cites 150 ms for
// shooters, 500 ms for RPGs); this example shows how the genre's budget
// changes where MultiPub hosts the topic — and what that does to the bill.
//
//   ./game_regional
#include <cstdio>

#include "sim/scenario.h"

using namespace multipub;

namespace {

struct Genre {
  const char* name;
  Millis budget_ms;
};

}  // namespace

int main() {
  Rng rng(7);
  const RegionId tokyo = geo::RegionCatalog::ec2_2016().find("ap-northeast-1");

  // 100 publishers + 100 subscribers, all closest to Tokyo; position
  // updates are small (256 B) but frequent (10 Hz); 95 % of updates must
  // arrive within the genre budget.
  sim::Scenario scenario = sim::make_experiment3_scenario(tokyo, rng);
  for (auto& pub : scenario.topic.publishers) {
    pub.msg_count *= 10;        // 10 Hz instead of 1 Hz
    pub.total_bytes = pub.msg_count * 256;
  }

  const core::Optimizer optimizer = scenario.make_optimizer();

  std::printf("Tokyo game shard: 100 players publishing at 10 Hz (256 B)\n");
  std::printf("%-22s %-22s %10s %12s %s\n", "genre", "configuration",
              "p95 (ms)", "$/day", "constraint");
  for (const Genre genre : {Genre{"first-person shooter", 60.0},
                            Genre{"action RPG", 150.0},
                            Genre{"turn-based / social", 500.0}}) {
    scenario.topic.constraint = {95.0, genre.budget_ms};
    const auto result = optimizer.optimize(scenario.topic);
    std::printf("%-22s %-22s %10.1f %12.2f %s\n", genre.name,
                result.config.to_string().c_str(), result.percentile,
                core::scale_to_day(result.cost, scenario.interval_seconds),
                result.constraint_met ? "met" : "NOT met");
  }

  std::printf(
      "\nLoose budgets let MultiPub serve Tokyo players from cheaper\n"
      "regions, cutting the outgoing-bandwidth bill (paper Fig. 5a).\n");
  return 0;
}
