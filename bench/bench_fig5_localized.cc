// Figure 5: localized pub/sub delivery (Experiment 3).
//
// 100 publishers + 100 subscribers all local to one expensive region —
// (5a) Tokyo, (5b) Sao Paulo — ratio 95 %. Sweeping max_T shows MultiPub
// migrating the topic to cheaper faraway regions once the budget allows,
// with savings of the paper's order (36 % / 65 %).
#include <cstdio>

#include "bench_json.h"
#include "sim/sweep.h"

using namespace multipub;

namespace {

void run_home(bench::BenchReport& report, const char* label, RegionId home,
              double paper_saving) {
  Rng rng(2017);
  const sim::Scenario scenario = sim::make_experiment3_scenario(home, rng);
  const auto optimizer = scenario.make_optimizer();

  // The local (fast, expensive) anchor: tightest feasible bound.
  auto probe = scenario.topic;
  probe.constraint.max = 1.0;
  const auto fastest = optimizer.optimize(probe);

  std::printf("--- Figure 5%s: clients local to %s ---\n", label,
              scenario.catalog.at(home).name.c_str());
  std::printf("fastest possible: p95 %.1f ms with %s\n", fastest.percentile,
              fastest.config.to_string().c_str());

  const sim::SweepRange range{fastest.percentile, fastest.percentile + 280.0,
                              10.0};
  const auto points = sim::sweep_max_t(scenario, range);
  std::printf("%8s %-24s %10s %12s\n", "max_T", "configuration", "p95 (ms)",
              "$/day");
  core::TopicConfig last_config;
  for (const auto& p : points) {
    // Reconstruct the configuration string via a fresh optimize (sweep
    // returns counts/mode; the full set is informative here).
    auto topic = scenario.topic;
    topic.constraint.max = p.max_t;
    const auto result = optimizer.optimize(topic);
    last_config = result.config;
    std::printf("%8.0f %-24s %10.1f %12.2f\n", p.max_t,
                result.config.to_string().c_str(), p.achieved_percentile,
                p.cost_per_day);
    report.row()
        .str("home", scenario.catalog.at(home).name)
        .num("max_t", p.max_t)
        .str("config", result.config.to_string())
        .num("p95_ms", p.achieved_percentile)
        .num("cost_per_day", p.cost_per_day);
  }

  const double local_day =
      core::scale_to_day(fastest.cost, scenario.interval_seconds);
  const double relaxed_day = points.back().cost_per_day;
  const double saving = 100.0 * (1.0 - relaxed_day / local_day);
  std::printf("local $%.2f/day -> relaxed $%.2f/day: saving %.1f %% "
              "(paper: %.0f %%)\n",
              local_day, relaxed_day, saving, paper_saving);
  std::printf("relaxed config leaves the expensive home region: %s\n\n",
              !last_config.regions.contains(home) ? "PASS" : "FAIL");
}

}  // namespace

int main() {
  std::printf("=== Figure 5: localized pub/sub delivery (ratio 95%%) ===\n\n");
  const auto catalog = geo::RegionCatalog::ec2_2016();
  bench::BenchReport report("fig5_localized");
  run_home(report, "a", catalog.find("ap-northeast-1"), 36.0);
  run_home(report, "b", catalog.find("sa-east-1"), 65.0);
  if (!report.write()) return 1;
  return 0;
}
