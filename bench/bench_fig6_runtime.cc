// Figure 6: runtime analysis of the optimizer (Experiment 4).
//
// (6a) runtime vs. the number of publishers = subscribers at 10 regions —
//      linear in the message count with the paper's exact-list evaluation;
// (6b) runtime vs. the number of regions at 100 publishers/subscribers —
//      exponential (2*(2^N - 1) - N configurations).
// Both use the kExactList strategy to reproduce the paper's algorithm; a
// companion counter benchmark shows the weighted fast path for contrast.
#include <benchmark/benchmark.h>

#include "sim/scenario.h"

using namespace multipub;

namespace {

/// Builds an Experiment-1-style scenario with `per_region` publishers and
/// subscribers near each of the first `n_regions` EC2 regions.
sim::Scenario scaled_scenario(std::size_t n_regions, std::size_t clients_total) {
  Rng rng(2017);
  const std::size_t per_region =
      std::max<std::size_t>(1, clients_total / n_regions);
  std::vector<sim::PlacementSpec> placements;
  for (std::size_t r = 0; r < n_regions; ++r) {
    placements.push_back({RegionId{static_cast<RegionId::underlying_type>(r)},
                          per_region, per_region});
  }
  sim::WorkloadSpec workload;
  workload.ratio = 75.0;
  workload.max_t = 150.0;
  workload.interval_seconds = 60.0;
  sim::Scenario scenario = sim::make_scenario(placements, workload, rng);
  if (n_regions < 10) {
    // Restrict the world to the first n regions so the optimizer's search
    // space shrinks the way Fig. 6b varies it.
    scenario.catalog = scenario.catalog.prefix(n_regions);
    scenario.backbone = scenario.backbone.prefix(n_regions);
    geo::ClientLatencyMap truncated(n_regions);
    for (std::size_t c = 0; c < scenario.population.latencies.n_clients();
         ++c) {
      const auto row = scenario.population.latencies.row(
          ClientId{static_cast<ClientId::underlying_type>(c)});
      truncated.add_client(row.subspan(0, n_regions));
    }
    scenario.population.latencies = std::move(truncated);
  }
  return scenario;
}

void BM_Fig6a_ClientsExact(benchmark::State& state) {
  const auto clients = static_cast<std::size_t>(state.range(0));
  const sim::Scenario scenario = scaled_scenario(10, clients);
  const auto optimizer = scenario.make_optimizer();
  core::OptimizerOptions options;
  options.strategy = core::EvaluationStrategy::kExactList;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.optimize(scenario.topic, options));
  }
  state.counters["pubs"] = static_cast<double>(scenario.topic.publishers.size());
  state.counters["subs"] =
      static_cast<double>(scenario.topic.subscribers.size());
  state.counters["deliveries"] =
      static_cast<double>(scenario.topic.total_deliveries());
}
BENCHMARK(BM_Fig6a_ClientsExact)
    ->Arg(10)->Arg(20)->Arg(40)->Arg(60)->Arg(80)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_Fig6b_RegionsExact(benchmark::State& state) {
  const auto n_regions = static_cast<std::size_t>(state.range(0));
  const sim::Scenario scenario = scaled_scenario(n_regions, 100);
  const auto optimizer = scenario.make_optimizer();
  core::OptimizerOptions options;
  options.strategy = core::EvaluationStrategy::kExactList;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.optimize(scenario.topic, options));
  }
  state.counters["configs"] = static_cast<double>(
      2 * ((1u << n_regions) - 1) - n_regions);
}
BENCHMARK(BM_Fig6b_RegionsExact)
    ->DenseRange(2, 10, 1)
    ->Unit(benchmark::kMillisecond);

void BM_Fig6_WeightedFastPath(benchmark::State& state) {
  // Contrast: the weighted evaluator at the paper's largest setting.
  const sim::Scenario scenario = scaled_scenario(10, 100);
  const auto optimizer = scenario.make_optimizer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.optimize(scenario.topic));
  }
}
BENCHMARK(BM_Fig6_WeightedFastPath)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
