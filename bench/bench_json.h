// Shared machine-readable output for the bench_* report generators.
//
// Every bench emits, next to its human-readable table, one JSON document of
// the same fixed shape so scripts and CI trend-tracking can consume any
// bench without per-binary parsers:
//
//   {"bench": "<name>", "rows": [{...}, {...}, ...]}
//
// Rows are flat objects of strings, numbers and booleans; heterogeneous
// rows (e.g. two sub-studies in one bench) disambiguate themselves with a
// discriminator field. The writer is deliberately tiny — ordered fields,
// no nesting — because the benches only ever produce tables.
//
// (The three google-benchmark binaries keep the library's native
// --benchmark_format=json instead; this header is for the report benches.)
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace multipub::bench {

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status), 0 where the proc filesystem is unavailable. The
/// high-water mark is process-wide and monotone, so a row records the peak
/// up to its creation — a sweep's rows show where memory actually grew.
inline unsigned long long peak_rss_bytes() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  unsigned long long kb = 0;
  while (std::fgets(line, sizeof line, status) != nullptr) {
    if (std::sscanf(line, "VmHWM: %llu", &kb) == 1) break;
  }
  std::fclose(status);
  return kb * 1024ULL;
}

/// One output row; fields render in insertion order.
class JsonRow {
 public:
  JsonRow& num(const std::string& key, double value) {
    char buf[64];
    // %.17g round-trips every finite double; non-finite values have no JSON
    // literal, so they degrade to null rather than corrupt the document.
    if (value != value || value > 1.7e308 || value < -1.7e308) {
      return raw(key, "null");
    }
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return raw(key, buf);
  }

  JsonRow& integer(const std::string& key, long long value) {
    return raw(key, std::to_string(value));
  }

  JsonRow& uinteger(const std::string& key, unsigned long long value) {
    return raw(key, std::to_string(value));
  }

  JsonRow& boolean(const std::string& key, bool value) {
    return raw(key, value ? "true" : "false");
  }

  JsonRow& str(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    for (const char c : value) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    return raw(key, quoted);
  }

 private:
  friend class BenchReport;

  JsonRow& raw(const std::string& key, std::string literal) {
    fields_.emplace_back(key, std::move(literal));
    return *this;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Collects rows and writes `{"bench": name, "rows": [...]}`.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Every row leads with peak_rss_bytes, captured at row creation, so all
  /// benches publish their memory footprint without per-binary plumbing.
  JsonRow& row() {
    rows_.emplace_back();
    rows_.back().uinteger("peak_rss_bytes", peak_rss_bytes());
    return rows_.back();
  }

  /// Writes to BENCH_<name>.json in the working directory (the benches run
  /// from the repo root, so curated results land next to the sources).
  bool write() const { return write_to("BENCH_" + name_ + ".json"); }

  bool write_to(const std::string& path) const {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(out, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n",
                 name_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(out, "    {");
      const auto& fields = rows_[i].fields_;
      for (std::size_t f = 0; f < fields.size(); ++f) {
        std::fprintf(out, "\"%s\": %s%s", fields[f].first.c_str(),
                     fields[f].second.c_str(),
                     f + 1 < fields.size() ? ", " : "");
      }
      std::fprintf(out, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    return true;
  }

 private:
  std::string name_;
  std::vector<JsonRow> rows_;
};

}  // namespace multipub::bench
