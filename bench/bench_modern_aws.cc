// Beyond the paper: MultiPub on the 2024 AWS footprint (30 regions).
//
// The paper's brute force stops being viable past ~15 regions
// (2*(2^30-1)-30 ≈ 2.1 billion configurations); this bench runs the
// Experiment-1 workload shape on the modern catalog with the heuristic +
// pruning recipe and prints the cost/latency frontier, demonstrating that
// the paper's proposed scaling directions carry its result to today's
// clouds.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_json.h"
#include "core/heuristic.h"
#include "core/pruning.h"
#include "geo/king_synth.h"
#include "geo/modern.h"

using namespace multipub;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  std::printf("=== MultiPub on the 2024 AWS footprint (30 regions) ===\n");
  const auto world = geo::modern_aws_world();
  Rng rng(2024);
  // 3 publishers + 3 subscribers near every region: 90 + 90 clients.
  auto population =
      geo::synthesize_population(world.catalog, world.backbone, 6, {}, rng);

  core::TopicState topic;
  topic.topic = TopicId{0};
  topic.constraint = {75.0, 0.0};
  std::vector<ClientId> pubs, subs;
  for (std::size_t i = 0; i < population.size(); ++i) {
    const ClientId id{static_cast<ClientId::underlying_type>(i)};
    (i % 2 == 0 ? pubs : subs).push_back(id);
  }
  topic.publishers = core::uniform_publishers(pubs, 60, 1024);
  topic.subscribers = core::unit_subscribers(subs);

  const core::HeuristicOptimizer heuristic(world.catalog, world.backbone,
                                           population.latencies);

  std::printf("workload: %zu pubs + %zu subs across 30 regions, 1 KB @ 1 Hz, "
              "ratio 75%%\n", pubs.size(), subs.size());
  std::printf("brute force would evaluate 2*(2^30-1)-30 = 2147483586 "
              "configurations per point.\n\n");
  bench::BenchReport report("modern_aws");
  std::printf("%8s %9s %12s %9s %-7s %7s %8s %s\n", "max_T", "p75(ms)",
              "$/day", "regions", "mode", "evals", "ms", "met");
  for (Millis max_t = 60.0; max_t <= 260.0; max_t += 20.0) {
    topic.constraint.max = max_t;
    const double t0 = now_ms();
    const auto result = heuristic.optimize(topic);
    const double solve_ms = now_ms() - t0;
    std::printf("%8.0f %9.1f %12.2f %9d %-7s %7zu %8.1f %s\n", max_t,
                result.percentile,
                core::scale_to_day(result.cost, 60.0),
                result.config.region_count(),
                core::to_string(result.config.mode),
                result.configs_evaluated, solve_ms,
                result.constraint_met ? "yes" : "no");
    report.row()
        .num("max_t", max_t)
        .num("p75_ms", result.percentile)
        .num("cost_per_day", core::scale_to_day(result.cost, 60.0))
        .integer("regions", result.config.region_count())
        .str("mode", core::to_string(result.config.mode))
        .uinteger("evals", result.configs_evaluated)
        .num("solve_ms", solve_ms)
        .boolean("constraint_met", result.constraint_met);
  }

  // Pruning recipe: a globally spread topic keeps all 30 candidates (every
  // region is someone's closest), but a localized topic prunes hard.
  const auto global_pruned = core::prune_candidates(
      topic, population.latencies, world.catalog, {.keep_closest = 2});
  std::printf("\npruning, global topic   : %d of 30 candidates "
              "(everyone's closest region is in play)\n",
              global_pruned.size());

  const RegionId tokyo = world.catalog.find("ap-northeast-1");
  auto local_pop = geo::synthesize_local_population(
      world.catalog, world.backbone, tokyo, 60, {}, rng);
  core::TopicState local_topic;
  local_topic.topic = TopicId{1};
  local_topic.constraint = {95.0, 150.0};
  std::vector<ClientId> lp, ls;
  for (std::size_t i = 0; i < local_pop.size(); ++i) {
    const ClientId id{static_cast<ClientId::underlying_type>(i)};
    (i % 2 == 0 ? lp : ls).push_back(id);
  }
  local_topic.publishers = core::uniform_publishers(lp, 60, 1024);
  local_topic.subscribers = core::unit_subscribers(ls);
  const auto local_pruned = core::prune_candidates(
      local_topic, local_pop.latencies, world.catalog, {.keep_closest = 2});
  std::printf("pruning, Tokyo-local topic: %d of 30 candidates -> exhaustive "
              "search needs only %.0f configurations.\n",
              local_pruned.size(),
              2.0 * (std::pow(2.0, local_pruned.size()) - 1.0) -
                  local_pruned.size());
  if (!report.write()) return 1;
  return 0;
}
