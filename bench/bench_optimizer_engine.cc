// Speedup benchmark: batched EvaluationEngine vs. the seed's per-config
// reference path, on the Fig-6b-style scenario (100 clients spread over the
// first N EC2 regions), kWeighted strategy, N in {6, 8, 10}.
//
// Prints a human-readable table and writes BENCH_optimizer.json in the
// shared {"bench", "rows"} shape (rows of {n_regions, configs, reference_ms,
// engine_ms, speedup, identical}) so CI and scripts can track the ratio.
// Also cross-checks that both paths return identical results on every
// measured run.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "core/evaluation_engine.h"
#include "core/optimizer.h"
#include "sim/scenario.h"

using namespace multipub;

namespace {

sim::Scenario scaled_scenario(std::size_t n_regions, std::size_t clients_total) {
  Rng rng(2017);
  const std::size_t per_region =
      std::max<std::size_t>(1, clients_total / n_regions);
  std::vector<sim::PlacementSpec> placements;
  for (std::size_t r = 0; r < n_regions; ++r) {
    placements.push_back({RegionId{static_cast<RegionId::underlying_type>(r)},
                          per_region, per_region});
  }
  sim::WorkloadSpec workload;
  workload.ratio = 75.0;
  workload.max_t = 150.0;
  workload.interval_seconds = 60.0;
  sim::Scenario scenario = sim::make_scenario(placements, workload, rng);
  if (n_regions < 10) {
    scenario.catalog = scenario.catalog.prefix(n_regions);
    scenario.backbone = scenario.backbone.prefix(n_regions);
    geo::ClientLatencyMap truncated(n_regions);
    for (std::size_t c = 0; c < scenario.population.latencies.n_clients();
         ++c) {
      const auto row = scenario.population.latencies.row(
          ClientId{static_cast<ClientId::underlying_type>(c)});
      truncated.add_client(row.subspan(0, n_regions));
    }
    scenario.population.latencies = std::move(truncated);
  }
  return scenario;
}

/// Best-of-`reps` wall time in milliseconds for `iters` calls of `fn`.
template <typename Fn>
double time_ms(int reps, int iters, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count() / iters;
    best = std::min(best, ms);
  }
  return best;
}

bool same_result(const core::OptimizerResult& a,
                 const core::OptimizerResult& b) {
  return a.config == b.config && a.percentile == b.percentile &&
         a.cost == b.cost && a.constraint_met == b.constraint_met &&
         a.configs_evaluated == b.configs_evaluated;
}

}  // namespace

int main() {
  struct Line {
    std::size_t n_regions = 0;
    std::size_t configs = 0;
    double reference_ms = 0.0;
    double engine_ms = 0.0;
    bool identical = false;
  };
  std::vector<Line> lines;

  for (std::size_t n : {std::size_t{6}, std::size_t{8}, std::size_t{10}}) {
    const sim::Scenario scenario = scaled_scenario(n, 100);
    const auto optimizer = scenario.make_optimizer();
    core::EvaluationEngine engine(optimizer);
    const core::OptimizerOptions options;  // kWeighted, kBoth, all regions

    Line line;
    line.n_regions = n;
    const auto ref = optimizer.optimize_reference(scenario.topic, options);
    line.configs = ref.configs_evaluated;
    line.identical = same_result(ref, engine.optimize(scenario.topic, options));

    const int iters = n >= 10 ? 3 : 10;
    line.reference_ms = time_ms(5, iters, [&] {
      (void)optimizer.optimize_reference(scenario.topic, options);
    });
    line.engine_ms = time_ms(5, iters, [&] {
      (void)engine.optimize(scenario.topic, options);
    });
    lines.push_back(line);
  }

  std::printf("%-10s %10s %14s %12s %10s %10s\n", "n_regions", "configs",
              "reference_ms", "engine_ms", "speedup", "identical");
  for (const auto& line : lines) {
    std::printf("%-10zu %10zu %14.3f %12.3f %9.1fx %10s\n", line.n_regions,
                line.configs, line.reference_ms, line.engine_ms,
                line.reference_ms / line.engine_ms,
                line.identical ? "yes" : "NO");
  }

  bench::BenchReport report("optimizer");
  for (const auto& line : lines) {
    report.row()
        .uinteger("n_regions", line.n_regions)
        .uinteger("configs", line.configs)
        .num("reference_ms", line.reference_ms)
        .num("engine_ms", line.engine_ms)
        .num("speedup", line.reference_ms / line.engine_ms)
        .boolean("identical", line.identical);
  }
  if (!report.write()) return 1;

  // Non-zero exit when the engine diverges, so CI can run this as a check.
  for (const auto& line : lines) {
    if (!line.identical) return 1;
  }
  return 0;
}
