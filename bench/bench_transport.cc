// Live-transport throughput benchmark: the batched zero-copy socket hot
// path (DESIGN.md §16) against the per-frame-flush reference path, over a
// real loopback node pair in one process.
//
// Two SocketTransports play sender and receiver node; the sender pumps two
// workloads through the wire:
//
//   - publish-heavy: point-to-point kPublish stream, region 0 -> region 1
//     (one frame per send(): the broker-to-broker forwarding shape);
//   - fan-out-heavy: send_batch() of one publication to F client targets
//     homed on the receiver node (the broker-to-subscribers delivery
//     shape, where the batched path encodes once and patches per target).
//
// Both workloads run once per transport mode, freshly constructed; traffic
// is sent in small chunks (256 frames) between event-loop passes so the
// unbatched mode really pays one write syscall per frame instead of hiding
// behind backpressure coalescing. The bench reports messages/s per mode
// plus the syscall/telemetry counters that explain the gap, and writes
// BENCH_transport.json in the shared {"bench", "rows"} shape.
//
// Exit gates:
//   - billed bytes (inter-region and internet meters), sent and delivered
//     counts diverging between the two modes of the same workload fails
//     ALWAYS — batching must be invisible to the billing/counter contract;
//   - a batched row whose frames_per_flush telemetry is not > 1 fails
//     ALWAYS (the telemetry must prove coalescing actually happened);
//   - fan-out batched-over-unbatched speedup below 3x fails on full-size
//     runs (>= 100k fan-out messages; smaller smoke runs publish honest
//     numbers without the gate).
//
// Usage: bench_transport [--publish-msgs N] [--fanout-batches N]
//                        [--fanout F] [--payload BYTES]
//                        [--transport-batching on|off|both]
// (default: 120k publishes, 6000 batches x 32 targets, 200-byte payloads,
// both modes; single-mode runs are for profiling and skip the gates)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "net/address.h"
#include "net/socket_transport.h"
#include "wire/message.h"

using namespace multipub;

namespace {

constexpr std::size_t kChunkFrames = 256;

struct Params {
  std::uint64_t publish_msgs = 120'000;
  std::uint64_t fanout_batches = 6'000;
  std::uint64_t fanout = 32;
  Bytes payload = 200;
};

struct RunResult {
  double wall_ms = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  Bytes inter_region_bytes = 0;
  Bytes internet_bytes = 0;
  net::TransportStats stats;

  [[nodiscard]] double msgs_per_sec() const {
    return wall_ms <= 0.0 ? 0.0
                          : static_cast<double>(messages) * 1000.0 / wall_ms;
  }
};

wire::Message publication(const Params& params) {
  wire::Message msg;
  msg.type = wire::MessageType::kPublish;
  msg.topic = TopicId{7};
  msg.publisher = ClientId{1};
  msg.payload_bytes = params.payload;
  return msg;
}

/// One workload run on a fresh loopback pair. `fanout` false = the
/// publish-heavy stream, true = the send_batch fan-out shape.
RunResult run_workload(bool batching, bool fanout, const Params& params) {
  net::SocketTransport sender;   // node 0
  net::SocketTransport receiver; // node 1
  sender.set_self_node(0);
  receiver.set_self_node(1);
  sender.set_batching(batching);
  receiver.set_batching(batching);
  // Regions live on their own node; every client is homed on the receiver.
  const auto resolver = [](net::Address to) {
    return to.kind == net::Address::Kind::kRegion ? to.id : 1;
  };
  sender.set_address_resolver(resolver);
  receiver.set_address_resolver(resolver);
  if (!receiver.listen(0)) {
    std::fprintf(stderr, "cannot listen on loopback\n");
    std::exit(1);
  }
  sender.add_peer(1, receiver.port());

  std::uint64_t received = 0;
  const auto count = [&received](const wire::Message&) { ++received; };
  receiver.register_handler(net::Address::region(RegionId{1}), count);
  std::vector<net::Address> targets;
  for (std::uint64_t c = 0; c < params.fanout; ++c) {
    const net::Address client =
        net::Address::client(ClientId{static_cast<std::int32_t>(c)});
    targets.push_back(client);
    receiver.register_handler(client, count);
  }

  const std::uint64_t expected =
      fanout ? params.fanout_batches * params.fanout : params.publish_msgs;
  const net::Address from = net::Address::region(RegionId{0});
  const net::Address to_region = net::Address::region(RegionId{1});
  wire::Message msg = publication(params);

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t produced = 0;
  std::uint64_t seq = 0;
  while (produced < expected) {
    // One chunk of traffic, then one pass of both event loops: small
    // enough that the socket buffer never backpressures the unbatched
    // mode into accidental coalescing.
    std::uint64_t chunk = 0;
    while (produced < expected && chunk < kChunkFrames) {
      msg.seq = seq++;
      if (fanout) {
        sender.send_batch(from, targets, msg, wire::MessageType::kDeliver);
        produced += params.fanout;
        chunk += params.fanout;
      } else {
        sender.send(from, to_region, msg);
        ++produced;
        ++chunk;
      }
    }
    sender.poll_once(0);
    receiver.poll_once(0);
  }
  const auto deadline = start + std::chrono::seconds(120);
  while (received < expected) {
    if (std::chrono::steady_clock::now() > deadline) {
      std::fprintf(stderr, "workload stalled: %llu of %llu delivered\n",
                   static_cast<unsigned long long>(received),
                   static_cast<unsigned long long>(expected));
      std::exit(1);
    }
    sender.poll_once(1);
    receiver.poll_once(1);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;

  RunResult result;
  result.wall_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  result.messages = expected;
  result.sent = sender.sent_count();
  result.delivered = receiver.delivered_count();
  result.inter_region_bytes = sender.inter_region_bytes(RegionId{0});
  result.internet_bytes = sender.internet_bytes(RegionId{0});
  result.stats = sender.stats();
  return result;
}

void print_row(const char* workload, bool batching, const RunResult& r) {
  std::printf(
      "%-8s %-9s %9.1f ms %12.0f msg/s  flush_syscalls %9llu  "
      "frames/flush %7.1f\n",
      workload, batching ? "batched" : "unbatched", r.wall_ms,
      r.msgs_per_sec(),
      static_cast<unsigned long long>(r.stats.flush_syscalls()),
      r.stats.frames_per_flush());
}

void add_row(bench::BenchReport& report, const char* workload, bool batching,
             const RunResult& r) {
  report.row()
      .str("workload", workload)
      .boolean("batched", batching)
      .uinteger("messages", r.messages)
      .num("wall_ms", r.wall_ms)
      .num("msgs_per_sec", r.msgs_per_sec())
      .uinteger("sent", r.sent)
      .uinteger("delivered", r.delivered)
      .uinteger("inter_region_bytes", r.inter_region_bytes)
      .uinteger("internet_bytes", r.internet_bytes)
      .uinteger("sendmsg_calls", r.stats.sendmsg_calls)
      .uinteger("send_calls", r.stats.send_calls)
      .uinteger("flush_syscalls", r.stats.flush_syscalls())
      .uinteger("read_calls", r.stats.read_calls)
      .uinteger("bytes_sent", r.stats.bytes_sent)
      .uinteger("frames_sent", r.stats.frames_sent)
      .uinteger("flushes", r.stats.flushes)
      .uinteger("partial_flushes", r.stats.partial_flushes)
      .num("frames_per_flush", r.stats.frames_per_flush())
      .uinteger("pool_acquires", r.stats.pool_acquires)
      .uinteger("pool_high_water", r.stats.pool_high_water)
      .uinteger("syscall_soft_errors", r.stats.syscall_soft_errors);
}

/// The counters batching must not change: the billing/counter contract.
bool identical_contract(const char* workload, const RunResult& on,
                        const RunResult& off) {
  bool ok = true;
  const auto check = [&](const char* what, std::uint64_t a, std::uint64_t b) {
    if (a == b) return;
    std::fprintf(stderr,
                 "FAIL %s: %s diverges between modes (batched %llu, "
                 "unbatched %llu)\n",
                 workload, what, static_cast<unsigned long long>(a),
                 static_cast<unsigned long long>(b));
    ok = false;
  };
  check("sent", on.sent, off.sent);
  check("delivered", on.delivered, off.delivered);
  check("inter_region_bytes", on.inter_region_bytes, off.inter_region_bytes);
  check("internet_bytes", on.internet_bytes, off.internet_bytes);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Params params;
  std::string mode = "both";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--publish-msgs") {
      params.publish_msgs = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--fanout-batches") {
      params.fanout_batches = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--fanout") {
      params.fanout = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--payload") {
      params.payload = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--transport-batching") {
      mode = value();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (mode != "on" && mode != "off" && mode != "both") {
    std::fprintf(stderr, "--transport-batching must be on, off or both\n");
    return 2;
  }
  if (params.fanout == 0 || params.fanout_batches == 0 ||
      params.publish_msgs == 0) {
    std::fprintf(stderr, "sizes must be > 0\n");
    return 2;
  }

  bench::BenchReport report("transport");
  std::printf("bench_transport: loopback node pair, payload %llu B, "
              "fan-out %llu\n",
              static_cast<unsigned long long>(params.payload),
              static_cast<unsigned long long>(params.fanout));

  bool failed = false;
  double fanout_speedup = 0.0;
  for (const bool fanout : {false, true}) {
    const char* workload = fanout ? "fanout" : "publish";
    RunResult on;
    RunResult off;
    if (mode != "off") {
      on = run_workload(/*batching=*/true, fanout, params);
      print_row(workload, true, on);
      add_row(report, workload, true, on);
      if (on.stats.frames_per_flush() <= 1.0) {
        std::fprintf(stderr,
                     "FAIL %s: batched frames_per_flush %.2f is not > 1 — "
                     "no coalescing happened\n",
                     workload, on.stats.frames_per_flush());
        failed = true;
      }
    }
    if (mode != "on") {
      off = run_workload(/*batching=*/false, fanout, params);
      print_row(workload, false, off);
      add_row(report, workload, false, off);
    }
    if (mode == "both") {
      if (!identical_contract(workload, on, off)) failed = true;
      const double speedup =
          off.msgs_per_sec() <= 0.0
              ? 0.0
              : on.msgs_per_sec() / off.msgs_per_sec();
      std::printf("%-8s speedup (batched / unbatched): %.2fx\n", workload,
                  speedup);
      if (fanout) fanout_speedup = speedup;
    }
  }

  const bool full_size =
      params.fanout_batches * params.fanout >= 100'000 && mode == "both";
  if (full_size && fanout_speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL fanout: batched speedup %.2fx below the 3x gate at "
                 "full size\n",
                 fanout_speedup);
    failed = true;
  }

  if (!report.write()) return 1;
  if (failed) return 1;
  std::printf("bench_transport: OK\n");
  return 0;
}
