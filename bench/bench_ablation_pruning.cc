// Ablation: candidate-region pruning (paper §V-F).
//
// Measures, over the three experiment workloads, how much pruning shrinks
// the configuration search and whether the pruned answer deviates from the
// exhaustive optimum.
#include <chrono>
#include <cstdio>

#include "bench_json.h"
#include "core/pruning.h"
#include "sim/scenario.h"

using namespace multipub;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void run_case(bench::BenchReport& report, const char* label,
              const sim::Scenario& scenario, Millis max_t,
              int keep_closest) {
  auto topic = scenario.topic;
  topic.constraint.max = max_t;
  const auto optimizer = scenario.make_optimizer();

  const double t0 = now_ms();
  const auto full = optimizer.optimize(topic);
  const double t1 = now_ms();

  const auto candidates = core::prune_candidates(
      topic, scenario.population.latencies, scenario.catalog,
      {.keep_closest = keep_closest});
  core::OptimizerOptions pruned_options;
  pruned_options.candidates = candidates;
  const double t2 = now_ms();
  const auto pruned = optimizer.optimize(topic, pruned_options);
  const double t3 = now_ms();

  const bool same = pruned.config == full.config;
  const double cost_gap =
      full.cost > 0 ? 100.0 * (pruned.cost - full.cost) / full.cost : 0.0;
  std::printf("%-28s m=%d  configs %4zu -> %4zu  time %7.2f -> %7.2f ms  "
              "same-answer %-3s  cost-gap %+.2f %%\n",
              label, keep_closest, full.configs_evaluated,
              pruned.configs_evaluated, t1 - t0, t3 - t2, same ? "yes" : "no",
              cost_gap);
  report.row()
      .str("workload", label)
      .integer("keep_closest", keep_closest)
      .uinteger("full_configs", full.configs_evaluated)
      .uinteger("pruned_configs", pruned.configs_evaluated)
      .num("full_ms", t1 - t0)
      .num("pruned_ms", t3 - t2)
      .boolean("same_answer", same)
      .num("cost_gap_pct", cost_gap);
}

}  // namespace

int main() {
  std::printf("=== Ablation: region pruning (keep each client's m closest + "
              "cheapest region) ===\n");
  Rng rng(2017);
  const auto exp1 = sim::make_experiment1_scenario(rng);
  const auto exp2 = sim::make_experiment2_scenario(rng);
  const auto exp3 = sim::make_experiment3_scenario(RegionId{5}, rng);

  bench::BenchReport report("ablation_pruning");
  for (int m : {1, 2, 3}) {
    run_case(report, "exp1-global  max_T=150", exp1, 150.0, m);
    run_case(report, "exp2-asym    max_T=130", exp2, 130.0, m);
    run_case(report, "exp3-tokyo   max_T=200", exp3, 200.0, m);
    std::printf("\n");
  }
  std::printf("expectation: m>=2 preserves the optimum while cutting the\n"
              "search space by an order of magnitude on localized topics.\n");
  if (!report.write()) return 1;
  return 0;
}
