// Figure 3: MultiPub vs. other approaches (Experiment 1).
//
// Workload: one topic, 10 publishers + 10 subscribers near each of the 10
// EC2 regions, 1 msg/s of 1 KB each, ratio 75 %. Sweeps max_T and prints:
//   (3a) achieved p75 delivery time — MultiPub vs. the static baselines,
//   (3b) cost per day,
//   (3c) number of regions MultiPub uses and the delivery mode.
#include <algorithm>
#include <cstdio>

#include "bench_json.h"
#include "sim/baselines.h"
#include "sim/sweep.h"

using namespace multipub;

int main() {
  Rng rng(2017);
  const sim::Scenario scenario = sim::make_experiment1_scenario(rng);
  const auto optimizer = scenario.make_optimizer();

  // Static baselines (horizontal lines in the paper's plots).
  auto topic = scenario.topic;
  topic.constraint.max = kUnreachable;
  const auto one = sim::one_region_baseline(optimizer, topic);
  const auto all = sim::all_regions_baseline(
      optimizer, topic, core::DeliveryMode::kRouted, scenario.catalog.size());
  const double one_day = core::scale_to_day(one.cost, scenario.interval_seconds);
  const double all_day = core::scale_to_day(all.cost, scenario.interval_seconds);

  std::printf("=== Figure 3: MultiPub vs. other approaches ===\n");
  std::printf("workload: 100 pubs + 100 subs (10+10 per region), 1 KB @ 1 Hz, "
              "ratio 75%%\n\n");
  std::printf("baseline  all-regions/routed : p75 %6.1f ms   $%7.2f/day  (%s)\n",
              all.percentile, all_day, all.config.to_string().c_str());
  std::printf("baseline  one-region         : p75 %6.1f ms   $%7.2f/day  (%s)\n",
              one.percentile, one_day, one.config.to_string().c_str());
  std::printf("baseline  saving one vs all  : %4.1f %%   (paper: 28 %%)\n\n",
              100.0 * (1.0 - one.cost / all.cost));

  // Sweep max_T across the interesting range (paper: 100..200 ms).
  const sim::SweepRange range{all.percentile - 30.0, one.percentile + 40.0,
                              4.0};
  bench::BenchReport report("fig3_approaches");
  std::printf("%8s | %12s %9s | %12s %9s %9s | %8s %-7s\n", "max_T",
              "mp p75(ms)", "met", "mp $/day", "one $", "all $", "regions",
              "mode");
  for (const auto& p : sim::sweep_max_t(scenario, range)) {
    std::printf("%8.0f | %12.1f %9s | %12.2f %9.2f %9.2f | %8d %-7s\n",
                p.max_t, p.achieved_percentile,
                p.constraint_met ? "yes" : "no", p.cost_per_day, one_day,
                all_day, p.n_regions, core::to_string(p.mode));
    report.row()
        .num("max_t", p.max_t)
        .num("p75_ms", p.achieved_percentile)
        .boolean("constraint_met", p.constraint_met)
        .num("cost_per_day", p.cost_per_day)
        .num("one_region_cost_per_day", one_day)
        .num("all_regions_cost_per_day", all_day)
        .integer("n_regions", p.n_regions)
        .str("mode", core::to_string(p.mode));
  }

  std::printf("\nshape checks (paper's qualitative claims):\n");
  const auto points = sim::sweep_max_t(scenario, range);
  const auto& tightest = points.front();
  const auto& loosest = points.back();
  std::printf("  tight bound -> all-regions-like cost   : %s\n",
              tightest.cost_per_day > 0.9 * all_day ? "PASS" : "FAIL");
  std::printf("  loose bound -> one-region cost         : %s\n",
              loosest.cost_per_day < 1.01 * one_day ? "PASS" : "FAIL");
  std::printf("  loose bound -> single region           : %s\n",
              loosest.n_regions == 1 ? "PASS" : "FAIL");

  // Robustness: the headline saving across independent client populations.
  std::printf("\nsaving across 5 independent populations (seeds 1..5):\n ");
  double min_saving = 100.0, max_saving = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng seed_rng(seed);
    const sim::Scenario s = sim::make_experiment1_scenario(seed_rng);
    const auto opt = s.make_optimizer();
    auto t = s.topic;
    t.constraint.max = kUnreachable;
    const auto one_s = sim::one_region_baseline(opt, t);
    const auto all_s = sim::all_regions_baseline(
        opt, t, core::DeliveryMode::kRouted, s.catalog.size());
    const double saving = 100.0 * (1.0 - one_s.cost / all_s.cost);
    min_saving = std::min(min_saving, saving);
    max_saving = std::max(max_saving, saving);
    std::printf(" %.1f%%", saving);
  }
  std::printf("\n  range [%.1f%%, %.1f%%] around the paper's 28%%\n",
              min_saving, max_saving);
  if (!report.write()) return 1;
  return 0;
}
