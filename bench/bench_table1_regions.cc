// Table I: EC2 outgoing bandwidth costs.
//
// Prints the region catalog the way the paper's Table I does and validates
// the two structural properties the experiments rely on (inbound free is a
// modelling assumption, not data; alpha <= beta everywhere; US/EU cheap).
#include <cstdio>
#include <cstdlib>

#include "bench_json.h"
#include "geo/latency.h"
#include "geo/region.h"

using namespace multipub;

int main() {
  const auto catalog = geo::RegionCatalog::ec2_2016();
  const auto backbone = geo::InterRegionLatency::ec2_2016();

  std::printf("Table I: EC2 outgoing bandwidth costs ($/GB)\n");
  std::printf("%-5s %-16s %-14s %8s %8s\n", "R", "Region", "Location", "$EC2",
              "$Inet");
  for (const auto& region : catalog.all()) {
    std::printf("R%-4d %-16s %-14s %8.3f %8.3f\n", region.id.value() + 1,
                region.name.c_str(), region.location.c_str(),
                region.inter_region_cost_per_gb, region.internet_cost_per_gb);
  }

  // Validations.
  bool ok = catalog.size() == 10 && backbone.complete();
  for (const auto& region : catalog.all()) {
    ok = ok && region.inter_region_cost_per_gb <= region.internet_cost_per_gb;
  }
  // US/EU (R1-R5) Internet egress is the cheapest tier.
  for (int i = 0; i < 5; ++i) {
    ok = ok && catalog.at(RegionId{i}).internet_cost_per_gb == 0.09;
  }

  std::printf("\nInter-region one-way latency matrix L^R (ms):\n      ");
  for (std::size_t j = 0; j < catalog.size(); ++j) {
    std::printf("%6zu", j + 1);
  }
  std::printf("\n");
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    std::printf("R%-5zu", i + 1);
    for (std::size_t j = 0; j < catalog.size(); ++j) {
      std::printf("%6.0f", backbone.at(RegionId{static_cast<int>(i)},
                                       RegionId{static_cast<int>(j)}));
    }
    std::printf("\n");
  }

  std::printf("\nvalidation: %s\n", ok ? "PASS" : "FAIL");

  bench::BenchReport report("table1_regions");
  for (const auto& region : catalog.all()) {
    report.row()
        .integer("region", region.id.value() + 1)
        .str("name", region.name)
        .str("location", region.location)
        .num("inter_region_cost_per_gb", region.inter_region_cost_per_gb)
        .num("internet_cost_per_gb", region.internet_cost_per_gb)
        .boolean("validation", ok);
  }
  if (!report.write()) return EXIT_FAILURE;
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
