// Data-plane throughput benchmark: the seed's std::function-per-hop path,
// the single-threaded typed-event fast path, and the sharded parallel plane
// (DESIGN.md §11/§14) at 2, 4 and 8 worker threads.
//
// One synthetic world (40 regions by default — wide enough that topology
// placement has real clusters to find at K=8 — 10k clients), 500 routed
// topics each served by 3 regions with 50 subscribers, publishers driven by
// self-rescheduling simulator actions hinted at their owning shard. The
// same workload runs once per engine configuration, freshly constructed
// from identical seeds, and the bench reports events/sec per configuration
// plus the speedups and the sharded plane's window telemetry (windows per
// simulated second is the hardware-independent progress metric: fewer
// windows means less synchronization for the same events, provable even on
// a 1-core container). The sharded rows run under the flag-selected
// placement/window policy (topology + adaptive by default); one extra
// 8-shard row always re-runs the PR 5 recipe (round-robin + fixed) as the
// window-count baseline. Prints a table and writes BENCH_dataplane.json in
// the shared {"bench", "rows"} shape with one row per configuration.
//
// Exit gates:
//   - any counter (processed events, transport sent/dropped, broker
//     delivered/forwarded, ledger byte vectors) diverging between any two
//     configurations fails ALWAYS — determinism is independent of machine
//     size and publication count;
//   - a sharded row with zero windows executed fails ALWAYS (the telemetry
//     must prove the plane actually ran windows);
//   - fast-vs-legacy speedup below 3x fails on full-size runs
//     (>= 10^6 publications);
//   - sharded 8-thread speedup over the single-threaded fast path below 3x
//     fails on full-size runs on machines with >= 8 hardware threads (the
//     rows always record hardware_concurrency, so a small CI box still
//     publishes honest numbers without tripping a gate it cannot meet);
//   - with the default placement/policy, windows-per-simulated-second at
//     K=8 not dropping by >= 5x against the round-robin+fixed baseline
//     fails on full-size runs (deterministic, hardware-independent).
//
// With --cohorts on the subscriber side runs on the cohort-compressed
// plane (DESIGN.md §12): clients fold into weighted cohorts keyed by (home,
// topic set, latency row) and each broker fans out one weighted event per
// flock. Cohorts require the typed-event fast path, so the legacy engine
// drops out of the comparison and the reference becomes the single-threaded
// fast path; the K-invariance gate (identical counters for every shard
// count) still applies bit-for-bit.
//
// Usage: bench_dataplane [--pubs N] [--mode both|fast|legacy|shards=K]
//                        [--clients N] [--regions N] [--cohorts on|off]
//                        [--shard-placement round-robin|topology]
//                        [--window-policy fixed|adaptive]
// (default: 1M publications, 10k clients, 40 regions, per-client plane,
// mode both, topology placement, adaptive windows; single-configuration
// --mode values are for profiling and skip the comparison gates)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "broker/broker.h"
#include "client/client_registry.h"
#include "client/cohort_pool.h"
#include "client/topic_set_pool.h"
#include "common/arena.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/config.h"
#include "flags.h"
#include "geo/king_synth.h"
#include "geo/synthetic.h"
#include "net/shard_placement.h"
#include "net/simulator.h"
#include "net/transport.h"
#include "wire/message.h"

using namespace multipub;

namespace {

constexpr std::size_t kDefaultRegions = 40;
constexpr std::size_t kDefaultClients = 10000;
constexpr std::size_t kTopics = 500;
constexpr std::size_t kSubsPerTopic = 50;
constexpr Bytes kPayload = 1024;
constexpr std::uint64_t kWorldSeed = 4242;
constexpr std::uint64_t kMembersSeed = 4243;

struct RunResult {
  double seconds = 0.0;
  double sim_ms = 0.0;       // simulated span of the measured phase
  std::uint64_t events = 0;  // simulator events processed while measuring
  std::uint64_t sent = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delivered = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t client_deliveries = 0;
  std::vector<Bytes> inter_region_bytes;
  std::vector<Bytes> internet_bytes;
  /// Window telemetry of the measured phase (delta over the setup phase;
  /// all zeros for the unsharded engines).
  net::WindowStats windows;

  [[nodiscard]] double events_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0;
  }
  [[nodiscard]] double windows_per_sim_sec() const {
    return sim_ms > 0.0
               ? static_cast<double>(windows.windows) / (sim_ms / 1000.0)
               : 0.0;
  }
};

/// One engine configuration under test. shards == 0 is the seed legacy
/// engine; shards == 1 the single-threaded fast path; shards > 1 the
/// parallel plane with that many worker threads under the given placement
/// and window policy.
struct EngineConfig {
  const char* label;
  std::uint32_t shards;
  net::ShardPlacement placement = net::ShardPlacement::kTopology;
  net::WindowPolicy policy = net::WindowPolicy::kAdaptive;
};

/// Builds the identical world + workload and drives `total_pubs`
/// publications through the chosen engine configuration over `n_clients`
/// clients, on the per-client or the cohort-compressed subscriber plane.
RunResult run_engine(const EngineConfig& engine, std::uint64_t total_pubs,
                     std::size_t n_clients, std::size_t n_regions,
                     bool cohorts) {
  const bool fast = engine.shards > 0;
  Rng world_rng(kWorldSeed);
  const auto world = geo::synthesize_world(n_regions, {}, world_rng);
  const auto population = geo::synthesize_population(
      world.catalog, world.backbone,
      std::max<std::size_t>(1, n_clients / n_regions), {}, world_rng);

  net::Simulator sim;
  net::SimTransport transport(sim, world.catalog, world.backbone,
                              population.latencies);
  // Must happen before anything is scheduled: switching engines requires an
  // empty queue.
  transport.set_fast_path(fast);

  // Membership first (the RNG draw order is the bench's contract: the
  // per-client plane replays the exact historical stream): topic t is
  // served by {t, t+3, t+5} mod n_regions (distinct for >= 6 regions) in
  // routed mode; subscribers round-robin across the serving regions; one
  // publisher targeting the first serving region.
  Rng members_rng(kMembersSeed);
  auto random_client = [&] {
    return ClientId{static_cast<ClientId::underlying_type>(
        members_rng.uniform_int(0,
                                static_cast<std::int64_t>(population.size()) -
                                    1))};
  };
  std::vector<std::vector<ClientId>> topic_subs(kTopics);
  std::vector<ClientId> topic_publisher(kTopics);
  for (std::size_t t = 0; t < kTopics; ++t) {
    topic_subs[t].reserve(kSubsPerTopic);
    for (std::size_t s = 0; s < kSubsPerTopic; ++s) {
      topic_subs[t].push_back(random_client());
    }
    topic_publisher[t] = random_client();
  }

  // Cohort plane: fold every client into the registry before any sharding —
  // the flock universe must be closed when shard ownership is assigned.
  std::unique_ptr<Arena> arena;
  std::unique_ptr<client::TopicSetPool> topic_sets;
  std::unique_ptr<client::ClientRegistry> registry;
  std::unique_ptr<client::CohortPool> pool;
  if (cohorts) {
    std::vector<std::vector<TopicId>> client_topics(population.size());
    for (std::size_t t = 0; t < kTopics; ++t) {
      for (const ClientId sub : topic_subs[t]) {
        client_topics[static_cast<std::size_t>(sub.value())].push_back(
            TopicId{static_cast<TopicId::underlying_type>(t)});
      }
    }
    arena = std::make_unique<Arena>();
    topic_sets = std::make_unique<client::TopicSetPool>(*arena);
    registry = std::make_unique<client::ClientRegistry>(
        population.size(), n_regions, /*row_bucket_ms=*/0.0, *arena);
    pool = std::make_unique<client::CohortPool>(*registry, *topic_sets, sim,
                                                transport);
    for (std::size_t c = 0; c < population.size(); ++c) {
      auto& topics = client_topics[c];
      std::sort(topics.begin(), topics.end(),
                [](TopicId a, TopicId b) { return a.value() < b.value(); });
      topics.erase(std::unique(topics.begin(), topics.end()), topics.end());
      const ClientId id{static_cast<ClientId::underlying_type>(c)};
      registry->add(population.home_region[c], population.latencies.row(id),
                    topics.empty() ? client::TopicSetPool::kEmpty
                                   : topic_sets->intern(topics));
      pool->enroll(id);
    }
    transport.set_cohort_directory(pool.get());
  }

  if (engine.shards > 1) {
    // The LiveSystem partitioning recipe: regions placed by the engine's
    // strategy (round-robin or topology clustering), clients follow their
    // home region so the client<->home-broker chatter stays intra-shard;
    // windows derive from the cross-shard lookahead matrix. Flocks run on
    // their home region's shard.
    net::ShardMap map;
    map.shards = engine.shards;
    map.region_shard = net::partition_regions(engine.placement,
                                              world.backbone, engine.shards);
    for (std::size_t c = 0; c < population.size(); ++c) {
      map.client_shard.push_back(
          map.region_shard[static_cast<std::size_t>(
              population.home_region[c].value())]);
    }
    if (pool != nullptr) {
      pool->freeze();
      map.cohort_shard.resize(pool->flock_count());
      for (std::size_t f = 0; f < map.cohort_shard.size(); ++f) {
        map.cohort_shard[f] =
            map.region_shard[static_cast<std::size_t>(
                pool->flock_home(static_cast<std::int32_t>(f)).value())];
      }
    }
    const Millis lookahead = transport.min_cross_shard_latency(map);
    const std::vector<Millis> lookaheads =
        transport.cross_shard_lookaheads(map);
    transport.set_shards(engine.shards);
    sim.configure_shards(std::move(map), lookahead);
    sim.set_window_policy(engine.policy);
    sim.set_lookahead_matrix(lookaheads);
  }

  std::vector<std::unique_ptr<broker::Broker>> brokers;
  for (std::size_t r = 0; r < n_regions; ++r) {
    brokers.push_back(std::make_unique<broker::Broker>(
        RegionId{static_cast<RegionId::underlying_type>(r)}, sim, transport));
  }

  // Raw counting handlers for every client — the bench measures the data
  // plane, not the client::Subscriber bookkeeping. Shard-local lanes: each
  // delivery executes on the shard owning its client, so the lanes are
  // single-writer and the merged total is K-invariant. The cohort plane
  // needs neither handlers nor per-client endpoints: the pool accumulates
  // weighted deliveries itself.
  auto deliveries = std::make_shared<ShardedCounter>(
      std::max<std::uint32_t>(1, engine.shards));
  if (!cohorts) {
    for (std::size_t c = 0; c < population.size(); ++c) {
      transport.register_handler(
          net::Address::client(ClientId{
              static_cast<ClientId::underlying_type>(c)}),
          [deliveries, &sim](const wire::Message&) {
            deliveries->add(sim.current_shard());
          });
    }
  }

  std::vector<RegionId> topic_entry(kTopics);  // region the publisher hits
  for (std::size_t t = 0; t < kTopics; ++t) {
    geo::RegionSet serving;
    const std::size_t base = t % n_regions;
    serving.add(RegionId{static_cast<RegionId::underlying_type>(base)});
    serving.add(RegionId{
        static_cast<RegionId::underlying_type>((base + 3) % n_regions)});
    serving.add(RegionId{
        static_cast<RegionId::underlying_type>((base + 5) % n_regions)});
    const core::TopicConfig config{serving, core::DeliveryMode::kRouted};
    const TopicId topic{static_cast<TopicId::underlying_type>(t)};
    for (auto& b : brokers) b->set_topic_config(topic, config);

    const auto serving_vec = serving.to_vector();
    if (cohorts) {
      // One weighted kSubscribe per flock, attached at the flock's closest
      // serving region.
      pool->deploy(topic, config);
    } else {
      for (std::size_t s = 0; s < kSubsPerTopic; ++s) {
        const ClientId sub = topic_subs[t][s];
        const RegionId at = serving_vec[s % serving_vec.size()];
        wire::Message msg;
        msg.type = wire::MessageType::kSubscribe;
        msg.topic = topic;
        msg.subscriber = sub;
        transport.send(net::Address::client(sub), net::Address::region(at),
                       msg);
      }
    }
    topic_entry[t] = serving_vec.front();
  }
  sim.run();  // settle the subscription handshakes outside the measurement

  // Publications: one self-rescheduling driver per topic, `per_topic` sends
  // each, 0.8 ms apart with the topic index as phase — dense enough to keep
  // a deep in-flight window, the regime a global-scale broker actually runs
  // in. Each driver is hinted at its publisher's address, so on the sharded
  // plane it lives on the shard owning that client and its self-reschedules
  // stay shard-local.
  const std::uint64_t per_topic =
      std::max<std::uint64_t>(1, total_pubs / kTopics);
  struct Driver {
    net::Simulator* sim;
    net::SimTransport* transport;
    TopicId topic;
    ClientId publisher;
    RegionId entry;
    std::uint64_t remaining;
    std::uint64_t seq = 0;

    void fire() {
      wire::Message msg;
      msg.type = wire::MessageType::kPublish;
      msg.topic = topic;
      msg.publisher = publisher;
      msg.seq = seq++;
      msg.published_at = sim->now();
      msg.payload_bytes = kPayload;
      // Routed intent travels on the message (the broker fans out what the
      // publication asks for, not what its own config says).
      msg.config_mode = wire::WireMode::kRouted;
      transport->send(net::Address::client(publisher),
                      net::Address::region(entry), msg);
      if (--remaining > 0) {
        sim->schedule_after(0.8, [this] { fire(); });
      }
    }
  };
  std::vector<std::unique_ptr<Driver>> drivers;
  for (std::size_t t = 0; t < kTopics; ++t) {
    auto driver = std::make_unique<Driver>();
    driver->sim = &sim;
    driver->transport = &transport;
    driver->topic = TopicId{static_cast<TopicId::underlying_type>(t)};
    driver->publisher = topic_publisher[t];
    driver->entry = topic_entry[t];
    driver->remaining = per_topic;
    Driver* raw = driver.get();
    sim.schedule_at(sim.now() + static_cast<double>(t) * 0.01,
                    net::Address::client(driver->publisher),
                    [raw] { raw->fire(); });
    drivers.push_back(std::move(driver));
  }

  RunResult result;
  const std::uint64_t processed_before = sim.processed();
  const net::WindowStats windows_before = sim.window_stats();
  const Millis sim_before = sim.now();
  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  result.events = sim.processed() - processed_before;
  result.sim_ms = sim.now() - sim_before;
  // Delta over the subscription-settle phase, so the telemetry describes
  // exactly the measured traffic (width_max is a running maximum and is
  // reported as-is; the measured phase dominates it).
  const net::WindowStats windows_after = sim.window_stats();
  result.windows.windows = windows_after.windows - windows_before.windows;
  result.windows.width_sum =
      windows_after.width_sum - windows_before.width_sum;
  result.windows.width_max = windows_after.width_max;
  result.windows.mail_items =
      windows_after.mail_items - windows_before.mail_items;
  result.windows.barrier_spins =
      windows_after.barrier_spins - windows_before.barrier_spins;
  result.windows.barrier_parks =
      windows_after.barrier_parks - windows_before.barrier_parks;
  result.windows.events = windows_after.events - windows_before.events;
  result.sent = transport.sent_count();
  result.dropped = transport.dropped_count();
  for (const auto& b : brokers) {
    result.delivered += b->delivered_count();
    result.forwarded += b->forwarded_count();
  }
  result.client_deliveries =
      cohorts ? pool->total_delivery_weight() : deliveries->total();
  result.inter_region_bytes = transport.ledger().inter_region_bytes;
  result.internet_bytes = transport.ledger().internet_bytes;
  return result;
}

bool counters_identical(const RunResult& a, const RunResult& b) {
  return a.events == b.events && a.sent == b.sent &&
         a.dropped == b.dropped && a.delivered == b.delivered &&
         a.forwarded == b.forwarded &&
         a.client_deliveries == b.client_deliveries &&
         a.inter_region_bytes == b.inter_region_bytes &&
         a.internet_bytes == b.internet_bytes;
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags(argc, argv);
  if (flags.has("help")) {
    std::printf(
        "bench_dataplane — data-plane engine comparison\n"
        "  --pubs N              total publications (default 1000000)\n"
        "  --mode both|fast|legacy|shards=K  engine selection (default\n"
        "                        both; a single engine skips the gates)\n"
        "  --clients N           total clients (default 10000)\n"
        "  --regions N           world size (default 40, 6..64)\n"
        "  --cohorts on|off      cohort-compressed subscriber plane\n"
        "                        (default off; drops the legacy engine)\n"
        "  --shard-placement round-robin|topology  region partitioning for\n"
        "                        the sharded rows (default topology)\n"
        "  --window-policy fixed|adaptive  window sizing for the sharded\n"
        "                        rows (default adaptive)\n");
    return 0;
  }
  flags.allow_only({"help", "pubs", "mode", "clients", "regions", "cohorts",
                    "shard-placement", "window-policy"});
  const long pubs_flag = flags.get_int("pubs", 1000000);
  const long clients_flag =
      flags.get_int("clients", static_cast<long>(kDefaultClients));
  const long regions_flag =
      flags.get_int("regions", static_cast<long>(kDefaultRegions));
  const bool cohorts = flags.get_bool("cohorts", false);
  const std::string mode = flags.get("mode", "both");
  const std::string placement_name = flags.get("shard-placement", "topology");
  const std::string policy_name = flags.get("window-policy", "adaptive");
  const auto placement = net::parse_shard_placement(placement_name);
  if (!placement.has_value()) {
    std::fprintf(stderr,
                 "error: --shard-placement must be round-robin or topology, "
                 "got '%s'\n",
                 placement_name.c_str());
    return 2;
  }
  const net::WindowPolicy policy = policy_name == "fixed"
                                       ? net::WindowPolicy::kFixed
                                       : net::WindowPolicy::kAdaptive;
  if (policy_name != "fixed" && policy_name != "adaptive") {
    std::fprintf(stderr,
                 "error: --window-policy must be fixed or adaptive, got "
                 "'%s'\n",
                 policy_name.c_str());
    return 2;
  }
  // The serving-set construction needs 6 distinct offsets; synthesize_world
  // caps at 64.
  if (!flags.errors().empty() || pubs_flag <= 0 || clients_flag <= 0 ||
      regions_flag < 6 || regions_flag > 64) {
    for (const auto& error : flags.errors()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
    }
    if (regions_flag < 6 || regions_flag > 64) {
      std::fprintf(stderr, "error: --regions must be in 6..64\n");
    }
    std::fprintf(stderr, "see --help\n");
    return 2;
  }
  const auto total_pubs = static_cast<std::uint64_t>(pubs_flag);
  const auto n_clients = static_cast<std::size_t>(clients_flag);
  const auto n_regions = static_cast<std::size_t>(regions_flag);
  const std::uint64_t actual_pubs =
      std::max<std::uint64_t>(1, total_pubs / kTopics) * kTopics;
  if (mode != "both") {
    // Profiling mode: one configuration, no comparison.
    EngineConfig engine{"fast", 1, *placement, policy};
    const std::string_view mode_view = mode;
    if (mode == "legacy") {
      engine.label = "legacy";
      engine.shards = 0;
    } else if (mode_view.substr(0, 7) == "shards=") {
      engine.label = "sharded";
      engine.shards = static_cast<std::uint32_t>(
          std::strtoul(mode.c_str() + 7, nullptr, 10));
      if (engine.shards < 2) {
        std::fprintf(stderr, "shards=K needs K >= 2\n");
        return 2;
      }
      if (engine.shards > n_regions) {
        std::fprintf(stderr,
                     "shards=K needs K <= regions (%zu): empty shards would "
                     "still pay every barrier round\n",
                     n_regions);
        return 2;
      }
    } else if (mode != "fast") {
      std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
      return 2;
    }
    if (cohorts && engine.shards == 0) {
      std::fprintf(stderr, "cohorts require the fast path, not legacy\n");
      return 2;
    }
    const RunResult r =
        run_engine(engine, total_pubs, n_clients, n_regions, cohorts);
    std::printf("%s: %llu events in %.3f s = %.0f events/sec\n", mode.c_str(),
                static_cast<unsigned long long>(r.events), r.seconds,
                r.events_per_sec());
    return 0;
  }

  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf("dataplane bench: %llu publications, %zu clients, %zu regions, "
              "%zu routed topics, %u hardware threads, %s plane, %s "
              "placement, %s windows\n",
              static_cast<unsigned long long>(actual_pubs), n_clients,
              n_regions, kTopics, hw_threads,
              cohorts ? "cohort" : "per-client",
              net::shard_placement_name(*placement).c_str(),
              policy == net::WindowPolicy::kFixed ? "fixed" : "adaptive");

  // The cohort plane has no legacy twin, so its reference engine is the
  // single-threaded fast path; the per-client comparison keeps the seed
  // engine as reference. The final row re-runs K=8 with the PR 5 recipe
  // (round-robin + fixed windows) as the window-count baseline — unless the
  // flags already selected exactly that configuration.
  const bool tuned_is_baseline =
      *placement == net::ShardPlacement::kRoundRobin &&
      policy == net::WindowPolicy::kFixed;
  std::vector<EngineConfig> engines;
  if (!cohorts) engines.push_back({"legacy", 0});
  engines.push_back({"fast", 1});
  engines.push_back({"sharded", 2, *placement, policy});
  engines.push_back({"sharded", 4, *placement, policy});
  engines.push_back({"sharded", 8, *placement, policy});
  const std::size_t tuned8_index = engines.size() - 1;
  if (!tuned_is_baseline) {
    engines.push_back({"sharded", 8, net::ShardPlacement::kRoundRobin,
                       net::WindowPolicy::kFixed});
  }
  const std::size_t baseline8_index = engines.size() - 1;
  std::vector<RunResult> results;
  for (const EngineConfig& engine : engines) {
    results.push_back(
        run_engine(engine, total_pubs, n_clients, n_regions, cohorts));
  }
  const RunResult& reference = results[0];
  const RunResult& fast = results[cohorts ? 0 : 1];

  bench::BenchReport report("dataplane");
  std::printf("%-8s %8s %12s %11s %7s %14s %10s %16s %8s\n", "engine",
              "threads", "placement", "policy", "windows", "win_per_sim_s",
              "seconds", "events_per_sec", "vs_ref");
  bool all_identical = true;
  bool windows_missing = false;
  for (std::size_t i = 0; i < engines.size(); ++i) {
    const EngineConfig& engine = engines[i];
    const RunResult& r = results[i];
    // Observable identity is pairwise against the reference; with every
    // configuration proven identical to it, this chains to every pair.
    const bool identical = counters_identical(r, reference);
    all_identical = all_identical && identical;
    if (engine.shards > 1 && r.windows.windows == 0) windows_missing = true;
    const double vs_ref =
        reference.events_per_sec() > 0.0
            ? r.events_per_sec() / reference.events_per_sec()
            : 0.0;
    const std::uint32_t threads = std::max<std::uint32_t>(1, engine.shards);
    const bool sharded = engine.shards > 1;
    const char* placement_label =
        !sharded ? "-"
                 : (engine.placement == net::ShardPlacement::kRoundRobin
                        ? "round-robin"
                        : "topology");
    const char* policy_label =
        !sharded ? "-"
                 : (engine.policy == net::WindowPolicy::kFixed ? "fixed"
                                                               : "adaptive");
    std::printf("%-8s %8u %12s %11s %7llu %14.1f %10.3f %16.0f %7.2fx%s\n",
                engine.label, threads, placement_label, policy_label,
                static_cast<unsigned long long>(r.windows.windows),
                r.windows_per_sim_sec(), r.seconds, r.events_per_sec(),
                vs_ref, identical ? "" : "  COUNTERS DIVERGED");
    report.row()
        .str("engine", engine.label)
        .uinteger("threads", threads)
        .str("placement", sharded ? placement_label : "")
        .str("window_policy", sharded ? policy_label : "")
        .uinteger("publications", actual_pubs)
        .uinteger("clients", n_clients)
        .boolean("cohorts", cohorts)
        .uinteger("regions", n_regions)
        .uinteger("topics", kTopics)
        .uinteger("events", r.events)
        .num("seconds", r.seconds)
        .num("sim_ms", r.sim_ms)
        .num("events_per_sec", r.events_per_sec())
        .num("speedup_vs_reference", vs_ref)
        .num("speedup_vs_fast",
             fast.events_per_sec() > 0.0
                 ? r.events_per_sec() / fast.events_per_sec()
                 : 0.0)
        .boolean("identical", identical)
        .uinteger("windows_executed", r.windows.windows)
        .num("windows_per_sim_sec", r.windows_per_sim_sec())
        .num("window_width_mean_ms", r.windows.width_mean())
        .num("window_width_max_ms", r.windows.width_max)
        .num("events_per_window", r.windows.events_per_window())
        .uinteger("mail_items", r.windows.mail_items)
        .uinteger("barrier_spins", r.windows.barrier_spins)
        .uinteger("barrier_parks", r.windows.barrier_parks)
        .uinteger("hardware_concurrency", hw_threads);
  }
  const double fast_speedup =
      fast.events_per_sec() / reference.events_per_sec();
  const double shard8_speedup =
      results[tuned8_index].events_per_sec() / fast.events_per_sec();
  // Window reduction: how many times fewer synchronization rounds the tuned
  // configuration pays per simulated second than the PR 5 recipe. Both
  // counts are deterministic, so this ratio is hardware-independent.
  const double window_reduction =
      results[tuned8_index].windows_per_sim_sec() > 0.0
          ? results[baseline8_index].windows_per_sim_sec() /
                results[tuned8_index].windows_per_sim_sec()
          : 0.0;
  if (cohorts) {
    std::printf("8-thread sharded vs fast %.2fx, window reduction %.2fx, "
                "counters %s\n",
                shard8_speedup, window_reduction,
                all_identical ? "identical" : "DIVERGED");
  } else {
    std::printf("fast vs legacy %.2fx, 8-thread sharded vs fast %.2fx, "
                "window reduction %.2fx, counters %s\n",
                fast_speedup, shard8_speedup, window_reduction,
                all_identical ? "identical" : "DIVERGED");
  }

  if (!report.write()) return 1;

  if (!all_identical) {
    std::fprintf(stderr, "ENGINE DIVERGENCE (see table above)\n");
    return 1;
  }
  if (windows_missing) {
    std::fprintf(stderr,
                 "a sharded row executed zero windows (telemetry broken)\n");
    return 1;
  }
  // The throughput gates only apply to full-size runs; the CI smoke run
  // uses a small count where fixed overheads dominate. The parallel gate
  // additionally needs the hardware to exist: conservative windows cannot
  // speed anything up on a box with fewer cores than shards.
  if (!cohorts && actual_pubs >= 1000000 && fast_speedup < 3.0) {
    std::fprintf(stderr, "fast-path speedup below 3x (%.2fx)\n",
                 fast_speedup);
    return 1;
  }
  if (actual_pubs >= 1000000 && hw_threads >= 8 && shard8_speedup < 3.0) {
    std::fprintf(stderr, "8-thread sharded speedup below 3x (%.2fx)\n",
                 shard8_speedup);
    return 1;
  }
  // Deterministic window-count gate (full size, default tuning only): the
  // adaptive+topology plane must pay >= 5x fewer synchronization rounds per
  // simulated second than the PR 5 recipe at K=8.
  if (actual_pubs >= 1000000 && !tuned_is_baseline &&
      *placement == net::ShardPlacement::kTopology &&
      policy == net::WindowPolicy::kAdaptive && window_reduction < 5.0) {
    std::fprintf(stderr, "window reduction below 5x (%.2fx)\n",
                 window_reduction);
    return 1;
  }
  return 0;
}
