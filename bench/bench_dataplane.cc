// Data-plane throughput benchmark: the seed's std::function-per-hop path,
// the single-threaded typed-event fast path, and the sharded parallel plane
// (DESIGN.md §11) at 2, 4 and 8 worker threads.
//
// One synthetic world (8 regions, 10k clients), 500 routed topics each
// served by 3 regions with 50 subscribers, publishers driven by
// self-rescheduling simulator actions hinted at their owning shard. The
// same workload runs once per engine configuration, freshly constructed
// from identical seeds, and the bench reports events/sec per configuration
// plus the speedups. Prints a table and writes BENCH_dataplane.json in the
// shared {"bench", "rows"} shape with one row per (engine, threads).
//
// Exit gates:
//   - any counter (processed events, transport sent/dropped, broker
//     delivered/forwarded, ledger byte vectors) diverging between any two
//     configurations fails ALWAYS — determinism is independent of machine
//     size and publication count;
//   - fast-vs-legacy speedup below 3x fails on full-size runs
//     (>= 10^6 publications);
//   - sharded 8-thread speedup over the single-threaded fast path below 3x
//     fails on full-size runs on machines with >= 8 hardware threads (the
//     rows always record hardware_concurrency, so a small CI box still
//     publishes honest numbers without tripping a gate it cannot meet).
//
// With --cohorts on the subscriber side runs on the cohort-compressed
// plane (DESIGN.md §12): clients fold into weighted cohorts keyed by (home,
// topic set, latency row) and each broker fans out one weighted event per
// flock. Cohorts require the typed-event fast path, so the legacy engine
// drops out of the comparison and the reference becomes the single-threaded
// fast path; the K-invariance gate (identical counters for every shard
// count) still applies bit-for-bit.
//
// Usage: bench_dataplane [--pubs N] [--mode both|fast|legacy|shards=K]
//                        [--clients N] [--cohorts on|off]
// (default: 1M publications, 10k clients, per-client plane, mode both;
// single-configuration --mode values are for profiling and skip the
// comparison gates)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "broker/broker.h"
#include "client/client_registry.h"
#include "client/cohort_pool.h"
#include "client/topic_set_pool.h"
#include "common/arena.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/config.h"
#include "flags.h"
#include "geo/king_synth.h"
#include "geo/synthetic.h"
#include "net/simulator.h"
#include "net/transport.h"
#include "wire/message.h"

using namespace multipub;

namespace {

constexpr std::size_t kRegions = 8;
constexpr std::size_t kDefaultClients = 10000;
constexpr std::size_t kTopics = 500;
constexpr std::size_t kSubsPerTopic = 50;
constexpr Bytes kPayload = 1024;
constexpr std::uint64_t kWorldSeed = 4242;
constexpr std::uint64_t kMembersSeed = 4243;

struct RunResult {
  double seconds = 0.0;
  std::uint64_t events = 0;  // simulator events processed while measuring
  std::uint64_t sent = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delivered = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t client_deliveries = 0;
  std::vector<Bytes> inter_region_bytes;
  std::vector<Bytes> internet_bytes;

  [[nodiscard]] double events_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0;
  }
};

/// One engine configuration under test. shards == 0 is the seed legacy
/// engine; shards == 1 the single-threaded fast path; shards > 1 the
/// parallel plane with that many worker threads.
struct EngineConfig {
  const char* label;
  std::uint32_t shards;
};

/// Builds the identical world + workload and drives `total_pubs`
/// publications through the chosen engine configuration over `n_clients`
/// clients, on the per-client or the cohort-compressed subscriber plane.
RunResult run_engine(const EngineConfig& engine, std::uint64_t total_pubs,
                     std::size_t n_clients, bool cohorts) {
  const bool fast = engine.shards > 0;
  Rng world_rng(kWorldSeed);
  const auto world = geo::synthesize_world(kRegions, {}, world_rng);
  const auto population = geo::synthesize_population(
      world.catalog, world.backbone,
      std::max<std::size_t>(1, n_clients / kRegions), {}, world_rng);

  net::Simulator sim;
  net::SimTransport transport(sim, world.catalog, world.backbone,
                              population.latencies);
  // Must happen before anything is scheduled: switching engines requires an
  // empty queue.
  transport.set_fast_path(fast);

  // Membership first (the RNG draw order is the bench's contract: the
  // per-client plane replays the exact historical stream): topic t is
  // served by {t, t+3, t+5} mod 8 (distinct for 8 regions) in routed mode;
  // subscribers round-robin across the serving regions; one publisher
  // targeting the first serving region.
  Rng members_rng(kMembersSeed);
  auto random_client = [&] {
    return ClientId{static_cast<ClientId::underlying_type>(
        members_rng.uniform_int(0,
                                static_cast<std::int64_t>(population.size()) -
                                    1))};
  };
  std::vector<std::vector<ClientId>> topic_subs(kTopics);
  std::vector<ClientId> topic_publisher(kTopics);
  for (std::size_t t = 0; t < kTopics; ++t) {
    topic_subs[t].reserve(kSubsPerTopic);
    for (std::size_t s = 0; s < kSubsPerTopic; ++s) {
      topic_subs[t].push_back(random_client());
    }
    topic_publisher[t] = random_client();
  }

  // Cohort plane: fold every client into the registry before any sharding —
  // the flock universe must be closed when shard ownership is assigned.
  std::unique_ptr<Arena> arena;
  std::unique_ptr<client::TopicSetPool> topic_sets;
  std::unique_ptr<client::ClientRegistry> registry;
  std::unique_ptr<client::CohortPool> pool;
  if (cohorts) {
    std::vector<std::vector<TopicId>> client_topics(population.size());
    for (std::size_t t = 0; t < kTopics; ++t) {
      for (const ClientId sub : topic_subs[t]) {
        client_topics[static_cast<std::size_t>(sub.value())].push_back(
            TopicId{static_cast<TopicId::underlying_type>(t)});
      }
    }
    arena = std::make_unique<Arena>();
    topic_sets = std::make_unique<client::TopicSetPool>(*arena);
    registry = std::make_unique<client::ClientRegistry>(
        population.size(), kRegions, /*row_bucket_ms=*/0.0, *arena);
    pool = std::make_unique<client::CohortPool>(*registry, *topic_sets, sim,
                                                transport);
    for (std::size_t c = 0; c < population.size(); ++c) {
      auto& topics = client_topics[c];
      std::sort(topics.begin(), topics.end(),
                [](TopicId a, TopicId b) { return a.value() < b.value(); });
      topics.erase(std::unique(topics.begin(), topics.end()), topics.end());
      const ClientId id{static_cast<ClientId::underlying_type>(c)};
      registry->add(population.home_region[c], population.latencies.row(id),
                    topics.empty() ? client::TopicSetPool::kEmpty
                                   : topic_sets->intern(topics));
      pool->enroll(id);
    }
    transport.set_cohort_directory(pool.get());
  }

  if (engine.shards > 1) {
    // The LiveSystem partitioning recipe: regions round-robin over shards,
    // clients follow their home region so the client<->home-broker chatter
    // stays intra-shard; the conservative window is the minimum cross-shard
    // link latency. Flocks run on their home region's shard.
    net::ShardMap map;
    map.shards = engine.shards;
    for (std::size_t r = 0; r < kRegions; ++r) {
      map.region_shard.push_back(static_cast<std::uint32_t>(r) %
                                 engine.shards);
    }
    for (std::size_t c = 0; c < population.size(); ++c) {
      map.client_shard.push_back(
          map.region_shard[static_cast<std::size_t>(
              population.home_region[c].value())]);
    }
    if (pool != nullptr) {
      pool->freeze();
      map.cohort_shard.resize(pool->flock_count());
      for (std::size_t f = 0; f < map.cohort_shard.size(); ++f) {
        map.cohort_shard[f] =
            map.region_shard[static_cast<std::size_t>(
                pool->flock_home(static_cast<std::int32_t>(f)).value())];
      }
    }
    const Millis lookahead = transport.min_cross_shard_latency(map);
    transport.set_shards(engine.shards);
    sim.configure_shards(std::move(map), lookahead);
  }

  std::vector<std::unique_ptr<broker::Broker>> brokers;
  for (std::size_t r = 0; r < kRegions; ++r) {
    brokers.push_back(std::make_unique<broker::Broker>(
        RegionId{static_cast<RegionId::underlying_type>(r)}, sim, transport));
  }

  // Raw counting handlers for every client — the bench measures the data
  // plane, not the client::Subscriber bookkeeping. Shard-local lanes: each
  // delivery executes on the shard owning its client, so the lanes are
  // single-writer and the merged total is K-invariant. The cohort plane
  // needs neither handlers nor per-client endpoints: the pool accumulates
  // weighted deliveries itself.
  auto deliveries = std::make_shared<ShardedCounter>(
      std::max<std::uint32_t>(1, engine.shards));
  if (!cohorts) {
    for (std::size_t c = 0; c < population.size(); ++c) {
      transport.register_handler(
          net::Address::client(ClientId{
              static_cast<ClientId::underlying_type>(c)}),
          [deliveries, &sim](const wire::Message&) {
            deliveries->add(sim.current_shard());
          });
    }
  }

  std::vector<RegionId> topic_entry(kTopics);  // region the publisher hits
  for (std::size_t t = 0; t < kTopics; ++t) {
    geo::RegionSet serving;
    const std::size_t base = t % kRegions;
    serving.add(RegionId{static_cast<RegionId::underlying_type>(base)});
    serving.add(RegionId{
        static_cast<RegionId::underlying_type>((base + 3) % kRegions)});
    serving.add(RegionId{
        static_cast<RegionId::underlying_type>((base + 5) % kRegions)});
    const core::TopicConfig config{serving, core::DeliveryMode::kRouted};
    const TopicId topic{static_cast<TopicId::underlying_type>(t)};
    for (auto& b : brokers) b->set_topic_config(topic, config);

    const auto serving_vec = serving.to_vector();
    if (cohorts) {
      // One weighted kSubscribe per flock, attached at the flock's closest
      // serving region.
      pool->deploy(topic, config);
    } else {
      for (std::size_t s = 0; s < kSubsPerTopic; ++s) {
        const ClientId sub = topic_subs[t][s];
        const RegionId at = serving_vec[s % serving_vec.size()];
        wire::Message msg;
        msg.type = wire::MessageType::kSubscribe;
        msg.topic = topic;
        msg.subscriber = sub;
        transport.send(net::Address::client(sub), net::Address::region(at),
                       msg);
      }
    }
    topic_entry[t] = serving_vec.front();
  }
  sim.run();  // settle the subscription handshakes outside the measurement

  // Publications: one self-rescheduling driver per topic, `per_topic` sends
  // each, 0.8 ms apart with the topic index as phase — dense enough to keep
  // a deep in-flight window, the regime a global-scale broker actually runs
  // in. Each driver is hinted at its publisher's address, so on the sharded
  // plane it lives on the shard owning that client and its self-reschedules
  // stay shard-local.
  const std::uint64_t per_topic =
      std::max<std::uint64_t>(1, total_pubs / kTopics);
  struct Driver {
    net::Simulator* sim;
    net::SimTransport* transport;
    TopicId topic;
    ClientId publisher;
    RegionId entry;
    std::uint64_t remaining;
    std::uint64_t seq = 0;

    void fire() {
      wire::Message msg;
      msg.type = wire::MessageType::kPublish;
      msg.topic = topic;
      msg.publisher = publisher;
      msg.seq = seq++;
      msg.published_at = sim->now();
      msg.payload_bytes = kPayload;
      // Routed intent travels on the message (the broker fans out what the
      // publication asks for, not what its own config says).
      msg.config_mode = wire::WireMode::kRouted;
      transport->send(net::Address::client(publisher),
                      net::Address::region(entry), msg);
      if (--remaining > 0) {
        sim->schedule_after(0.8, [this] { fire(); });
      }
    }
  };
  std::vector<std::unique_ptr<Driver>> drivers;
  for (std::size_t t = 0; t < kTopics; ++t) {
    auto driver = std::make_unique<Driver>();
    driver->sim = &sim;
    driver->transport = &transport;
    driver->topic = TopicId{static_cast<TopicId::underlying_type>(t)};
    driver->publisher = topic_publisher[t];
    driver->entry = topic_entry[t];
    driver->remaining = per_topic;
    Driver* raw = driver.get();
    sim.schedule_at(sim.now() + static_cast<double>(t) * 0.01,
                    net::Address::client(driver->publisher),
                    [raw] { raw->fire(); });
    drivers.push_back(std::move(driver));
  }

  RunResult result;
  const std::uint64_t processed_before = sim.processed();
  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  result.events = sim.processed() - processed_before;
  result.sent = transport.sent_count();
  result.dropped = transport.dropped_count();
  for (const auto& b : brokers) {
    result.delivered += b->delivered_count();
    result.forwarded += b->forwarded_count();
  }
  result.client_deliveries =
      cohorts ? pool->total_delivery_weight() : deliveries->total();
  result.inter_region_bytes = transport.ledger().inter_region_bytes;
  result.internet_bytes = transport.ledger().internet_bytes;
  return result;
}

bool counters_identical(const RunResult& a, const RunResult& b) {
  return a.events == b.events && a.sent == b.sent &&
         a.dropped == b.dropped && a.delivered == b.delivered &&
         a.forwarded == b.forwarded &&
         a.client_deliveries == b.client_deliveries &&
         a.inter_region_bytes == b.inter_region_bytes &&
         a.internet_bytes == b.internet_bytes;
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags(argc, argv);
  if (flags.has("help")) {
    std::printf(
        "bench_dataplane — data-plane engine comparison\n"
        "  --pubs N              total publications (default 1000000)\n"
        "  --mode both|fast|legacy|shards=K  engine selection (default\n"
        "                        both; a single engine skips the gates)\n"
        "  --clients N           total clients (default 10000)\n"
        "  --cohorts on|off      cohort-compressed subscriber plane\n"
        "                        (default off; drops the legacy engine)\n");
    return 0;
  }
  flags.allow_only({"help", "pubs", "mode", "clients", "cohorts"});
  const long pubs_flag = flags.get_int("pubs", 1000000);
  const long clients_flag =
      flags.get_int("clients", static_cast<long>(kDefaultClients));
  const bool cohorts = flags.get_bool("cohorts", false);
  const std::string mode = flags.get("mode", "both");
  if (!flags.errors().empty() || pubs_flag <= 0 || clients_flag <= 0) {
    for (const auto& error : flags.errors()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
    }
    std::fprintf(stderr, "see --help\n");
    return 2;
  }
  const auto total_pubs = static_cast<std::uint64_t>(pubs_flag);
  const auto n_clients = static_cast<std::size_t>(clients_flag);
  const std::uint64_t actual_pubs =
      std::max<std::uint64_t>(1, total_pubs / kTopics) * kTopics;
  if (mode != "both") {
    // Profiling mode: one configuration, no comparison.
    EngineConfig engine{"fast", 1};
    const std::string_view mode_view = mode;
    if (mode == "legacy") {
      engine = {"legacy", 0};
    } else if (mode_view.substr(0, 7) == "shards=") {
      engine.label = "sharded";
      engine.shards = static_cast<std::uint32_t>(
          std::strtoul(mode.c_str() + 7, nullptr, 10));
      if (engine.shards < 2) {
        std::fprintf(stderr, "shards=K needs K >= 2\n");
        return 2;
      }
    } else if (mode != "fast") {
      std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
      return 2;
    }
    if (cohorts && engine.shards == 0) {
      std::fprintf(stderr, "cohorts require the fast path, not legacy\n");
      return 2;
    }
    const RunResult r = run_engine(engine, total_pubs, n_clients, cohorts);
    std::printf("%s: %llu events in %.3f s = %.0f events/sec\n", mode.c_str(),
                static_cast<unsigned long long>(r.events), r.seconds,
                r.events_per_sec());
    return 0;
  }

  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf("dataplane bench: %llu publications, %zu clients, %zu regions, "
              "%zu routed topics, %u hardware threads, %s plane\n",
              static_cast<unsigned long long>(actual_pubs), n_clients,
              kRegions, kTopics, hw_threads,
              cohorts ? "cohort" : "per-client");

  // The cohort plane has no legacy twin, so its reference engine is the
  // single-threaded fast path; the per-client comparison keeps the seed
  // engine as reference.
  std::vector<EngineConfig> engines;
  if (!cohorts) engines.push_back({"legacy", 0});
  engines.push_back({"fast", 1});
  engines.push_back({"sharded", 2});
  engines.push_back({"sharded", 4});
  engines.push_back({"sharded", 8});
  std::vector<RunResult> results;
  for (const EngineConfig& engine : engines) {
    results.push_back(run_engine(engine, total_pubs, n_clients, cohorts));
  }
  const RunResult& reference = results[0];
  const RunResult& fast = results[cohorts ? 0 : 1];

  bench::BenchReport report("dataplane");
  std::printf("%-8s %8s %14s %10s %16s %12s\n", "engine", "threads", "events",
              "seconds", "events_per_sec", "vs_ref");
  bool all_identical = true;
  for (std::size_t i = 0; i < engines.size(); ++i) {
    const EngineConfig& engine = engines[i];
    const RunResult& r = results[i];
    // Observable identity is pairwise against the reference; with every
    // configuration proven identical to it, this chains to every pair.
    const bool identical = counters_identical(r, reference);
    all_identical = all_identical && identical;
    const double vs_ref =
        reference.events_per_sec() > 0.0
            ? r.events_per_sec() / reference.events_per_sec()
            : 0.0;
    const std::uint32_t threads = std::max<std::uint32_t>(1, engine.shards);
    std::printf("%-8s %8u %14llu %10.3f %16.0f %11.2fx%s\n", engine.label,
                threads, static_cast<unsigned long long>(r.events), r.seconds,
                r.events_per_sec(), vs_ref,
                identical ? "" : "  COUNTERS DIVERGED");
    report.row()
        .str("engine", engine.label)
        .uinteger("threads", threads)
        .uinteger("publications", actual_pubs)
        .uinteger("clients", n_clients)
        .boolean("cohorts", cohorts)
        .uinteger("regions", kRegions)
        .uinteger("topics", kTopics)
        .uinteger("events", r.events)
        .num("seconds", r.seconds)
        .num("events_per_sec", r.events_per_sec())
        .num("speedup_vs_reference", vs_ref)
        .num("speedup_vs_fast",
             fast.events_per_sec() > 0.0
                 ? r.events_per_sec() / fast.events_per_sec()
                 : 0.0)
        .boolean("identical", identical)
        .uinteger("hardware_concurrency", hw_threads);
  }
  const double fast_speedup =
      fast.events_per_sec() / reference.events_per_sec();
  const double shard8_speedup =
      results.back().events_per_sec() / fast.events_per_sec();
  if (cohorts) {
    std::printf("8-thread sharded vs fast %.2fx, counters %s\n",
                shard8_speedup, all_identical ? "identical" : "DIVERGED");
  } else {
    std::printf("fast vs legacy %.2fx, 8-thread sharded vs fast %.2fx, "
                "counters %s\n",
                fast_speedup, shard8_speedup,
                all_identical ? "identical" : "DIVERGED");
  }

  if (!report.write()) return 1;

  if (!all_identical) {
    std::fprintf(stderr, "ENGINE DIVERGENCE (see table above)\n");
    return 1;
  }
  // The throughput gates only apply to full-size runs; the CI smoke run
  // uses a small count where fixed overheads dominate. The parallel gate
  // additionally needs the hardware to exist: conservative windows cannot
  // speed anything up on a box with fewer cores than shards.
  if (!cohorts && actual_pubs >= 1000000 && fast_speedup < 3.0) {
    std::fprintf(stderr, "fast-path speedup below 3x (%.2fx)\n",
                 fast_speedup);
    return 1;
  }
  if (actual_pubs >= 1000000 && hw_threads >= 8 && shard8_speedup < 3.0) {
    std::fprintf(stderr, "8-thread sharded speedup below 3x (%.2fx)\n",
                 shard8_speedup);
    return 1;
  }
  return 0;
}
