// Data-plane throughput benchmark: typed-event scheduling + batched fan-out
// vs. the seed's std::function-per-hop path.
//
// One synthetic world (8 regions, 10k clients), 500 routed topics each
// served by 3 regions with 50 subscribers, publishers driven by
// self-rescheduling simulator actions. The same workload runs twice — once
// per engine, freshly constructed from identical seeds — and the bench
// reports events/sec for each plus the speedup. Prints a table and writes
// BENCH_dataplane.json. Exits non-zero when any counter (processed events,
// transport sent/dropped, broker delivered/forwarded, ledger bytes)
// diverges between the engines, or when the speedup drops below 3x on a
// full-size run (>= 10^6 publications; the CI smoke run passes a small
// count and only gates on identity).
//
// Usage: bench_dataplane [total_publications] [both|fast|legacy]
// (default 1000000 both; single-engine mode is for profiling and skips the
// comparison gates)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string_view>
#include <vector>

#include "broker/broker.h"
#include "common/rng.h"
#include "core/config.h"
#include "geo/king_synth.h"
#include "geo/synthetic.h"
#include "net/simulator.h"
#include "net/transport.h"
#include "wire/message.h"

using namespace multipub;

namespace {

constexpr std::size_t kRegions = 8;
constexpr std::size_t kClientsPerRegion = 1250;  // 10k clients total
constexpr std::size_t kTopics = 500;
constexpr std::size_t kServingPerTopic = 3;
constexpr std::size_t kSubsPerTopic = 50;
constexpr Bytes kPayload = 1024;
constexpr std::uint64_t kWorldSeed = 4242;
constexpr std::uint64_t kMembersSeed = 4243;

struct RunResult {
  double seconds = 0.0;
  std::uint64_t events = 0;  // simulator events processed while measuring
  std::uint64_t sent = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delivered = 0;
  std::uint64_t forwarded = 0;
  std::vector<Bytes> inter_region_bytes;
  std::vector<Bytes> internet_bytes;

  [[nodiscard]] double events_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0;
  }
};

/// Builds the identical world + workload and drives `total_pubs`
/// publications through the chosen engine.
RunResult run_engine(bool fast, std::uint64_t total_pubs) {
  Rng world_rng(kWorldSeed);
  const auto world = geo::synthesize_world(kRegions, {}, world_rng);
  const auto population = geo::synthesize_population(
      world.catalog, world.backbone, kClientsPerRegion, {}, world_rng);

  net::Simulator sim;
  net::SimTransport transport(sim, world.catalog, world.backbone,
                              population.latencies);
  // Must happen before anything is scheduled: switching engines requires an
  // empty queue.
  transport.set_fast_path(fast);

  std::vector<std::unique_ptr<broker::Broker>> brokers;
  for (std::size_t r = 0; r < kRegions; ++r) {
    brokers.push_back(std::make_unique<broker::Broker>(
        RegionId{static_cast<RegionId::underlying_type>(r)}, sim, transport));
  }

  // Raw counting handlers for every client — the bench measures the data
  // plane, not the client::Subscriber bookkeeping.
  auto deliveries = std::make_shared<std::uint64_t>(0);
  for (std::size_t c = 0; c < population.size(); ++c) {
    transport.register_handler(
        net::Address::client(ClientId{static_cast<ClientId::underlying_type>(
            c)}),
        [deliveries](const wire::Message&) { ++*deliveries; });
  }

  // Topology: topic t is served by {t, t+3, t+5} mod 8 (distinct for 8
  // regions) in routed mode; subscribers round-robin across the serving
  // regions; one publisher targeting the first serving region.
  Rng members_rng(kMembersSeed);
  auto random_client = [&] {
    return ClientId{static_cast<ClientId::underlying_type>(
        members_rng.uniform_int(0,
                                static_cast<std::int64_t>(population.size()) -
                                    1))};
  };

  std::vector<ClientId> topic_publisher(kTopics);
  std::vector<RegionId> topic_entry(kTopics);  // region the publisher hits
  for (std::size_t t = 0; t < kTopics; ++t) {
    geo::RegionSet serving;
    const std::size_t base = t % kRegions;
    serving.add(RegionId{static_cast<RegionId::underlying_type>(base)});
    serving.add(RegionId{
        static_cast<RegionId::underlying_type>((base + 3) % kRegions)});
    serving.add(RegionId{
        static_cast<RegionId::underlying_type>((base + 5) % kRegions)});
    const core::TopicConfig config{serving, core::DeliveryMode::kRouted};
    const TopicId topic{static_cast<TopicId::underlying_type>(t)};
    for (auto& b : brokers) b->set_topic_config(topic, config);

    const auto serving_vec = serving.to_vector();
    for (std::size_t s = 0; s < kSubsPerTopic; ++s) {
      const ClientId sub = random_client();
      const RegionId at = serving_vec[s % serving_vec.size()];
      wire::Message msg;
      msg.type = wire::MessageType::kSubscribe;
      msg.topic = topic;
      msg.subscriber = sub;
      transport.send(net::Address::client(sub), net::Address::region(at),
                     msg);
    }
    topic_publisher[t] = random_client();
    topic_entry[t] = serving_vec.front();
  }
  sim.run();  // settle the subscription handshakes outside the measurement

  // Publications: one self-rescheduling driver per topic, `per_topic` sends
  // each, 0.8 ms apart with the topic index as phase — dense enough to keep
  // a deep in-flight window, the regime a global-scale broker actually runs
  // in. Driver actions are generic Actions on both engines, so their cost
  // is shared overhead.
  const std::uint64_t per_topic =
      std::max<std::uint64_t>(1, total_pubs / kTopics);
  struct Driver {
    net::Simulator* sim;
    net::SimTransport* transport;
    TopicId topic;
    ClientId publisher;
    RegionId entry;
    std::uint64_t remaining;
    std::uint64_t seq = 0;

    void fire() {
      wire::Message msg;
      msg.type = wire::MessageType::kPublish;
      msg.topic = topic;
      msg.publisher = publisher;
      msg.seq = seq++;
      msg.published_at = sim->now();
      msg.payload_bytes = kPayload;
      // Routed intent travels on the message (the broker fans out what the
      // publication asks for, not what its own config says).
      msg.config_mode = wire::WireMode::kRouted;
      transport->send(net::Address::client(publisher),
                      net::Address::region(entry), msg);
      if (--remaining > 0) {
        sim->schedule_after(0.8, [this] { fire(); });
      }
    }
  };
  std::vector<std::unique_ptr<Driver>> drivers;
  for (std::size_t t = 0; t < kTopics; ++t) {
    auto driver = std::make_unique<Driver>();
    driver->sim = &sim;
    driver->transport = &transport;
    driver->topic = TopicId{static_cast<TopicId::underlying_type>(t)};
    driver->publisher = topic_publisher[t];
    driver->entry = topic_entry[t];
    driver->remaining = per_topic;
    Driver* raw = driver.get();
    sim.schedule_after(static_cast<double>(t) * 0.01, [raw] { raw->fire(); });
    drivers.push_back(std::move(driver));
  }

  RunResult result;
  const std::uint64_t processed_before = sim.processed();
  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  result.events = sim.processed() - processed_before;
  result.sent = transport.sent_count();
  result.dropped = transport.dropped_count();
  for (const auto& b : brokers) {
    result.delivered += b->delivered_count();
    result.forwarded += b->forwarded_count();
  }
  result.inter_region_bytes = transport.ledger().inter_region_bytes;
  result.internet_bytes = transport.ledger().internet_bytes;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t total_pubs = 1000000;
  if (argc > 1) {
    total_pubs = std::strtoull(argv[1], nullptr, 10);
    if (total_pubs == 0) {
      std::fprintf(stderr, "usage: %s [total_publications]\n", argv[0]);
      return 2;
    }
  }
  const std::uint64_t actual_pubs =
      std::max<std::uint64_t>(1, total_pubs / kTopics) * kTopics;
  const char* mode = argc > 2 ? argv[2] : "both";
  if (std::string_view{mode} != "both") {
    // Profiling mode: one engine, no comparison.
    const bool fast_only = std::string_view{mode} == "fast";
    const RunResult r = run_engine(fast_only, total_pubs);
    std::printf("%s: %llu events in %.3f s = %.0f events/sec\n", mode,
                static_cast<unsigned long long>(r.events), r.seconds,
                r.events_per_sec());
    return 0;
  }

  std::printf("dataplane bench: %llu publications, %zu clients, %zu regions, "
              "%zu routed topics\n",
              static_cast<unsigned long long>(actual_pubs),
              kRegions * kClientsPerRegion, kRegions, kTopics);

  const RunResult legacy = run_engine(/*fast=*/false, total_pubs);
  const RunResult fast = run_engine(/*fast=*/true, total_pubs);

  const bool identical = legacy.events == fast.events &&
                         legacy.sent == fast.sent &&
                         legacy.dropped == fast.dropped &&
                         legacy.delivered == fast.delivered &&
                         legacy.forwarded == fast.forwarded &&
                         legacy.inter_region_bytes == fast.inter_region_bytes &&
                         legacy.internet_bytes == fast.internet_bytes;
  const double speedup =
      legacy.events_per_sec() > 0.0
          ? fast.events_per_sec() / legacy.events_per_sec()
          : 0.0;

  std::printf("%-8s %14s %10s %16s %14s\n", "engine", "events", "seconds",
              "events_per_sec", "deliveries");
  std::printf("%-8s %14llu %10.3f %16.0f %14llu\n", "legacy",
              static_cast<unsigned long long>(legacy.events), legacy.seconds,
              legacy.events_per_sec(),
              static_cast<unsigned long long>(legacy.delivered));
  std::printf("%-8s %14llu %10.3f %16.0f %14llu\n", "fast",
              static_cast<unsigned long long>(fast.events), fast.seconds,
              fast.events_per_sec(),
              static_cast<unsigned long long>(fast.delivered));
  std::printf("speedup %.2fx, counters %s\n", speedup,
              identical ? "identical" : "DIVERGED");

  std::FILE* out = std::fopen("BENCH_dataplane.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_dataplane.json\n");
    return 1;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"publications\": %llu,\n"
      "  \"clients\": %zu,\n"
      "  \"regions\": %zu,\n"
      "  \"topics\": %zu,\n"
      "  \"legacy\": {\"events\": %llu, \"seconds\": %.6f, "
      "\"events_per_sec\": %.0f},\n"
      "  \"fast\": {\"events\": %llu, \"seconds\": %.6f, "
      "\"events_per_sec\": %.0f},\n"
      "  \"speedup\": %.3f,\n"
      "  \"identical\": %s\n"
      "}\n",
      static_cast<unsigned long long>(actual_pubs),
      kRegions * kClientsPerRegion, kRegions, kTopics,
      static_cast<unsigned long long>(legacy.events), legacy.seconds,
      legacy.events_per_sec(), static_cast<unsigned long long>(fast.events),
      fast.seconds, fast.events_per_sec(), speedup,
      identical ? "true" : "false");
  std::fclose(out);

  if (!identical) {
    std::fprintf(stderr, "ENGINE DIVERGENCE (see table above)\n");
    return 1;
  }
  // The throughput gate only applies to full-size runs; the CI smoke run
  // uses a small count where fixed overheads dominate.
  if (actual_pubs >= 1000000 && speedup < 3.0) {
    std::fprintf(stderr, "speedup below 3x (%.2fx)\n", speedup);
    return 1;
  }
  return 0;
}
