// Ablation: heuristic (seed/grow/trim-swap) vs. exhaustive search.
//
// On the 10-region EC2 world both run, so quality is measured directly; on
// larger synthetic worlds (paper conclusion: "heuristic-based approaches to
// support even larger-scale systems") brute force is infeasible and only
// the heuristic's runtime/evaluations are reported.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_json.h"
#include "core/heuristic.h"
#include "geo/king_synth.h"
#include "geo/synthetic.h"
#include "sim/scenario.h"

using namespace multipub;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ec2_comparison(bench::BenchReport& report) {
  std::printf("--- EC2 world (10 regions): heuristic vs. exhaustive ---\n");
  Rng rng(2017);
  const sim::Scenario scenario = sim::make_experiment1_scenario(rng);
  const core::Optimizer exact(scenario.catalog, scenario.backbone,
                              scenario.population.latencies);
  const core::HeuristicOptimizer heuristic(scenario.catalog, scenario.backbone,
                                           scenario.population.latencies);

  std::printf("%8s | %10s %8s %8s | %10s %8s %8s | %9s %s\n", "max_T",
              "exact $", "ms", "evals", "heur $", "ms", "evals", "gap %",
              "same");
  for (Millis max_t : {130.0, 150.0, 160.0, 175.0, 200.0, 250.0, 400.0}) {
    auto topic = scenario.topic;
    topic.constraint.max = max_t;

    const double t0 = now_ms();
    const auto e = exact.optimize(topic);
    const double t1 = now_ms();
    const auto h = heuristic.optimize(topic);
    const double t2 = now_ms();

    const double gap =
        e.cost > 0 ? 100.0 * (h.cost - e.cost) / e.cost : 0.0;
    std::printf("%8.0f | %10.4f %8.1f %8zu | %10.4f %8.1f %8zu | %+8.2f %s\n",
                max_t, e.cost, t1 - t0, e.configs_evaluated, h.cost, t2 - t1,
                h.configs_evaluated, gap,
                h.config == e.config ? "yes" : "no");
    report.row()
        .str("study", "ec2_comparison")
        .num("max_t", max_t)
        .num("exact_cost", e.cost)
        .num("exact_ms", t1 - t0)
        .uinteger("exact_evals", e.configs_evaluated)
        .num("heuristic_cost", h.cost)
        .num("heuristic_ms", t2 - t1)
        .uinteger("heuristic_evals", h.configs_evaluated)
        .num("gap_pct", gap)
        .boolean("same_config", h.config == e.config);
  }
}

void synthetic_scaling(bench::BenchReport& report) {
  std::printf("\n--- synthetic worlds: heuristic scaling (brute force would "
              "need 2*(2^N-1)-N evals) ---\n");
  std::printf("%8s %12s %10s %10s %-24s\n", "regions", "brute evals",
              "heur evals", "ms", "result");
  for (std::size_t n : {10u, 14u, 18u, 22u, 26u, 30u}) {
    Rng rng(2017);
    const auto world = geo::synthesize_world(n, {}, rng);
    auto population =
        geo::synthesize_population(world.catalog, world.backbone, 4, {}, rng);

    core::TopicState topic;
    topic.topic = TopicId{0};
    topic.constraint = {90.0, 100.0};
    std::vector<ClientId> pubs, subs;
    for (std::size_t i = 0; i < population.size(); ++i) {
      const ClientId id{static_cast<ClientId::underlying_type>(i)};
      (i % 4 == 0 ? pubs : subs).push_back(id);
    }
    topic.publishers = core::uniform_publishers(pubs, 10, 1024);
    topic.subscribers = core::unit_subscribers(subs);

    const core::HeuristicOptimizer heuristic(world.catalog, world.backbone,
                                             population.latencies);
    const double t0 = now_ms();
    const auto h = heuristic.optimize(topic);
    const double t1 = now_ms();

    const double brute = 2.0 * (std::pow(2.0, static_cast<double>(n)) - 1.0) -
                         static_cast<double>(n);
    std::printf("%8zu %12.0f %10zu %10.1f %zu regions/%s %s\n", n, brute,
                h.configs_evaluated, t1 - t0,
                static_cast<std::size_t>(h.config.region_count()),
                core::to_string(h.config.mode),
                h.constraint_met ? "(met)" : "(best effort)");
    report.row()
        .str("study", "synthetic_scaling")
        .uinteger("regions", n)
        .num("brute_force_evals", brute)
        .uinteger("heuristic_evals", h.configs_evaluated)
        .num("heuristic_ms", t1 - t0)
        .integer("result_regions", h.config.region_count())
        .str("result_mode", core::to_string(h.config.mode))
        .boolean("constraint_met", h.constraint_met);
  }
}

}  // namespace

int main() {
  std::printf("=== Ablation: heuristic optimizer ===\n");
  bench::BenchReport report("ablation_heuristic");
  ec2_comparison(report);
  synthetic_scaling(report);
  if (!report.write()) return 1;
  return 0;
}
