// Million-client data-plane benchmark: the per-client subscriber plane
// against the cohort-compressed plane (DESIGN.md §12) across client counts
// from ten thousand to ten million.
//
// One synthetic world (8 regions, 64 distinct network positions), 32 routed
// topics each served by 3 regions. Clients round-robin over the positions
// and each position subscribes to one topic, so N clients fold into 64
// weighted cohorts — the regime the cohort plane is built for. Both planes
// run the identical publication workload on the single-threaded fast path;
// the per-client plane instantiates one handler and one subscription per
// client, the cohort plane one flock per (cohort, topic).
//
// The weighted counter books (sent, broker-delivered, client deliveries,
// per-region billed bytes) must be IDENTICAL between the planes at equal
// scale — compression changes the event count, never the observables.
// Prints a table and writes BENCH_clients.json (one row per (plane, N),
// every row carrying peak_rss_bytes).
//
// Exit gates:
//   - weighted counter divergence between the planes at any size fails
//     ALWAYS;
//   - at >= 10^6 clients the cohort plane must clear 10x the per-client
//     plane's weighted deliveries per second;
//   - the largest cohort-only sweep point must stay under 4 GB peak RSS
//     (struct-of-arrays state, not per-client objects, carries the scale);
//   - --verify: a LiveSystem differential run (cohorts on vs off) over
//     replicated subscribers must produce bit-identical delivery times,
//     interval costs and rendered metrics.
//
// Usage: bench_clients [--clients N] [--cohorts on|off|both] [--pubs P]
//                      [--max-per-client N] [--quantize-ms MS] [--verify]
// (default: sweep N in {10k, 100k, 1M, 10M}, both planes, per-client
// capped at --max-per-client, default 1M)
//
// --quantize-ms MS > 0 buckets the latency rows before cohort interning
// (floor(lat/MS)*MS), folding near-identical positions into one cohort.
// That trades the bit-identity guarantee for compression, so the books
// comparison is skipped — the cohort column shrinking as MS grows is the
// observable.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "broker/broker.h"
#include "client/client_registry.h"
#include "client/cohort_pool.h"
#include "client/topic_set_pool.h"
#include "common/arena.h"
#include "common/rng.h"
#include "core/config.h"
#include "flags.h"
#include "geo/king_synth.h"
#include "geo/synthetic.h"
#include "net/simulator.h"
#include "net/transport.h"
#include "sim/live_runner.h"
#include "sim/metrics_snapshot.h"
#include "sim/scenario.h"
#include "wire/message.h"

using namespace multipub;

namespace {

constexpr std::size_t kRegions = 8;
constexpr std::size_t kPositionsPerRegion = 8;  // 64 network positions
constexpr std::size_t kPositions = kRegions * kPositionsPerRegion;
constexpr std::size_t kTopics = 32;
constexpr Bytes kPayload = 1024;
constexpr std::uint64_t kWorldSeed = 4242;

struct RunResult {
  double seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t weighted_deliveries = 0;
  std::uint64_t sent = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delivered = 0;
  std::uint64_t forwarded = 0;
  std::vector<Bytes> inter_region_bytes;
  std::vector<Bytes> internet_bytes;
  std::size_t cohorts = 0;  // 0 on the per-client plane
  std::size_t flocks = 0;
  std::size_t rows = 0;  // distinct interned latency rows (cohort plane)

  [[nodiscard]] double per_sec(std::uint64_t n) const {
    return seconds > 0.0 ? static_cast<double>(n) / seconds : 0.0;
  }
};

geo::RegionSet serving_set(std::size_t topic) {
  geo::RegionSet serving;
  const std::size_t base = topic % kRegions;
  serving.add(RegionId{static_cast<RegionId::underlying_type>(base)});
  serving.add(
      RegionId{static_cast<RegionId::underlying_type>((base + 3) % kRegions)});
  serving.add(
      RegionId{static_cast<RegionId::underlying_type>((base + 5) % kRegions)});
  return serving;
}

/// Self-rescheduling publication source, one per topic (the bench_dataplane
/// recipe): dense enough to keep a deep in-flight window.
struct Driver {
  net::Simulator* sim;
  net::SimTransport* transport;
  TopicId topic;
  ClientId publisher;
  RegionId entry;
  std::uint64_t remaining;
  std::uint64_t seq = 0;

  void fire() {
    wire::Message msg;
    msg.type = wire::MessageType::kPublish;
    msg.topic = topic;
    msg.publisher = publisher;
    msg.seq = seq++;
    msg.published_at = sim->now();
    msg.payload_bytes = kPayload;
    msg.config_mode = wire::WireMode::kRouted;
    transport->send(net::Address::client(publisher),
                    net::Address::region(entry), msg);
    if (--remaining > 0) sim->schedule_after(0.8, [this] { fire(); });
  }
};

/// Runs `pubs_per_topic` publications per topic against `n_clients`
/// subscribers on the chosen plane and returns the counter books.
RunResult run_plane(bool cohorts, std::size_t n_clients,
                    std::uint64_t pubs_per_topic, double quantize_ms) {
  Rng world_rng(kWorldSeed);
  const auto world = geo::synthesize_world(kRegions, {}, world_rng);
  // The 64 distinct network positions every client maps onto.
  const auto positions = geo::synthesize_population(
      world.catalog, world.backbone, kPositionsPerRegion, {}, world_rng);

  // The transport's client matrix: per-client needs every client's row (a
  // delivery consults the receiver's latency); the cohort plane resolves
  // latencies through the directory's shared rows, so the 64 position rows
  // suffice no matter how many clients enroll — that asymmetry IS the
  // memory story this bench demonstrates.
  geo::ClientLatencyMap client_rows(kRegions);
  const std::size_t mapped = cohorts ? kPositions : n_clients;
  for (std::size_t c = 0; c < mapped; ++c) {
    client_rows.add_client(positions.latencies.row(
        ClientId{static_cast<ClientId::underlying_type>(
            static_cast<std::int64_t>(c % kPositions))}));
  }

  net::Simulator sim;
  net::SimTransport transport(sim, world.catalog, world.backbone, client_rows);

  std::vector<std::unique_ptr<broker::Broker>> brokers;
  for (std::size_t r = 0; r < kRegions; ++r) {
    brokers.push_back(std::make_unique<broker::Broker>(
        RegionId{static_cast<RegionId::underlying_type>(r)}, sim, transport));
  }
  for (std::size_t t = 0; t < kTopics; ++t) {
    const core::TopicConfig config{serving_set(t),
                                   core::DeliveryMode::kRouted};
    for (auto& b : brokers) {
      b->set_topic_config(TopicId{static_cast<TopicId::underlying_type>(t)},
                          config);
    }
  }

  RunResult result;
  std::uint64_t per_client_deliveries = 0;

  // Cohort-plane state; only materialized on that plane.
  std::unique_ptr<Arena> arena;
  std::unique_ptr<client::TopicSetPool> topic_sets;
  std::unique_ptr<client::ClientRegistry> registry;
  std::unique_ptr<client::CohortPool> pool;

  if (cohorts) {
    arena = std::make_unique<Arena>();
    topic_sets = std::make_unique<client::TopicSetPool>(*arena);
    registry = std::make_unique<client::ClientRegistry>(n_clients, kRegions,
                                                        quantize_ms, *arena);
    std::vector<std::int32_t> position_set(kPositions);
    for (std::size_t p = 0; p < kPositions; ++p) {
      const std::array<TopicId, 1> topics{
          TopicId{static_cast<TopicId::underlying_type>(p % kTopics)}};
      position_set[p] = topic_sets->intern(topics);
    }
    pool = std::make_unique<client::CohortPool>(*registry, *topic_sets, sim,
                                                transport);
    transport.set_cohort_directory(pool.get());
    for (std::size_t c = 0; c < n_clients; ++c) {
      const std::size_t p = c % kPositions;
      const ClientId position{static_cast<ClientId::underlying_type>(
          static_cast<std::int64_t>(p))};
      const ClientId id =
          registry->add(positions.home_region[p],
                        positions.latencies.row(position), position_set[p]);
      pool->enroll(id);
    }
    for (std::size_t t = 0; t < kTopics; ++t) {
      pool->deploy(TopicId{static_cast<TopicId::underlying_type>(t)},
                   {serving_set(t), core::DeliveryMode::kRouted});
    }
    result.cohorts = pool->cohort_count();
    result.flocks = pool->flock_count();
    result.rows = registry->row_count();
  } else {
    // One handler and one subscription per client, each attached to the
    // closest serving region of its topic — the same attachment rule the
    // cohort plane applies per flock, so the books coincide.
    for (std::size_t c = 0; c < n_clients; ++c) {
      const ClientId id{static_cast<ClientId::underlying_type>(
          static_cast<std::int64_t>(c))};
      transport.register_handler(
          net::Address::client(id),
          [&per_client_deliveries](const wire::Message&) {
            ++per_client_deliveries;
          });
      const std::size_t p = c % kPositions;
      const TopicId topic{static_cast<TopicId::underlying_type>(p % kTopics)};
      const ClientId position{static_cast<ClientId::underlying_type>(
          static_cast<std::int64_t>(p))};
      const RegionId at = positions.latencies.closest_region(
          position, serving_set(p % kTopics));
      wire::Message msg;
      msg.type = wire::MessageType::kSubscribe;
      msg.topic = topic;
      msg.subscriber = id;
      transport.send(net::Address::client(id), net::Address::region(at), msg);
    }
  }
  sim.run();  // settle the handshakes outside the measurement

  std::vector<std::unique_ptr<Driver>> drivers;
  for (std::size_t t = 0; t < kTopics; ++t) {
    auto driver = std::make_unique<Driver>();
    driver->sim = &sim;
    driver->transport = &transport;
    driver->topic = TopicId{static_cast<TopicId::underlying_type>(t)};
    // Publisher = position client t (< 64), present in both planes' maps.
    driver->publisher =
        ClientId{static_cast<ClientId::underlying_type>(
            static_cast<std::int64_t>(t))};
    driver->entry = serving_set(t).first();
    driver->remaining = pubs_per_topic;
    Driver* raw = driver.get();
    sim.schedule_at(sim.now() + static_cast<double>(t) * 0.01,
                    [raw] { raw->fire(); });
    drivers.push_back(std::move(driver));
  }

  const std::uint64_t processed_before = sim.processed();
  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.events = sim.processed() - processed_before;
  result.weighted_deliveries =
      cohorts ? pool->total_delivery_weight() : per_client_deliveries;
  result.sent = transport.sent_count();
  result.dropped = transport.dropped_count();
  for (const auto& b : brokers) {
    result.delivered += b->delivered_count();
    result.forwarded += b->forwarded_count();
  }
  result.inter_region_bytes = transport.ledger().inter_region_bytes;
  result.internet_bytes = transport.ledger().internet_bytes;
  return result;
}

bool books_identical(const RunResult& a, const RunResult& b) {
  // Everything weighted must coincide; the EVENT counts differ by design —
  // that difference is the entire point of the cohort plane.
  return a.weighted_deliveries == b.weighted_deliveries && a.sent == b.sent &&
         a.dropped == b.dropped && a.delivered == b.delivered &&
         a.forwarded == b.forwarded &&
         a.inter_region_bytes == b.inter_region_bytes &&
         a.internet_bytes == b.internet_bytes;
}

/// LiveSystem differential: the full middleware (controller, region
/// managers, reconfigurations) over a replicated-subscriber scenario, run
/// once per plane from identical seeds. Bit-identical delivery times, costs
/// and rendered metrics or the bench fails.
int run_verify(std::size_t n_clients) {
  Rng rng(2026);
  sim::WorkloadSpec workload;
  workload.interval_seconds = 10.0;
  workload.ratio = 95.0;
  workload.subscriber_replication = std::max<std::size_t>(1, n_clients / 6);
  const sim::Scenario scenario = sim::make_scenario(
      {{RegionId{0}, 2, 3}, {RegionId{5}, 2, 3}}, workload, rng);

  sim::LiveSystem per_client(scenario);
  sim::LiveSystem cohorts(scenario);
  cohorts.set_cohorts(true);
  const core::TopicConfig bootstrap{geo::RegionSet::universe(10),
                                    core::DeliveryMode::kRouted};
  per_client.deploy(bootstrap);
  cohorts.deploy(bootstrap);

  Rng rng_a(99), rng_b(99);
  for (int round = 0; round < 3; ++round) {
    const auto a = per_client.run_interval(10.0, kPayload, 1.0, rng_a);
    const auto b = cohorts.run_interval(10.0, kPayload, 1.0, rng_b);
    if (a.delivery_times != b.delivery_times ||
        a.interval_cost != b.interval_cost) {
      std::fprintf(stderr,
                   "VERIFY FAILED round %d: %zu vs %zu deliveries, "
                   "$%.6f vs $%.6f\n",
                   round, a.delivery_times.size(), b.delivery_times.size(),
                   a.interval_cost, b.interval_cost);
      return 1;
    }
    (void)per_client.control_round();
    (void)cohorts.control_round();
    if (sim::collect_metrics(per_client).render() !=
        sim::collect_metrics(cohorts).render()) {
      std::fprintf(stderr, "VERIFY FAILED round %d: metrics diverged\n",
                   round);
      return 1;
    }
  }
  std::printf("verify: %zu subscribers, 3 rounds, cohort plane bit-identical "
              "to per-client plane\n",
              scenario.topic.subscribers.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags(argc, argv);
  if (flags.has("help")) {
    std::printf(
        "bench_clients — per-client vs cohort-compressed subscriber plane\n"
        "  --clients N          one sweep point instead of the full sweep\n"
        "  --cohorts on|off|both  plane selection (default both)\n"
        "  --pubs P             publications per topic (default 20)\n"
        "  --max-per-client N   largest N the per-client plane runs\n"
        "                       (default 1000000)\n"
        "  --quantize-ms MS     bucket latency rows before cohort interning\n"
        "                       (default 0 = exact; MS > 0 folds near-\n"
        "                       identical positions and skips the books\n"
        "                       comparison)\n"
        "  --verify             LiveSystem bit-identity differential at\n"
        "                       --clients (default 10000) and exit\n");
    return 0;
  }
  flags.allow_only({"help", "clients", "cohorts", "pubs", "max-per-client",
                    "quantize-ms", "verify"});
  const long clients_flag = flags.get_int("clients", 0);
  const std::string cohorts_mode = flags.get("cohorts", "both");
  const auto pubs_per_topic = static_cast<std::uint64_t>(
      std::max(1L, flags.get_int("pubs", 20)));
  const auto max_per_client = static_cast<std::size_t>(
      std::max(0L, flags.get_int("max-per-client", 1000000)));
  const double quantize_ms = flags.get_double("quantize-ms", 0.0);
  if (!flags.errors().empty() ||
      (cohorts_mode != "both" && cohorts_mode != "on" &&
       cohorts_mode != "off") ||
      clients_flag < 0 || quantize_ms < 0.0) {
    for (const auto& error : flags.errors()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
    }
    std::fprintf(stderr, "see --help\n");
    return 2;
  }
  if (quantize_ms > 0.0 && flags.get_bool("verify", false)) {
    std::fprintf(stderr,
                 "--quantize-ms is incompatible with --verify: the "
                 "differential asserts bit-identity, which only exact rows "
                 "provide\n");
    return 2;
  }

  if (flags.get_bool("verify", false)) {
    return run_verify(clients_flag > 0 ? static_cast<std::size_t>(clients_flag)
                                       : 10000);
  }

  std::vector<std::size_t> counts;
  if (clients_flag > 0) {
    counts.push_back(static_cast<std::size_t>(clients_flag));
  } else {
    counts = {10'000, 100'000, 1'000'000, 10'000'000};
  }

  std::printf("clients bench: %zu regions, %zu positions, %zu routed topics, "
              "%llu pubs/topic\n",
              kRegions, kPositions, kTopics,
              static_cast<unsigned long long>(pubs_per_topic));
  std::printf("%-10s %12s %10s %6s %14s %10s %20s %12s\n", "plane", "clients",
              "cohorts", "rows", "events", "seconds", "weighted_del_per_s",
              "peak_rss_mb");

  bench::BenchReport report("clients");
  bool all_identical = true;
  bool gate_10x_ok = true;
  bool gate_checked = false;
  unsigned long long largest_cohort_rss = 0;
  for (const std::size_t n : counts) {
    RunResult per_client;
    const bool ran_per_client = cohorts_mode != "on" && n <= max_per_client;
    const bool ran_cohorts = cohorts_mode != "off";
    struct PlaneRow {
      const char* label;
      bool cohorts;
      bool ran;
    };
    const PlaneRow planes[] = {{"per-client", false, ran_per_client},
                               {"cohort", true, ran_cohorts}};
    for (const PlaneRow& plane : planes) {
      if (!plane.ran) continue;
      const RunResult r =
          run_plane(plane.cohorts, n, pubs_per_topic, quantize_ms);
      if (!plane.cohorts) per_client = r;
      // Quantized rows legitimately re-route flocks (a bucketed row may pick
      // a different closest serving region), so the books only have to
      // coincide at bucket 0.
      const bool identical = !plane.cohorts || !ran_per_client ||
                             quantize_ms > 0.0 ||
                             books_identical(r, per_client);
      all_identical = all_identical && identical;
      if (plane.cohorts && ran_per_client && n >= 1'000'000) {
        gate_checked = true;
        if (r.per_sec(r.weighted_deliveries) <
            10.0 * per_client.per_sec(per_client.weighted_deliveries)) {
          gate_10x_ok = false;
        }
      }
      const unsigned long long rss = bench::peak_rss_bytes();
      if (plane.cohorts) largest_cohort_rss = rss;
      std::printf("%-10s %12zu %10zu %6zu %14llu %10.3f %20.0f %12.1f%s\n",
                  plane.label, n, r.cohorts, r.rows,
                  static_cast<unsigned long long>(r.events), r.seconds,
                  r.per_sec(r.weighted_deliveries),
                  static_cast<double>(rss) / 1e6,
                  identical ? "" : "  BOOKS DIVERGED");
      report.row()
          .str("plane", plane.label)
          .uinteger("clients", n)
          .uinteger("cohorts", r.cohorts)
          .uinteger("flocks", r.flocks)
          .uinteger("latency_rows", r.rows)
          .num("quantize_ms", quantize_ms)
          .uinteger("publications", pubs_per_topic * kTopics)
          .uinteger("events", r.events)
          .num("seconds", r.seconds)
          .num("events_per_sec", r.per_sec(r.events))
          .uinteger("weighted_deliveries", r.weighted_deliveries)
          .num("weighted_deliveries_per_sec",
               r.per_sec(r.weighted_deliveries))
          .boolean("identical", identical);
    }
  }

  if (!report.write()) return 1;
  if (!all_identical) {
    std::fprintf(stderr, "PLANE DIVERGENCE (see table above)\n");
    return 1;
  }
  if (gate_checked && !gate_10x_ok) {
    std::fprintf(stderr,
                 "cohort plane below 10x per-client weighted deliveries/s at "
                 ">= 1M clients\n");
    return 1;
  }
  if (largest_cohort_rss > 4ULL * 1000 * 1000 * 1000) {
    std::fprintf(stderr, "peak RSS %.2f GB exceeds the 4 GB bound\n",
                 static_cast<double>(largest_cohort_rss) / 1e9);
    return 1;
  }
  return 0;
}
