// Figure 4: direct vs. routed delivery (Experiment 2).
//
// Workload: 100 publishers in Asia-Pacific, 25 subscribers near Tokyo and
// 25 near N. Virginia, ratio 75 %. Runs three controllers — MultiPub,
// MultiPub-D (direct only) and MultiPub-R (routed only) — over a max_T
// sweep and prints the achieved p75 (4a) and daily cost (4b) per variant.
#include <cstdio>

#include "bench_json.h"
#include "sim/sweep.h"

using namespace multipub;

int main() {
  Rng rng(2017);
  const sim::Scenario scenario = sim::make_experiment2_scenario(rng);
  const auto optimizer = scenario.make_optimizer();

  // Mode floors: the minimum achievable percentile per policy (the paper's
  // 110 ms direct vs. 94 ms routed).
  auto probe = scenario.topic;
  probe.constraint.max = 1.0;
  core::OptimizerOptions direct_only;
  direct_only.mode_policy = core::ModePolicy::kDirectOnly;
  core::OptimizerOptions routed_only;
  routed_only.mode_policy = core::ModePolicy::kRoutedOnly;
  const double floor_direct = optimizer.optimize(probe, direct_only).percentile;
  const double floor_routed = optimizer.optimize(probe, routed_only).percentile;

  std::printf("=== Figure 4: direct vs. routed delivery ===\n");
  std::printf("workload: 100 pubs in Asia-Pacific, 25 subs Tokyo + 25 subs "
              "Virginia, ratio 75%%\n\n");
  std::printf("minimum reachable p75:  MultiPub-D %.1f ms,  MultiPub-R %.1f ms "
              "(paper: 110 vs 94)\n", floor_direct, floor_routed);
  std::printf("routed floor below direct floor: %s\n\n",
              floor_routed < floor_direct ? "PASS" : "FAIL");

  const sim::SweepRange range{floor_routed - 10.0, floor_direct + 80.0, 4.0};
  const auto both = sim::sweep_max_t(scenario, range);
  const auto direct = sim::sweep_max_t(scenario, range,
                                       core::ModePolicy::kDirectOnly);
  const auto routed = sim::sweep_max_t(scenario, range,
                                       core::ModePolicy::kRoutedOnly);

  bench::BenchReport report("fig4_direct_vs_routed");
  std::printf("%8s | %-9s %9s %10s | %9s %10s | %9s %10s\n", "max_T",
              "mp mode", "mp p75", "mp $/day", "D p75", "D $/day", "R p75",
              "R $/day");
  for (std::size_t i = 0; i < both.size(); ++i) {
    std::printf("%8.0f | %-9s %9.1f %10.2f | %9.1f %10.2f | %9.1f %10.2f\n",
                both[i].max_t, core::to_string(both[i].mode),
                both[i].achieved_percentile, both[i].cost_per_day,
                direct[i].achieved_percentile, direct[i].cost_per_day,
                routed[i].achieved_percentile, routed[i].cost_per_day);
    report.row()
        .num("max_t", both[i].max_t)
        .str("mp_mode", core::to_string(both[i].mode))
        .num("mp_p75_ms", both[i].achieved_percentile)
        .num("mp_cost_per_day", both[i].cost_per_day)
        .num("direct_p75_ms", direct[i].achieved_percentile)
        .num("direct_cost_per_day", direct[i].cost_per_day)
        .num("routed_p75_ms", routed[i].achieved_percentile)
        .num("routed_cost_per_day", routed[i].cost_per_day);
  }

  // Shape checks: between the floors MultiPub must pick routed; with loose
  // bounds it collapses to a single (direct) region.
  bool used_routed_between_floors = false;
  for (const auto& p : both) {
    if (p.max_t >= floor_routed && p.max_t < floor_direct &&
        p.constraint_met) {
      used_routed_between_floors |= p.mode == core::DeliveryMode::kRouted;
    }
  }
  const auto& tail = both.back();
  std::printf("\nshape checks:\n");
  std::printf("  routed used where only routed is feasible : %s\n",
              used_routed_between_floors ? "PASS" : "FAIL");
  std::printf("  loose bound -> one region, direct         : %s\n",
              tail.n_regions == 1 && tail.mode == core::DeliveryMode::kDirect
                  ? "PASS" : "FAIL");
  if (!report.write()) return 1;
  return 0;
}
