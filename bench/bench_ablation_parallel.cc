// Ablation: parallel multi-topic optimization (paper §IV-C / §V-F:
// "different topics can be solved in parallel, as they are independent").
//
// The speedup is bounded by std::thread::hardware_concurrency() — on a
// single-core host every thread count measures the same wall time; the
// interesting property there is the absence of parallel overhead. The
// `cores` counter records what the machine offered.
#include <benchmark/benchmark.h>

#include <thread>

#include "core/parallel.h"
#include "sim/scenario.h"

using namespace multipub;

namespace {

/// A bag of medium-sized topics over one shared Experiment-1 world.
struct TopicBag {
  sim::Scenario scenario;
  std::vector<core::TopicState> topics;
};

TopicBag make_bag(std::size_t n_topics) {
  Rng rng(2017);
  TopicBag bag{sim::make_experiment1_scenario(rng), {}};
  for (std::size_t t = 0; t < n_topics; ++t) {
    core::TopicState topic = bag.scenario.topic;
    topic.topic = TopicId{static_cast<TopicId::underlying_type>(t)};
    topic.constraint = {75.0, 130.0 + 10.0 * static_cast<double>(t % 8)};
    bag.topics.push_back(std::move(topic));
  }
  return bag;
}

void BM_Topics(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  const TopicBag bag = make_bag(16);
  const core::Optimizer optimizer(bag.scenario.catalog, bag.scenario.backbone,
                                  bag.scenario.population.latencies);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::optimize_topics(optimizer, bag.topics, {}, threads));
  }
  state.counters["topics"] = 16;
  state.counters["threads"] = threads;
  state.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_Topics)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
