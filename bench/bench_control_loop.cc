// Control-plane round-latency benchmark: incremental (dirty-topic)
// reconfiguration vs. the full-scan reference, as topic count and per-round
// churn vary.
//
// For each (topics, churn%) cell two controllers are fed the identical
// delta-report stream; one runs Controller::reconfigure() (incremental), the
// other reconfigure_full(). Prints a table and writes
// BENCH_control_loop.json in the shared {"bench", "rows"} shape (rows of
// {topics, churn_pct, rounds, incremental_ms, full_ms, speedup, identical}).
// Exits non-zero when the deployed matrices ever diverge or the speedup at
// 1000 topics / 5% churn drops below 5x.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_json.h"
#include "broker/controller.h"
#include "common/rng.h"
#include "geo/king_synth.h"
#include "geo/synthetic.h"

using namespace multipub;

namespace {

constexpr std::size_t kRegions = 8;
constexpr std::size_t kClientsPerRegion = 5;
constexpr int kRounds = 6;

/// Per-topic ground truth: which clients publish/subscribe, and at which
/// home region each is reported.
struct TopicTruth {
  struct Member {
    ClientId client;
    RegionId home;
  };
  std::vector<Member> publishers;
  std::vector<Member> subscribers;
  std::uint64_t msg_count = 10;  // per publisher; churn bumps this
};

struct Cell {
  int topics = 0;
  int churn_pct = 0;
  double incremental_ms = 0.0;  // mean per round
  double full_ms = 0.0;
  bool identical = true;
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Builds the per-region reports covering exactly `topics` and feeds the
/// identical stream to both controllers.
void ingest(const std::vector<TopicTruth>& truth,
            const std::vector<int>& topics, bool full_snapshot,
            broker::Controller& a, broker::Controller& b) {
  std::map<RegionId, std::vector<broker::TopicReport>> per_region;
  for (int t : topics) {
    const TopicTruth& tt = truth[static_cast<std::size_t>(t)];
    const TopicId id{static_cast<TopicId::underlying_type>(t)};
    std::map<RegionId, broker::TopicReport> views;
    for (const auto& pub : tt.publishers) {
      auto& view = views[pub.home];
      view.topic = id;
      view.publishers.push_back({pub.client, tt.msg_count,
                                 tt.msg_count * 1024});
    }
    for (const auto& sub : tt.subscribers) {
      auto& view = views[sub.home];
      view.topic = id;
      view.subscribers.push_back(sub.client);
    }
    for (auto& [region, view] : views) {
      per_region[region].push_back(std::move(view));
    }
  }
  for (auto& [region, reports] : per_region) {
    a.ingest(region, reports, full_snapshot);
    b.ingest(region, reports, full_snapshot);
  }
}

Cell run_cell(int n_topics, int churn_pct) {
  Rng rng(9000 + static_cast<std::uint64_t>(n_topics) * 100 +
          static_cast<std::uint64_t>(churn_pct));
  const auto world = geo::synthesize_world(kRegions, {}, rng);
  const auto population = geo::synthesize_population(
      world.catalog, world.backbone, kClientsPerRegion, {}, rng);

  auto random_client = [&] {
    return ClientId{static_cast<ClientId::underlying_type>(rng.uniform_int(
        0, static_cast<std::int64_t>(population.size()) - 1))};
  };

  std::vector<TopicTruth> truth(static_cast<std::size_t>(n_topics));
  for (auto& tt : truth) {
    for (int p = 0; p < 2; ++p) {
      const ClientId c = random_client();
      tt.publishers.push_back(
          {c, population.home_region[static_cast<std::size_t>(c.value())]});
    }
    for (int s = 0; s < 3; ++s) {
      const ClientId c = random_client();
      tt.subscribers.push_back(
          {c, population.home_region[static_cast<std::size_t>(c.value())]});
    }
    tt.msg_count = static_cast<std::uint64_t>(rng.uniform_int(5, 50));
  }

  broker::Controller incremental(world.catalog, world.backbone,
                                 population.latencies);
  broker::Controller full(world.catalog, world.backbone, population.latencies);
  incremental.set_solver(broker::Controller::Solver::kHeuristic);
  full.set_solver(broker::Controller::Solver::kHeuristic);
  for (int t = 0; t < n_topics; ++t) {
    const TopicId id{static_cast<TopicId::underlying_type>(t)};
    const core::DeliveryConstraint constraint{90.0,
                                              rng.uniform(150.0, 400.0)};
    incremental.set_constraint(id, constraint);
    full.set_constraint(id, constraint);
  }

  // Warm-up: full snapshot + one round on both paths (everything is new).
  std::vector<int> all(static_cast<std::size_t>(n_topics));
  for (int t = 0; t < n_topics; ++t) all[static_cast<std::size_t>(t)] = t;
  ingest(truth, all, /*full_snapshot=*/true, incremental, full);
  (void)incremental.reconfigure();
  (void)full.reconfigure_full();

  Cell cell;
  cell.topics = n_topics;
  cell.churn_pct = churn_pct;
  const int churned =
      std::max(1, n_topics * churn_pct / 100);
  for (int round = 0; round < kRounds; ++round) {
    std::vector<int> dirty;
    for (int i = 0; i < churned; ++i) {
      const int t = static_cast<int>(rng.uniform_int(0, n_topics - 1));
      truth[static_cast<std::size_t>(t)].msg_count += 7;  // beyond any gate
      dirty.push_back(t);
    }
    ingest(truth, dirty, /*full_snapshot=*/false, incremental, full);

    auto t0 = std::chrono::steady_clock::now();
    (void)incremental.reconfigure();
    cell.incremental_ms += ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    (void)full.reconfigure_full();
    cell.full_ms += ms_since(t0);

    if (incremental.render_assignment_matrix() !=
        full.render_assignment_matrix()) {
      cell.identical = false;
    }
  }
  cell.incremental_ms /= kRounds;
  cell.full_ms /= kRounds;
  return cell;
}

}  // namespace

int main() {
  std::vector<Cell> cells;
  for (int topics : {100, 300, 1000}) {
    for (int churn : {1, 5, 25}) {
      cells.push_back(run_cell(topics, churn));
    }
  }

  std::printf("%-8s %8s %16s %12s %10s %10s\n", "topics", "churn%",
              "incremental_ms", "full_ms", "speedup", "identical");
  for (const auto& cell : cells) {
    std::printf("%-8d %8d %16.3f %12.3f %9.1fx %10s\n", cell.topics,
                cell.churn_pct, cell.incremental_ms, cell.full_ms,
                cell.full_ms / cell.incremental_ms,
                cell.identical ? "yes" : "NO");
  }

  bench::BenchReport report("control_loop");
  for (const auto& cell : cells) {
    report.row()
        .integer("topics", cell.topics)
        .integer("churn_pct", cell.churn_pct)
        .integer("rounds", kRounds)
        .num("incremental_ms", cell.incremental_ms)
        .num("full_ms", cell.full_ms)
        .num("speedup", cell.full_ms / cell.incremental_ms)
        .boolean("identical", cell.identical);
  }
  if (!report.write()) return 1;

  // CI gates: bit-identical everywhere, and the headline speedup holds.
  for (const auto& cell : cells) {
    if (!cell.identical) {
      std::fprintf(stderr, "DIVERGENCE at %d topics / %d%% churn\n",
                   cell.topics, cell.churn_pct);
      return 1;
    }
    if (cell.topics == 1000 && cell.churn_pct == 5 &&
        cell.full_ms < 5.0 * cell.incremental_ms) {
      std::fprintf(stderr,
                   "speedup below 5x at 1000 topics / 5%% churn "
                   "(incremental %.3f ms, full %.3f ms)\n",
                   cell.incremental_ms, cell.full_ms);
      return 1;
    }
  }
  return 0;
}
