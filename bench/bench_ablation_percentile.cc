// Ablation: weighted-percentile evaluator vs. the paper's full message list.
//
// Both compute the identical order statistic (property-tested); this bench
// quantifies the speedup of aggregating per (publisher, subscriber) pair —
// the paper's runtime is linear in the message count, the weighted path is
// independent of it.
#include <benchmark/benchmark.h>

#include "sim/scenario.h"

using namespace multipub;

namespace {

sim::Scenario make(double interval_seconds) {
  Rng rng(2017);
  std::vector<sim::PlacementSpec> placements;
  for (int r = 0; r < 10; ++r) placements.push_back({RegionId{r}, 5, 5});
  sim::WorkloadSpec workload;
  workload.ratio = 75.0;
  workload.max_t = 150.0;
  workload.interval_seconds = interval_seconds;  // scales the message count
  return sim::make_scenario(placements, workload, rng);
}

void BM_ExactList(benchmark::State& state) {
  const sim::Scenario scenario = make(static_cast<double>(state.range(0)));
  const auto optimizer = scenario.make_optimizer();
  core::OptimizerOptions options;
  options.strategy = core::EvaluationStrategy::kExactList;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.optimize(scenario.topic, options));
  }
  state.counters["deliveries"] =
      static_cast<double>(scenario.topic.total_deliveries());
}
BENCHMARK(BM_ExactList)->Arg(15)->Arg(60)->Arg(240)
    ->Unit(benchmark::kMillisecond);

void BM_Weighted(benchmark::State& state) {
  const sim::Scenario scenario = make(static_cast<double>(state.range(0)));
  const auto optimizer = scenario.make_optimizer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.optimize(scenario.topic));
  }
  state.counters["deliveries"] =
      static_cast<double>(scenario.topic.total_deliveries());
}
BENCHMARK(BM_Weighted)->Arg(15)->Arg(60)->Arg(240)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
