// Ablation: proportional bundling (paper §V-F).
//
// Groups clients whose latency rows are within epsilon and optimizes the
// reduced problem. Reports the problem-size reduction, the solve-time
// change, and the answer drift versus the exact optimum, for increasing
// epsilon.
#include <chrono>
#include <cstdio>

#include "bench_json.h"
#include "core/bundling.h"
#include "sim/scenario.h"

using namespace multipub;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  std::printf("=== Ablation: proportional bundling ===\n");
  Rng rng(2017);
  const sim::Scenario scenario = sim::make_experiment1_scenario(rng);
  auto topic = scenario.topic;
  topic.constraint.max = 150.0;

  const auto optimizer = scenario.make_optimizer();
  const double t0 = now_ms();
  const auto exact = optimizer.optimize(topic);
  const double exact_ms = now_ms() - t0;
  std::printf("exact: %zu clients, config %s, p75 %.1f ms, $%.4f, %.2f ms "
              "solve\n\n",
              topic.publishers.size() + topic.subscribers.size(),
              exact.config.to_string().c_str(), exact.percentile, exact.cost,
              exact_ms);

  bench::BenchReport report("ablation_bundling");
  std::printf("%8s %8s %8s %12s %-22s %10s %10s %8s\n", "eps(ms)", "v-pubs",
              "v-subs", "solve(ms)", "config", "p75(ms)", "drift(ms)",
              "same");
  for (double eps : {1.0, 2.0, 5.0, 10.0, 20.0, 40.0}) {
    const auto bundled =
        core::bundle_clients(topic, scenario.population.latencies,
                             {.epsilon_ms = eps});
    const core::Optimizer reduced(scenario.catalog, scenario.backbone,
                                  bundled.latencies);
    const double t1 = now_ms();
    const auto approx = reduced.optimize(bundled.topic);
    const double solve_ms = now_ms() - t1;

    // Evaluate the bundled answer on the *original* problem to get the true
    // percentile drift.
    const auto true_eval = optimizer.evaluate(topic, approx.config);
    std::printf("%8.1f %8zu %8zu %12.2f %-22s %10.1f %10.2f %8s\n", eps,
                bundled.topic.publishers.size(),
                bundled.topic.subscribers.size(), solve_ms,
                approx.config.to_string().c_str(), true_eval.percentile,
                true_eval.percentile - exact.percentile,
                approx.config == exact.config ? "yes" : "no");
    report.row()
        .num("epsilon_ms", eps)
        .uinteger("virtual_pubs", bundled.topic.publishers.size())
        .uinteger("virtual_subs", bundled.topic.subscribers.size())
        .num("solve_ms", solve_ms)
        .num("exact_solve_ms", exact_ms)
        .str("config", approx.config.to_string())
        .num("p75_ms", true_eval.percentile)
        .num("drift_ms", true_eval.percentile - exact.percentile)
        .boolean("same_config", approx.config == exact.config);
  }
  std::printf("\nexpectation: drift stays within ~epsilon; aggressive epsilon\n"
              "trades optimality for a much smaller problem.\n");
  if (!report.write()) return 1;
  return 0;
}
