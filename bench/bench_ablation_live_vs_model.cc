// Ablation: live middleware vs. analytic model.
//
// Runs the full event-driven stack for one interval under several
// configurations and prints measured-vs-predicted delivery percentile and
// cost side by side (the analytic engine is what generates the figures;
// this bench shows the live system agrees), plus the event throughput of
// the simulator substrate.
#include <chrono>
#include <cstdio>

#include "bench_json.h"
#include "core/cost_model.h"
#include "core/delivery_model.h"
#include "sim/live_runner.h"

using namespace multipub;

int main() {
  std::printf("=== Ablation: live middleware vs. analytic model ===\n");
  Rng rng(2017);
  sim::WorkloadSpec workload;
  workload.interval_seconds = 30.0;
  workload.ratio = 75.0;
  const sim::Scenario scenario = sim::make_scenario(
      {{RegionId{0}, 5, 10}, {RegionId{4}, 5, 10}, {RegionId{5}, 5, 10}},
      workload, rng);

  const core::DeliveryModel delivery(scenario.backbone,
                                     scenario.population.latencies);
  const core::CostModel cost(scenario.catalog,
                             scenario.population.latencies);

  struct Case {
    const char* label;
    std::uint64_t mask;
    core::DeliveryMode mode;
  };
  const Case cases[] = {
      {"one region {R1}", 0x001, core::DeliveryMode::kDirect},
      {"{R1,R5,R6} direct", 0x031, core::DeliveryMode::kDirect},
      {"{R1,R5,R6} routed", 0x031, core::DeliveryMode::kRouted},
      {"all regions routed", 0x3FF, core::DeliveryMode::kRouted},
  };

  bench::BenchReport report("ablation_live_vs_model");
  std::printf("%-20s %12s %12s %14s %14s %10s\n", "config", "live p75",
              "model p75", "live $", "model $", "events/s");
  for (const Case& c : cases) {
    const core::TopicConfig config{geo::RegionSet(c.mask), c.mode};
    sim::LiveSystem live(scenario);
    live.deploy(config);

    const auto t0 = std::chrono::steady_clock::now();
    const auto run = live.run_interval(30.0, 1024, 1.0, rng);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_s = std::chrono::duration<double>(t1 - t0).count();

    const auto observed = live.observed_topic_state();
    const Millis predicted = delivery.delivery_percentile(observed, config,
                                                          workload.ratio);
    const Dollars predicted_cost = cost.cost(observed, config);
    std::printf("%-20s %12.2f %12.2f %14.6f %14.6f %10.0f\n", c.label,
                run.percentile, predicted, run.interval_cost, predicted_cost,
                static_cast<double>(live.simulator().processed()) / wall_s);
    report.row()
        .str("config", c.label)
        .num("live_p75_ms", run.percentile)
        .num("model_p75_ms", predicted)
        .num("live_cost", run.interval_cost)
        .num("model_cost", predicted_cost)
        .num("events_per_sec",
             static_cast<double>(live.simulator().processed()) / wall_s);
  }
  std::printf("\nexpectation: live == model to floating-point precision in\n"
              "both columns pairs (the property suite asserts it).\n");
  if (!report.write()) return 1;
  return 0;
}
