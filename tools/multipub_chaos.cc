// multipub_chaos — deterministic chaos campaigns over the live middleware.
//
// Builds a scenario (a failure-test-shaped default, or a scenario file,
// which may carry its own 'fault' stanzas), derives a randomized fault
// schedule from --seed, drives the live system through control rounds while
// injecting the faults, and checks the invariant oracles after every round.
// Two runs with the same flags produce byte-identical reports; on failure
// the report ends with a minimal reproducing schedule pasteable into a
// regression test (see tests/testutil.h chaos_schedule).
//
// Examples:
//   multipub-chaos --seed 7
//   multipub-chaos --seed 7 --rounds 16 --faults 6 --print-schedule
//   multipub-chaos --schedule plan.txt --seed 7
//   multipub-chaos --seed 7 --break-outage-exclusion   # must FAIL
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "net/shard_placement.h"
#include "sim/chaos.h"
#include "sim/scenario.h"
#include "sim/scenario_file.h"
#include "flags.h"

using namespace multipub;

namespace {

void usage() {
  std::printf(R"(multipub_chaos — fault-injection campaigns with invariant oracles

Campaign:
  --seed S                 master seed; everything (fault placement, drop
                           coins, traffic phases) derives from it (default 7)
  --rounds N               control rounds (default 12)
  --faults N               events in the generated schedule (default 4)
  --interval SECONDS       traffic interval per round (default 10)
  --rate HZ                publications per publisher per second (default 1)
  --k N                    clean rounds before the convergence and
                           conformance oracles arm (default 2)
  --no-shrink              skip schedule shrinking on failure

Schedule:
  --schedule FILE          run an explicit fault schedule ('fault ...' lines,
                           see src/sim/fault_schedule.h) instead of a
                           generated one
  --print-schedule         print the schedule and exit without running

Workload:
  --scenario FILE          scenario file over EC2-2016 (its 'fault' stanzas
                           take precedence over a generated schedule);
                           default: 2 pubs + 4 subs near us-east-1 and near
                           ap-northeast-1, ratio 95, max_T 150 ms

Paths under test:
  --incremental on|off     control-plane pipeline (default on)
  --fast-path on|off       data-plane scheduling path (default on)
  --shards K               data-plane worker threads (default 1; K > 1
                           requires --fast-path on and K <= regions; the
                           report must be byte-identical for every K)
  --shard-placement P      region-to-shard placement for K > 1:
                           round-robin | topology (default topology)
  --window-policy P        sharded window sizing: fixed | adaptive
                           (default adaptive)
  --reliable on|off        reliability layer (DESIGN.md §15): sequenced
                           replay, reconnect-and-replay, broker state
                           replication — arms the zero-message-loss,
                           no-duplicate and bounded-replication-lag oracles
                           (default off; off keeps the report byte-identical
                           to the pre-reliable harness)

Negative-path demos (the harness must catch them; exit code flips):
  --break-outage-exclusion controller keeps routing through dead regions
  --freeze-control-plane   no control rounds: deployment never converges
  --break-replay           brokers refuse replay requests (needs --reliable
                           on; zero-message-loss must catch it)
  --break-dedup            clients record duplicates instead of absorbing
                           them (needs --reliable on; no-duplicate catches)
  --break-state-sync       brokers stop feeding their standby (needs
                           --reliable on; bounded-replication-lag catches)

Exit code: 0 when all invariants held, 1 on any oracle violation.
)");
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags(argc, argv);
  if (flags.has("help")) {
    usage();
    return 0;
  }
  // A mistyped flag (--shard, --fastpath, ...) must fail loudly, not run a
  // different campaign than the one asked for.
  flags.allow_only({
      "help", "seed", "rounds", "faults", "interval", "rate", "k",
      "no-shrink", "schedule", "print-schedule", "scenario", "incremental",
      "fast-path", "shards", "shard-placement", "window-policy", "reliable",
      "break-outage-exclusion", "freeze-control-plane", "break-replay",
      "break-dedup", "break-state-sync",
  });

  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 7));

  sim::ChaosOptions options;
  options.rounds = static_cast<int>(flags.get_int("rounds", 12));
  options.fault_events = static_cast<int>(flags.get_int("faults", 4));
  options.interval_seconds = flags.get_double("interval", 10.0);
  options.rate_hz = flags.get_double("rate", 1.0);
  options.convergence_rounds = static_cast<int>(flags.get_int("k", 2));
  options.shrink_on_failure = !flags.get_bool("no-shrink", false);
  options.break_outage_exclusion =
      flags.get_bool("break-outage-exclusion", false);
  options.freeze_control_plane = flags.get_bool("freeze-control-plane", false);
  const std::string incremental = flags.get("incremental", "on");
  const std::string fast_path = flags.get("fast-path", "on");
  if ((incremental != "on" && incremental != "off") ||
      (fast_path != "on" && fast_path != "off")) {
    std::fprintf(stderr, "--incremental / --fast-path must be 'on' or 'off'\n");
    return 2;
  }
  options.incremental = incremental == "on";
  options.fast_path = fast_path == "on";
  const std::string reliable = flags.get("reliable", "off");
  if (reliable != "on" && reliable != "off") {
    std::fprintf(stderr, "--reliable must be 'on' or 'off'\n");
    return 2;
  }
  options.reliable = reliable == "on";
  options.break_replay = flags.get_bool("break-replay", false);
  options.break_dedup = flags.get_bool("break-dedup", false);
  options.break_state_sync = flags.get_bool("break-state-sync", false);
  if ((options.break_replay || options.break_dedup ||
       options.break_state_sync) &&
      !options.reliable) {
    std::fprintf(stderr,
                 "--break-replay / --break-dedup / --break-state-sync need "
                 "--reliable on: they sabotage the reliability layer\n");
    return 2;
  }
  const long shards = flags.get_int("shards", 1);
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }
  if (shards > 1 && !options.fast_path) {
    std::fprintf(stderr,
                 "--shards %ld requires --fast-path on: the seed scheduling "
                 "path only exists single-threaded\n",
                 shards);
    return 2;
  }
  options.shards = static_cast<std::uint32_t>(shards);
  const std::string placement_name = flags.get("shard-placement", "topology");
  const auto placement = net::parse_shard_placement(placement_name);
  if (!placement) {
    std::fprintf(stderr,
                 "--shard-placement must be 'round-robin' or 'topology'\n");
    return 2;
  }
  options.placement = *placement;
  const std::string policy_name = flags.get("window-policy", "adaptive");
  if (policy_name != "fixed" && policy_name != "adaptive") {
    std::fprintf(stderr, "--window-policy must be 'fixed' or 'adaptive'\n");
    return 2;
  }
  options.window_policy = policy_name == "fixed" ? net::WindowPolicy::kFixed
                                                 : net::WindowPolicy::kAdaptive;
  if (options.rounds < 1) {
    std::fprintf(stderr, "--rounds must be >= 1\n");
    return 2;
  }

  if (!flags.errors().empty()) {
    for (const auto& error : flags.errors()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
    }
    return 2;
  }

  // --- Scenario ---
  const geo::RegionCatalog catalog = geo::RegionCatalog::ec2_2016();
  const geo::InterRegionLatency backbone = geo::InterRegionLatency::ec2_2016();
  sim::Scenario scenario;
  if (flags.has("scenario")) {
    const std::string path = flags.get("scenario", "");
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open scenario file '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream content;
    content << file.rdbuf();
    std::string parse_error;
    const auto spec = sim::parse_scenario_spec(content.str(), &parse_error);
    if (!spec) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), parse_error.c_str());
      return 2;
    }
    const auto built =
        sim::build_scenario(*spec, catalog, backbone, &parse_error);
    if (!built) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), parse_error.c_str());
      return 2;
    }
    scenario = *built;
  } else {
    // The failure-test workload: clients split across two continents with a
    // bound tight enough that the optimizer must serve both sides — outages
    // then actually force reconfigurations.
    sim::WorkloadSpec workload;
    workload.interval_seconds = options.interval_seconds;
    workload.ratio = 95.0;
    workload.max_t = 150.0;
    Rng scenario_rng(seed);
    scenario = sim::make_scenario({{RegionId{0}, 2, 4}, {RegionId{5}, 2, 4}},
                                  workload, scenario_rng);
  }

  // Empty shards would still pay every barrier round; the placement cannot
  // split R regions over more than R workers.
  if (options.shards > scenario.catalog.size()) {
    std::fprintf(stderr,
                 "--shards %u exceeds the world's %zu regions; shards must "
                 "be <= regions\n",
                 options.shards, scenario.catalog.size());
    return 2;
  }

  // --- Schedule ---
  sim::FaultSchedule schedule;
  if (flags.has("schedule")) {
    const std::string path = flags.get("schedule", "");
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open schedule file '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream content;
    content << file.rdbuf();
    std::string parse_error;
    const auto parsed =
        sim::parse_fault_schedule(content.str(), &parse_error);
    if (!parsed) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), parse_error.c_str());
      return 2;
    }
    schedule = *parsed;
  } else if (!scenario.faults.empty()) {
    schedule = scenario.faults;
  } else {
    Rng schedule_rng(seed);
    schedule = sim::generate_schedule(scenario, options, schedule_rng);
  }

  if (flags.get_bool("print-schedule", false)) {
    std::fputs(sim::format_fault_schedule(schedule).c_str(), stdout);
    return 0;
  }

  sim::ChaosRunner runner(scenario, options);
  const sim::ChaosReport report = runner.run_schedule(schedule, seed);
  std::fputs(report.render().c_str(), stdout);
  return report.passed() ? 0 : 1;
}
