// multipub-node — one live MultiPub process (DESIGN.md §13).
//
// Runs either the controller or one region's broker as a real OS process
// over TCP sockets, driven by the same scenario files the simulator reads.
// A deployment is one controller plus one broker per region the scenario
// places clients in:
//
//   multipub-node --role controller --scenario exp.scn --listen 0
//                 --port-file ctrl.port --metrics-out ctrl.metrics
//   multipub-node --role broker --region ap-northeast-1 --scenario exp.scn
//                 --controller-port $(cat ctrl.port) --metrics-out b0.metrics
//
// Every process builds the same restricted world from the scenario file
// (node/world.h), so they agree on region ids, the synthesized population
// and the optimizer's choices; the controller sequences the run through the
// lock-step phase machine of node/protocol.h.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "node/broker_node.h"
#include "node/controller_node.h"
#include "node/world.h"
#include "sim/scenario_file.h"
#include "flags.h"

using namespace multipub;

namespace {

void usage() {
  std::printf(R"(multipub-node — one live MultiPub process

  --role controller|broker   which node this process runs (required)
  --scenario FILE            scenario file (required; same file everywhere)
  --seed S                   override the scenario's population seed
                             (must match across all processes)
  --listen PORT              listening port (default 0 = ephemeral)
  --deadline-ms MS           give up after this much wall time (default 120000)
  --metrics-out FILE         write final counters here (includes the
                             net.transport.* hot-path telemetry)
  --transport-batching on|off
                             coalesced vectored socket flushes and
                             encode-once fan-out (default on); off keeps the
                             per-frame-flush reference path — billing and
                             delivery are identical either way

controller only:
  --port-file FILE           write the bound port here once listening

broker only:
  --region NAME              the region this broker serves (required)
  --controller-port PORT     the controller's port (required)
  --time-scale X             compress the traffic interval X-fold (default 1)
  --reliable on|off          arm the in-process reliability layer: sequenced
                             delivery stamps, bounded replay ring, client
                             gap detection (DESIGN.md §15; default off)
)");
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags(argc, argv);
  if (flags.has("help")) {
    usage();
    return 0;
  }
  flags.allow_only({
      "help", "role", "scenario", "seed", "listen", "deadline-ms",
      "metrics-out", "port-file", "region", "controller-port", "time-scale",
      "reliable", "transport-batching",
  });

  const std::string role = flags.get("role", "");
  const std::string scenario_path = flags.get("scenario", "");
  const long listen = flags.get_int("listen", 0);
  const double deadline_ms = flags.get_double("deadline-ms", 120000.0);
  const double time_scale = flags.get_double("time-scale", 1.0);
  const long controller_port = flags.get_int("controller-port", 0);

  if (!flags.errors().empty()) {
    for (const auto& error : flags.errors()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
    }
    return 2;
  }
  if (role != "controller" && role != "broker") {
    std::fprintf(stderr, "--role must be 'controller' or 'broker'\n");
    return 2;
  }
  if (scenario_path.empty()) {
    std::fprintf(stderr, "--scenario is required\n");
    return 2;
  }
  if (time_scale <= 0.0) {
    std::fprintf(stderr, "--time-scale must be > 0\n");
    return 2;
  }
  const std::string reliable = flags.get("reliable", "off");
  if (reliable != "on" && reliable != "off") {
    std::fprintf(stderr, "--reliable must be 'on' or 'off'\n");
    return 2;
  }
  const std::string batching = flags.get("transport-batching", "on");
  if (batching != "on" && batching != "off") {
    std::fprintf(stderr, "--transport-batching must be 'on' or 'off'\n");
    return 2;
  }

  std::ifstream file(scenario_path);
  if (!file) {
    std::fprintf(stderr, "cannot open scenario file '%s'\n",
                 scenario_path.c_str());
    return 1;
  }
  std::ostringstream content;
  content << file.rdbuf();
  std::string error;
  auto spec = sim::parse_scenario_spec(content.str(), &error);
  if (!spec) {
    std::fprintf(stderr, "%s: %s\n", scenario_path.c_str(), error.c_str());
    return 1;
  }
  if (flags.has("seed")) {
    spec->seed = static_cast<std::uint64_t>(flags.get_int("seed", 2017));
  }
  const auto scenario = node::build_live_world(*spec, &error);
  if (!scenario) {
    std::fprintf(stderr, "%s: %s\n", scenario_path.c_str(), error.c_str());
    return 1;
  }

  if (role == "controller") {
    node::ControllerNodeOptions options;
    options.listen_port = static_cast<std::uint16_t>(listen);
    options.metrics_path = flags.get("metrics-out", "");
    options.seed = spec->seed;
    options.transport_batching = batching == "on";
    node::ControllerNode controller(*scenario, options);
    if (!controller.start()) {
      std::fprintf(stderr, "cannot listen on port %ld\n", listen);
      return 1;
    }
    if (const std::string port_file = flags.get("port-file", "");
        !port_file.empty()) {
      std::ofstream out(port_file);
      out << controller.port() << "\n";
      if (!out) {
        std::fprintf(stderr, "cannot write '%s'\n", port_file.c_str());
        return 1;
      }
    }
    std::fprintf(stderr, "controller listening on %u (%zu brokers)\n",
                 controller.port(), scenario->catalog.size());
    if (!controller.run(deadline_ms)) {
      std::fprintf(stderr, "controller timed out after %.0f ms\n",
                   deadline_ms);
      return 1;
    }
    return 0;
  }

  const std::string region_name = flags.get("region", "");
  const RegionId region = scenario->catalog.find(region_name);
  if (!region.valid()) {
    std::fprintf(stderr, "--region '%s' is not one of the scenario's "
                 "placement regions\n", region_name.c_str());
    return 2;
  }
  if (controller_port <= 0) {
    std::fprintf(stderr, "--controller-port is required for brokers\n");
    return 2;
  }
  node::BrokerNodeOptions options;
  options.listen_port = static_cast<std::uint16_t>(listen);
  options.controller_port = static_cast<std::uint16_t>(controller_port);
  options.metrics_path = flags.get("metrics-out", "");
  options.time_scale = time_scale;
  options.reliable = reliable == "on";
  options.transport_batching = batching == "on";
  node::BrokerNode broker(*scenario, region, options);
  if (!broker.start()) {
    std::fprintf(stderr, "cannot listen on port %ld\n", listen);
    return 1;
  }
  std::fprintf(stderr, "broker %s (region %d) listening on %u\n",
               region_name.c_str(), region.value(), broker.port());
  if (!broker.run(deadline_ms)) {
    std::fprintf(stderr, "broker %s timed out after %.0f ms\n",
                 region_name.c_str(), deadline_ms);
    return 1;
  }
  return 0;
}
