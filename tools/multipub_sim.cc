// multipub_sim — the command-line simulation package.
//
// The paper's authors "implemented a full simulation package" to evaluate
// MultiPub; this is that package for this reproduction. It builds a
// workload over the EC2-2016 region set (or a synthetic world), runs the
// optimizer (exact or heuristic), optionally sweeps max_T, compares against
// the static baselines, and can validate the analytic answer against the
// live event-driven middleware.
//
// Examples:
//   multipub-sim --pubs-per-region 10 --subs-per-region 10
//                --ratio 75 --sweep 100:200:4
//   multipub-sim --placement ap-northeast-1:2:4 --ratio 95 --max-t 150 --live
//   multipub-sim --synthetic-regions 20 --heuristic --max-t 120
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/heuristic.h"
#include "geo/latency_io.h"
#include "geo/modern.h"
#include "geo/synthetic.h"
#include "sim/baselines.h"
#include "sim/live_runner.h"
#include "sim/metrics_snapshot.h"
#include "sim/scenario_file.h"
#include "sim/sweep.h"
#include "flags.h"

using namespace multipub;

namespace {

void usage() {
  std::printf(R"(multipub_sim — MultiPub workload simulator

Workload:
  --scenario FILE          load placements/workload from a scenario file
                           (see src/sim/scenario_file.h for the format)
  --pubs-per-region N      publishers homed at every region (default 0)
  --subs-per-region N      subscribers homed at every region (default 0)
  --placement R:P:S        P publishers + S subscribers near region R
                           (name like ap-northeast-1; repeatable... last wins
                           per region when combined with *-per-region)
  --rate HZ                publications per publisher per second (default 1)
  --size BYTES             payload size (default 1024)
  --interval SECONDS       observation interval (default 60)

Constraint:
  --ratio PCT              delivery guarantee ratio (default 75)
  --max-t MS               delivery bound (default: unconstrained)
  --sweep FROM:TO:STEP     sweep max_T instead of a single solve

Solver:
  --mode both|direct|routed   delivery-mode policy (default both)
  --heuristic                 greedy seed/grow/trim search instead of
                              exhaustive enumeration
  --exact-list                use the paper's per-message percentile path

World:
  --synthetic-regions N    use an N-region synthetic world instead of EC2
  --modern-aws             use the 30-region 2024 AWS catalog
  --seed S                 RNG seed (default 2017)
  --latencies FILE         load measured L / L^R matrices (see
                           src/geo/latency_io.h) instead of synthesizing;
                           client rows are used in file order
  --dump-latencies FILE    write the matrices this run used (edit & reuse
                           with --latencies to plug in real measurements)

Validation:
  --live                   run the event-driven middleware for one interval
                           and print measured vs. analytic numbers
  --incremental on|off     with --live: incremental (dirty-topic) control
                           plane vs. the full-scan reference (default on)
  --fast-path on|off       with --live: typed-event data-plane scheduling
                           vs. the seed's std::function-per-hop reference
                           (default on)
  --shards K               with --live: run the data plane on K worker
                           threads (conservative time windows, DESIGN.md
                           §11; default 1; K > 1 requires --fast-path on
                           and K <= regions)
  --threads K              alias for --shards
  --shard-placement P      with --shards: region-to-shard placement,
                           round-robin | topology (default topology,
                           DESIGN.md §14; never changes observables)
  --window-policy P        with --shards: window sizing, fixed | adaptive
                           (default adaptive; never changes observables)
  --clients N              with --live: replicate the subscriber positions
                           round-robin until N subscribers exist (clones
                           share their original's exact latency row and
                           home region; publishers are untouched)
  --cohorts on|off         with --live: fold the subscribers into weighted
                           cohorts (DESIGN.md §12; default off; requires
                           --fast-path on)
  --quantize-ms MS         with --cohorts on: quantize client latency rows
                           to MS-wide buckets before folding, so
                           near-identical clients merge too (default 0 =
                           exact rows, bit-identical to per-client)
  --reliable on|off        with --live: arm the reliability layer —
                           sequenced replay, gap-driven re-request and
                           Clone-pattern broker state replication
                           (DESIGN.md §15; default off, which keeps every
                           observable bit-identical to the pre-reliable
                           system)
  --explain K              print the K best configurations with their
                           percentile/cost (what-if table)
  --metrics                with --live: dump the metrics snapshot
)");
}

struct Placement {
  std::string region;
  long pubs = 0;
  long subs = 0;
};

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags(argc, argv);
  if (flags.has("help")) {
    usage();
    return 0;
  }
  // Anything outside this vocabulary is an error: a mistyped toggle (e.g.
  // --shard=4 or --fastpath off) must not silently fall back to defaults.
  flags.allow_only({
      "help", "scenario", "pubs-per-region", "subs-per-region", "placement",
      "rate", "size", "interval", "ratio", "max-t", "sweep", "mode",
      "heuristic", "exact-list", "synthetic-regions", "modern-aws", "seed",
      "latencies", "dump-latencies", "live", "incremental", "fast-path",
      "shards", "threads", "shard-placement", "window-policy", "clients",
      "cohorts", "quantize-ms", "reliable", "explain", "metrics",
  });

  const long seed = flags.get_int("seed", 2017);
  Rng rng(static_cast<std::uint64_t>(seed));

  // --- World ---
  geo::RegionCatalog catalog;
  geo::InterRegionLatency backbone;
  const long synthetic_regions = flags.get_int("synthetic-regions", 0);
  if (synthetic_regions > 0) {
    auto world = geo::synthesize_world(
        static_cast<std::size_t>(synthetic_regions), {}, rng);
    catalog = std::move(world.catalog);
    backbone = std::move(world.backbone);
  } else if (flags.get_bool("modern-aws", false)) {
    auto world = geo::modern_aws_world();
    catalog = std::move(world.catalog);
    backbone = std::move(world.backbone);
  } else {
    catalog = geo::RegionCatalog::ec2_2016();
    backbone = geo::InterRegionLatency::ec2_2016();
  }

  // --- Workload ---
  sim::WorkloadSpec workload;
  workload.publish_rate_hz = flags.get_double("rate", 1.0);
  workload.message_bytes =
      static_cast<Bytes>(flags.get_int("size", 1024));
  workload.interval_seconds = flags.get_double("interval", 60.0);
  workload.ratio = flags.get_double("ratio", 75.0);
  workload.max_t = flags.has("max-t")
                       ? flags.get_double("max-t", kUnreachable)
                       : kUnreachable;

  std::vector<sim::PlacementSpec> placements;
  const long per_region_pubs = flags.get_int("pubs-per-region", 0);
  const long per_region_subs = flags.get_int("subs-per-region", 0);
  if (per_region_pubs > 0 || per_region_subs > 0) {
    for (const auto& region : catalog.all()) {
      placements.push_back({region.id,
                            static_cast<std::size_t>(per_region_pubs),
                            static_cast<std::size_t>(per_region_subs)});
    }
  }
  // Note: the tiny flag parser keeps the last value per flag name, so one
  // --placement is supported here; use *-per-region for symmetric setups.
  if (flags.has("placement")) {
    const std::string spec = flags.get("placement", "");
    const auto c1 = spec.find(':');
    const auto c2 = spec.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
      std::fprintf(stderr, "bad --placement '%s' (want R:P:S)\n",
                   spec.c_str());
      return 1;
    }
    const RegionId region = catalog.find(spec.substr(0, c1));
    if (!region.valid()) {
      std::fprintf(stderr, "unknown region '%s'\n",
                   spec.substr(0, c1).c_str());
      return 1;
    }
    placements.push_back(
        {region,
         static_cast<std::size_t>(
             std::strtol(spec.substr(c1 + 1, c2 - c1 - 1).c_str(), nullptr, 10)),
         static_cast<std::size_t>(
             std::strtol(spec.substr(c2 + 1).c_str(), nullptr, 10))});
  }
  // Flag errors (unknown flags, malformed numbers) first: a typo must not
  // be masked by the missing-workload hint below.
  if (!flags.errors().empty()) {
    for (const auto& error : flags.errors()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
    }
    return 1;
  }

  if (placements.empty() && !flags.has("scenario")) {
    std::fprintf(stderr,
                 "no workload: pass --scenario, --pubs-per-region/"
                 "--subs-per-region or --placement (see --help)\n");
    return 1;
  }

  // Build the scenario against the selected world.
  sim::Scenario scenario;
  if (flags.has("scenario")) {
    const std::string path = flags.get("scenario", "");
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open scenario file '%s'\n", path.c_str());
      return 1;
    }
    std::ostringstream content;
    content << file.rdbuf();
    std::string parse_error;
    const auto spec = sim::parse_scenario_spec(content.str(), &parse_error);
    if (!spec) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), parse_error.c_str());
      return 1;
    }
    const auto built =
        sim::build_scenario(*spec, catalog, backbone, &parse_error);
    if (!built) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), parse_error.c_str());
      return 1;
    }
    scenario = *built;
    workload = spec->workload;  // the file's knobs drive live validation too
  } else {
  scenario.catalog = catalog;
  scenario.backbone = backbone;
  scenario.interval_seconds = workload.interval_seconds;
  scenario.population.latencies = geo::ClientLatencyMap(catalog.size());
  {
    std::vector<ClientId> pub_ids, sub_ids;
    for (const auto& place : placements) {
      auto local = geo::synthesize_local_population(
          catalog, backbone, place.region, place.publishers + place.subscribers,
          {}, rng);
      for (std::size_t i = 0; i < local.size(); ++i) {
        const ClientId id = scenario.population.latencies.add_client(
            local.latencies.row(ClientId{static_cast<int>(i)}));
        scenario.population.home_region.push_back(place.region);
        (i < place.publishers ? pub_ids : sub_ids).push_back(id);
      }
    }
    scenario.topic.topic = TopicId{0};
    scenario.topic.constraint = {workload.ratio, workload.max_t};
    scenario.topic.publishers = core::uniform_publishers(
        pub_ids, sim::messages_per_interval(workload), workload.message_bytes);
    scenario.topic.subscribers = core::unit_subscribers(sub_ids);
  }
  }

  // Measured matrices override the synthetic ones (client rows by file
  // order; row count must cover the scenario's clients).
  if (flags.has("latencies")) {
    const std::string path = flags.get("latencies", "");
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open latency file '%s'\n", path.c_str());
      return 1;
    }
    std::ostringstream content;
    content << file.rdbuf();
    std::string parse_error;
    const auto parsed = geo::parse_latencies(content.str(), &parse_error);
    if (!parsed) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), parse_error.c_str());
      return 1;
    }
    if (parsed->backbone.size() > 0) {
      if (parsed->backbone.size() != scenario.catalog.size()) {
        std::fprintf(stderr, "backbone is %zux%zu but the world has %zu "
                     "regions\n", parsed->backbone.size(),
                     parsed->backbone.size(), scenario.catalog.size());
        return 1;
      }
      scenario.backbone = parsed->backbone;
    }
    if (parsed->clients.n_clients() > 0) {
      if (parsed->clients.n_regions() != scenario.catalog.size() ||
          parsed->clients.n_clients() <
              scenario.population.latencies.n_clients()) {
        std::fprintf(stderr, "client matrix (%zu x %zu) does not cover the "
                     "scenario (%zu clients x %zu regions)\n",
                     parsed->clients.n_clients(), parsed->clients.n_regions(),
                     scenario.population.latencies.n_clients(),
                     scenario.catalog.size());
        return 1;
      }
      scenario.population.latencies = parsed->clients;
    }
  }
  if (flags.has("dump-latencies")) {
    const std::string path = flags.get("dump-latencies", "");
    std::ofstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
      return 1;
    }
    file << geo::serialize_latencies(scenario.backbone,
                                     scenario.population.latencies);
    std::printf("latency matrices written to %s\n", path.c_str());
  }

  const std::string mode = flags.get("mode", "both");
  core::OptimizerOptions options;
  if (mode == "direct") {
    options.mode_policy = core::ModePolicy::kDirectOnly;
  } else if (mode == "routed") {
    options.mode_policy = core::ModePolicy::kRoutedOnly;
  } else if (mode != "both") {
    std::fprintf(stderr, "unknown --mode '%s'\n", mode.c_str());
    return 1;
  }
  if (flags.get_bool("exact-list", false)) {
    options.strategy = core::EvaluationStrategy::kExactList;
  }
  const std::string incremental = flags.get("incremental", "on");
  if (incremental != "on" && incremental != "off") {
    std::fprintf(stderr, "--incremental must be 'on' or 'off'\n");
    return 2;
  }
  const std::string fast_path = flags.get("fast-path", "on");
  if (fast_path != "on" && fast_path != "off") {
    std::fprintf(stderr, "--fast-path must be 'on' or 'off'\n");
    return 2;
  }
  // --threads is an alias for --shards; when both appear they must agree —
  // picking one silently would make the other a no-op.
  const long shards_flag = flags.get_int("shards", 0);
  const long threads_flag = flags.get_int("threads", 0);
  if (shards_flag > 0 && threads_flag > 0 && shards_flag != threads_flag) {
    std::fprintf(stderr, "--shards %ld and --threads %ld disagree\n",
                 shards_flag, threads_flag);
    return 2;
  }
  const long shards = shards_flag > 0 ? shards_flag : threads_flag;
  if (shards < 0 || (flags.has("shards") && shards_flag < 1) ||
      (flags.has("threads") && threads_flag < 1)) {
    std::fprintf(stderr, "--shards/--threads must be >= 1\n");
    return 2;
  }
  if (shards > 1 && fast_path == "off") {
    std::fprintf(stderr,
                 "--shards %ld requires --fast-path on: the seed scheduling "
                 "path only exists single-threaded\n",
                 shards);
    return 2;
  }
  // Empty shards would still pay every barrier round; the placement cannot
  // split R regions over more than R workers.
  if (shards > static_cast<long>(scenario.catalog.size())) {
    std::fprintf(stderr,
                 "--shards %ld exceeds the world's %zu regions; shards must "
                 "be <= regions\n",
                 shards, scenario.catalog.size());
    return 2;
  }
  const std::string placement_name = flags.get("shard-placement", "topology");
  const auto shard_placement = net::parse_shard_placement(placement_name);
  if (!shard_placement) {
    std::fprintf(stderr,
                 "--shard-placement must be 'round-robin' or 'topology'\n");
    return 2;
  }
  const std::string policy_name = flags.get("window-policy", "adaptive");
  if (policy_name != "fixed" && policy_name != "adaptive") {
    std::fprintf(stderr, "--window-policy must be 'fixed' or 'adaptive'\n");
    return 2;
  }
  const net::WindowPolicy window_policy =
      policy_name == "fixed" ? net::WindowPolicy::kFixed
                             : net::WindowPolicy::kAdaptive;
  const std::string cohorts = flags.get("cohorts", "off");
  if (cohorts != "on" && cohorts != "off") {
    std::fprintf(stderr, "--cohorts must be 'on' or 'off'\n");
    return 2;
  }
  if (cohorts == "on" && fast_path == "off") {
    std::fprintf(stderr,
                 "--cohorts on requires --fast-path on: weighted flock "
                 "events only exist on the typed-event plane\n");
    return 2;
  }
  const double quantize_ms = flags.get_double("quantize-ms", 0.0);
  if (flags.has("quantize-ms") && quantize_ms < 0.0) {
    std::fprintf(stderr, "--quantize-ms must be >= 0\n");
    return 2;
  }
  if (flags.has("quantize-ms") && cohorts != "on") {
    std::fprintf(stderr,
                 "--quantize-ms only applies to the cohort plane: add "
                 "--cohorts on\n");
    return 2;
  }
  const long clients_target = flags.get_int("clients", 0);
  if (flags.has("clients") && clients_target < 1) {
    std::fprintf(stderr, "--clients must be >= 1\n");
    return 2;
  }
  const std::string reliable = flags.get("reliable", "off");
  if (reliable != "on" && reliable != "off") {
    std::fprintf(stderr, "--reliable must be 'on' or 'off'\n");
    return 2;
  }
  if ((shards > 1 || flags.has("fast-path") || flags.has("cohorts") ||
       flags.has("clients") || flags.has("shard-placement") ||
       flags.has("window-policy") || flags.has("reliable")) &&
      !flags.get_bool("live", false)) {
    std::fprintf(stderr,
                 "--shards/--threads/--shard-placement/--window-policy/"
                 "--fast-path/--cohorts/--clients/--reliable only apply to "
                 "the live middleware: add --live\n");
    return 2;
  }

  const char* world_label = synthetic_regions > 0 ? "synthetic"
                            : flags.get_bool("modern-aws", false)
                                ? "AWS 2024"
                                : "EC2 2016";
  std::printf("world: %zu regions (%s), %zu publishers, %zu subscribers\n",
              catalog.size(), world_label,
              scenario.topic.publishers.size(),
              scenario.topic.subscribers.size());
  std::printf("constraint: %.0f%% of deliveries within %s ms\n\n",
              workload.ratio,
              workload.max_t == kUnreachable
                  ? "inf"
                  : std::to_string(static_cast<long>(workload.max_t)).c_str());

  // --- Sweep mode ---
  if (const auto range = flags.get_range("sweep")) {
    const auto points = sim::sweep_max_t(
        scenario, {(*range)[0], (*range)[1], (*range)[2]},
        options.mode_policy);
    std::printf("%8s %10s %12s %8s %-7s %s\n", "max_T", "p(ms)", "$/day",
                "regions", "mode", "met");
    for (const auto& p : points) {
      std::printf("%8.0f %10.1f %12.2f %8d %-7s %s\n", p.max_t,
                  p.achieved_percentile, p.cost_per_day, p.n_regions,
                  core::to_string(p.mode), p.constraint_met ? "yes" : "no");
    }
    return 0;
  }

  // --- Single solve ---
  const auto optimizer = scenario.make_optimizer();
  core::TopicConfig chosen;
  if (flags.get_bool("heuristic", false)) {
    const core::HeuristicOptimizer heuristic(
        scenario.catalog, scenario.backbone, scenario.population.latencies);
    core::HeuristicOptions h_options;
    h_options.mode_policy = options.mode_policy;
    const auto result = heuristic.optimize(scenario.topic, h_options);
    chosen = result.config;
    std::printf("heuristic : %s  p=%.1fms  $%.2f/day  (%zu evals, %s)\n",
                result.config.to_string().c_str(), result.percentile,
                core::scale_to_day(result.cost, scenario.interval_seconds),
                result.configs_evaluated,
                result.constraint_met ? "met" : "NOT met");
  } else {
    const auto result = optimizer.optimize(scenario.topic, options);
    chosen = result.config;
    std::printf("multipub  : %s  p=%.1fms  $%.2f/day  (%zu configs, %s)\n",
                result.config.to_string().c_str(), result.percentile,
                core::scale_to_day(result.cost, scenario.interval_seconds),
                result.configs_evaluated,
                result.constraint_met ? "met" : "NOT met");
  }

  const auto one = sim::one_region_baseline(optimizer, scenario.topic);
  const auto all = sim::all_regions_baseline(
      optimizer, scenario.topic, core::DeliveryMode::kRouted, catalog.size());
  std::printf("one-region: %s  p=%.1fms  $%.2f/day\n",
              one.config.to_string().c_str(), one.percentile,
              core::scale_to_day(one.cost, scenario.interval_seconds));
  std::printf("all-region: %s  p=%.1fms  $%.2f/day\n",
              all.config.to_string().c_str(), all.percentile,
              core::scale_to_day(all.cost, scenario.interval_seconds));

  // --- What-if table ---
  if (const long k = flags.get_int("explain", 0); k > 0) {
    auto evals = optimizer.evaluate_all(scenario.topic, options);
    std::sort(evals.begin(), evals.end(),
              [](const core::ConfigEvaluation& a,
                 const core::ConfigEvaluation& b) {
                return core::Optimizer::better(a, b);
              });
    std::printf("\ntop %ld of %zu configurations:\n", k, evals.size());
    std::printf("%4s %-28s %10s %12s %s\n", "#", "configuration", "p(ms)",
                "$/day", "feasible");
    for (long i = 0; i < k && i < static_cast<long>(evals.size()); ++i) {
      const auto& e = evals[static_cast<std::size_t>(i)];
      std::printf("%4ld %-28s %10.1f %12.2f %s\n", i + 1,
                  e.config.to_string().c_str(), e.percentile,
                  core::scale_to_day(e.cost, scenario.interval_seconds),
                  e.feasible ? "yes" : "no");
    }
  }

  // --- Live validation ---
  if (flags.get_bool("live", false)) {
    // --clients N: replicate the subscriber positions after the solve (the
    // clones share exact latency rows, so the analytic percentile is
    // unchanged and the optimizer need not rank a million rows). This is
    // the workload shape the cohort plane folds into weight-N cohorts.
    if (clients_target > static_cast<long>(scenario.topic.subscribers.size())) {
      if (scenario.topic.subscribers.empty()) {
        std::fprintf(stderr, "--clients needs at least one subscriber\n");
        return 2;
      }
      const auto base = scenario.topic.subscribers;
      for (std::size_t i = scenario.topic.subscribers.size();
           i < static_cast<std::size_t>(clients_target); ++i) {
        const auto& original = base[i % base.size()];
        // Copy the row first: add_client may reallocate the matrix the
        // span points into.
        const auto span = scenario.population.latencies.row(original.client);
        const std::vector<Millis> row(span.begin(), span.end());
        const ClientId id = scenario.population.latencies.add_client(row);
        scenario.population.home_region.push_back(
            scenario.population.home_region[original.client.index()]);
        auto clone = original;
        clone.client = id;
        scenario.topic.subscribers.push_back(clone);
      }
    }
    sim::LiveSystem live(scenario);
    live.set_incremental(incremental == "on");
    live.set_data_plane_fast_path(fast_path == "on");
    if (cohorts == "on") live.set_cohorts(true, quantize_ms);
    live.set_shard_placement(*shard_placement);
    live.set_window_policy(window_policy);
    if (shards > 0) live.set_shards(static_cast<std::uint32_t>(shards));
    if (reliable == "on") live.set_reliable(true);
    live.deploy(chosen);
    const auto run = live.run_interval(workload.interval_seconds,
                                       workload.message_bytes,
                                       workload.publish_rate_hz, rng);
    (void)live.control_round();  // let the controller record the deployment
    std::printf("\nlive validation over one interval (%zu events):\n",
                static_cast<std::size_t>(live.simulator().processed()));
    const auto& round = live.controller().last_round_stats();
    std::printf(
        "  control   : %s pipeline, %zu tracked, %zu dirty, %zu optimized, "
        "%zu carried\n",
        incremental == "on" ? "incremental" : "full-scan", round.tracked,
        round.dirty, round.evaluated, round.skipped_clean);
    if (cohorts == "on") {
      std::printf(
          "  data plane: %s scheduling, %u shard(s), %zu subscribers in %zu "
          "cohort(s) (%.0fms buckets)\n",
          fast_path == "on" ? "fast-path" : "legacy", live.shards(),
          scenario.topic.subscribers.size(),
          live.cohort_pool()->cohort_count(), quantize_ms);
    } else {
      std::printf("  data plane: %s scheduling, %u shard(s), per-client "
                  "subscribers\n",
                  fast_path == "on" ? "fast-path" : "legacy", live.shards());
    }
    std::printf("  measured  : p=%.1fms  $%.2f/day  (%llu deliveries)\n",
                run.percentile, run.cost_per_day,
                static_cast<unsigned long long>(run.deliveries));
    const auto observed = live.observed_topic_state();
    const auto predicted = optimizer.evaluate(observed, chosen);
    std::printf("  analytic  : p=%.1fms  $%.2f/day\n", predicted.percentile,
                core::scale_to_day(predicted.cost, workload.interval_seconds));
    std::printf("\nassignment matrix (paper §III-A2):\n%s",
                live.controller().render_assignment_matrix().c_str());
    if (flags.get_bool("metrics", false)) {
      std::printf("\nmetrics snapshot:\n%s",
                  sim::collect_metrics(live).render().c_str());
      if (live.shards() > 1) {
        std::printf("\nwindow telemetry (engine-level, varies with "
                    "tuning):\n%s",
                    sim::collect_window_metrics(live).render().c_str());
      }
    }
  }
  return 0;
}
