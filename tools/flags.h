// Minimal command-line flag parsing for the tools.
//
// Supports --name=value and --name value forms plus boolean --name. No
// external dependency; errors collect into a list the tool prints with its
// usage text. Tools declare their complete vocabulary with allow_only() so
// an unrecognized flag is an error rather than silently ignored — a typo
// like --shard=4 must not run the single-threaded default as if nothing
// happened.
#pragma once

#include <array>
#include <cstdlib>
#include <initializer_list>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace multipub::tools {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (!arg.starts_with("--")) {
        errors_.push_back("unexpected positional argument: " +
                          std::string(arg));
        continue;
      }
      arg.remove_prefix(2);
      if (const auto eq = arg.find('='); eq != std::string_view::npos) {
        values_[std::string(arg.substr(0, eq))] =
            std::string(arg.substr(eq + 1));
        continue;
      }
      // --name value (when the next token is not a flag) or boolean --name.
      if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
        values_[std::string(arg)] = argv[++i];
      } else {
        values_[std::string(arg)] = "true";
      }
    }
  }

  /// Declares the tool's complete flag vocabulary: every parsed flag
  /// outside `known` becomes an error (in flag-name order, so the output is
  /// deterministic). Call once, right after construction and before the
  /// errors() check.
  void allow_only(std::initializer_list<std::string_view> known) {
    for (const auto& [name, value] : values_) {
      bool found = false;
      for (const std::string_view k : known) found = found || k == name;
      if (!found) {
        errors_.push_back("unknown flag --" + name + " (see --help)");
      }
    }
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return values_.count(name) > 0;
  }

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] double get_double(const std::string& name, double fallback) {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      errors_.push_back("flag --" + name + " expects a number, got '" +
                        it->second + "'");
      return fallback;
    }
    return v;
  }

  [[nodiscard]] long get_int(const std::string& name, long fallback) {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    char* end = nullptr;
    const long v = std::strtol(it->second.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      errors_.push_back("flag --" + name + " expects an integer, got '" +
                        it->second + "'");
      return fallback;
    }
    return v;
  }

  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return it->second != "false" && it->second != "0";
  }

  /// "a:b:c" triple of doubles (sweep ranges).
  [[nodiscard]] std::optional<std::array<double, 3>> get_range(
      const std::string& name) {
    const auto it = values_.find(name);
    if (it == values_.end()) return std::nullopt;
    std::array<double, 3> out{};
    std::size_t pos = 0;
    const std::string& s = it->second;
    for (int k = 0; k < 3; ++k) {
      const std::size_t next = k < 2 ? s.find(':', pos) : s.size();
      if (next == std::string::npos) {
        errors_.push_back("flag --" + name + " expects from:to:step");
        return std::nullopt;
      }
      out[static_cast<std::size_t>(k)] =
          std::strtod(s.substr(pos, next - pos).c_str(), nullptr);
      pos = next + 1;
    }
    return out;
  }

  [[nodiscard]] const std::vector<std::string>& errors() const {
    return errors_;
  }

 private:
  // Ordered so allow_only() reports unknown flags deterministically.
  std::map<std::string, std::string> values_;
  std::vector<std::string> errors_;
};

}  // namespace multipub::tools
